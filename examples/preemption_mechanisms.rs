//! Explore the three NPU preemption mechanisms (KILL, CHECKPOINT, DRAIN) on a
//! two-task scenario: a low-priority VGG-16 inference is interrupted by a
//! high-priority GoogLeNet request — the Section IV-D experiment in miniature.
//!
//! ```text
//! cargo run --release --example preemption_mechanisms
//! ```

use prema::npu::CheckpointModel;
use prema::{
    ModelKind, NpuConfig, NpuSimulator, PolicyKind, PreemptionMechanism, PreemptionMode, Priority,
    SchedulerConfig, TaskId, TaskRequest,
};

fn main() {
    let npu = NpuConfig::paper_default();

    // The victim starts at t=0; the preemptor arrives 40% into its execution.
    let victim = TaskRequest::new(TaskId(0), ModelKind::CnnVggNet).with_priority(Priority::Low);
    let victim_isolated = NpuSimulator::new(npu.clone(), SchedulerConfig::np_fcfs())
        .prepare(&[victim])[0]
        .isolated_cycles();
    let preemptor = TaskRequest::new(TaskId(1), ModelKind::CnnGoogLeNet)
        .with_priority(Priority::High)
        .with_arrival(victim_isolated * 2 / 5);
    let requests = [victim, preemptor];

    println!(
        "victim: VGG-16 (isolated {:.2} ms), preemptor: GoogLeNet arriving at {:.2} ms\n",
        npu.cycles_to_millis(victim_isolated),
        npu.cycles_to_millis(preemptor.arrival),
    );
    println!(
        "worst-case checkpoint latency on this NPU: {:.1} us\n",
        npu.cycles_to_micros(CheckpointModel::new(&npu).worst_case_checkpoint_cycles())
    );

    let configurations = [
        (
            "DRAIN  (NP-HPF)",
            SchedulerConfig::named(PolicyKind::Hpf, PreemptionMode::NonPreemptive),
        ),
        (
            "KILL   (P-HPF)",
            SchedulerConfig::named(
                PolicyKind::Hpf,
                PreemptionMode::Static(PreemptionMechanism::Kill),
            ),
        ),
        (
            "CHECKPOINT (P-HPF)",
            SchedulerConfig::named(
                PolicyKind::Hpf,
                PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            ),
        ),
        ("PREMA (dynamic)", SchedulerConfig::paper_default()),
    ];

    println!(
        "{:<20} {:>14} {:>14} {:>16} {:>12}",
        "mechanism", "victim (ms)", "preemptor (ms)", "preemptor wait", "STP"
    );
    for (label, cfg) in configurations {
        let simulator = NpuSimulator::new(npu.clone(), cfg);
        let prepared = simulator.prepare(&requests);
        let outcome = simulator.run(&prepared);
        let victim_record = outcome.record(TaskId(0)).expect("victim ran");
        let preemptor_record = outcome.record(TaskId(1)).expect("preemptor ran");
        println!(
            "{:<20} {:>14.2} {:>14.2} {:>13.2} us {:>12.2}",
            label,
            npu.cycles_to_millis(victim_record.turnaround()),
            npu.cycles_to_millis(preemptor_record.turnaround()),
            npu.cycles_to_micros(preemptor_record.waiting()),
            outcome.stp(),
        );
    }
}
