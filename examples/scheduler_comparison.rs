//! Compare every scheduling policy of the paper (FCFS, RRB, HPF, TOKEN, SJF,
//! PREMA) in both non-preemptive and preemptive/dynamic modes on the same
//! multi-tasked workload — a miniature Figure 11 + Figure 12.
//!
//! ```text
//! cargo run --release --example scheduler_comparison
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use prema::metrics::{MultiTaskMetrics, TableBuilder};
use prema::workload::generator::{generate_workload, WorkloadConfig};
use prema::workload::prepare::{outcomes_of, prepare_workload};
use prema::{
    AnalyticalPredictor, NpuConfig, NpuSimulator, PolicyKind, PreemptionMode, SchedulerConfig,
};

fn main() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(42);
    let spec = generate_workload(&WorkloadConfig::paper_default(), &mut rng);
    let predictor = AnalyticalPredictor::new(npu.clone());
    let prepared = prepare_workload(&spec, &npu, Some(&predictor));

    let baseline = NpuSimulator::new(npu.clone(), SchedulerConfig::np_fcfs()).run(&prepared.tasks);
    let baseline_metrics = MultiTaskMetrics::from_outcomes(&outcomes_of(&baseline.records));

    let mut table = TableBuilder::new(vec![
        "configuration".into(),
        "ANTT".into(),
        "STP".into(),
        "fairness".into(),
        "ANTT improvement".into(),
    ])
    .title("Scheduler comparison on one 8-task workload (vs NP-FCFS)");

    for policy in PolicyKind::ALL {
        for preemption in [PreemptionMode::NonPreemptive, PreemptionMode::Dynamic] {
            let cfg = SchedulerConfig::named(policy, preemption);
            let label = cfg.label();
            let outcome = NpuSimulator::new(npu.clone(), cfg).run(&prepared.tasks);
            let metrics = MultiTaskMetrics::from_outcomes(&outcomes_of(&outcome.records));
            table = table.row(vec![
                label,
                format!("{:.2}", metrics.antt),
                format!("{:.2}", metrics.stp),
                format!("{:.3}", metrics.fairness),
                format!("{:.2}x", metrics.antt_improvement_over(&baseline_metrics)),
            ]);
        }
    }

    println!("{}", table.build());
    println!(
        "baseline NP-FCFS: ANTT {:.2}, STP {:.2}, fairness {:.3}",
        baseline_metrics.antt, baseline_metrics.stp, baseline_metrics.fairness
    );
}
