//! A cloud "MLaaS" inference-server scenario (the workload that motivates the
//! paper's introduction): a burst of mixed CNN/RNN requests with different
//! priority tiers lands on a single NPU, and we compare how the baseline
//! NP-FCFS runtime and PREMA serve it.
//!
//! ```text
//! cargo run --release --example cloud_inference_server
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use prema::metrics::{MultiTaskMetrics, SlaCurve};
use prema::workload::generator::{generate_workload, WorkloadConfig};
use prema::workload::prepare::{outcomes_of, prepare_workload};
use prema::{AnalyticalPredictor, NpuConfig, NpuSimulator, SchedulerConfig};

fn main() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(7);

    // Twelve requests drawn from the eight evaluation DNNs, arriving within a
    // 20 ms window with random low/medium/high priorities.
    let workload_cfg = WorkloadConfig {
        task_count: 12,
        ..WorkloadConfig::paper_default()
    };
    let spec = generate_workload(&workload_cfg, &mut rng);

    // The scheduler's estimates come from the architecture-aware analytical
    // predictor (Algorithm 1).
    let predictor = AnalyticalPredictor::new(npu.clone());
    let prepared = prepare_workload(&spec, &npu, Some(&predictor));

    println!("incoming requests:");
    for task in &prepared.tasks {
        println!(
            "  {}  {:<8} batch {:<2} priority {:<6} arrives at {:>6.2} ms (isolated {:>6.2} ms)",
            task.request.id,
            task.request.model.paper_name(),
            task.request.batch,
            task.request.priority.to_string(),
            npu.cycles_to_millis(task.request.arrival),
            npu.cycles_to_millis(task.isolated_cycles()),
        );
    }
    println!();

    for scheduler in [SchedulerConfig::np_fcfs(), SchedulerConfig::paper_default()] {
        let label = scheduler.label();
        let simulator = NpuSimulator::new(npu.clone(), scheduler);
        let outcome = simulator.run(&prepared.tasks);
        let metrics = MultiTaskMetrics::from_outcomes(&outcomes_of(&outcome.records));
        let sla = SlaCurve::sweep(&outcomes_of(&outcome.records), (2..=20).map(|n| n as f64));

        println!("== {label} ==");
        println!("  ANTT      {:.2}", metrics.antt);
        println!("  STP       {:.2}", metrics.stp);
        println!("  fairness  {:.3}", metrics.fairness);
        println!(
            "  SLA violations at 4x isolated: {:.0}%",
            sla.rate_at(4.0).unwrap_or(0.0) * 100.0
        );
        println!(
            "  preemptions: {} checkpoint, {} drain decisions",
            outcome.checkpoint_preemptions, outcome.drain_decisions
        );
        println!();
    }
}
