//! The cloud "MLaaS" serving scenario that motivates the paper's
//! introduction, at its real scope: a *cluster* of NPUs fed by an open-loop
//! Poisson stream of mixed CNN/RNN requests with low/medium/high priority
//! tiers, pushed to rho = 0.95 of the cluster's service capacity — the
//! saturated regime where dispatch quality decides the tail.
//!
//! Two dispatch architectures compete over the identical request stream on
//! identical Dynamic-PREMA nodes:
//!
//! * **open loop** — the front-end commits every request on arrival using
//!   only its own FCFS-approximation ledgers (predictor estimates, no view
//!   into the nodes), then the nodes simulate;
//! * **closed loop** — a global event loop interleaves arrivals with node
//!   execution, so each dispatch reads the nodes' *actual* state (live
//!   queue depth, true remaining work), optionally stealing work onto idle
//!   nodes or shedding lowest-priority work when the predicted p99 blows
//!   through an SLA target.
//!
//! ```text
//! cargo run --release --example cloud_inference_server
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use prema::cluster::{
    ClusterConfig, ClusterMetrics, ClusterOutcome, ClusterSimulator, DispatchPolicy,
    OnlineClusterConfig, OnlineClusterSimulator, OnlineDispatchPolicy,
};
use prema::workload::arrivals::{generate_open_loop, OpenLoopConfig};
use prema::workload::prepare::prepare_workload;
use prema::{AnalyticalPredictor, NpuConfig, Priority, SchedulerConfig};
use prema_bench::cluster::{mean_service_ms, offered_rate_per_ms, SLA_ADMIT_TARGET_P99_MS};

const NODES: usize = 4;
const RHO: f64 = 0.95;

fn print_row(label: &str, metrics: &ClusterMetrics, extra: &str) {
    println!(
        "  {label:<26} queue {:>6.2} ms | p95 {:>7.2} ms | p99 {:>7.2} ms | ANTT {:>5.2}{extra}",
        metrics.mean_queueing_delay_ms, metrics.p95_ms, metrics.p99_ms, metrics.antt
    );
}

fn main() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(7);

    // Calibrate the arrival rate to RHO of the 4-node cluster's capacity
    // over the default request mix (rate = rho * nodes / E[S]), exactly as
    // the bench sweep does. At this load queues build up in bursts but
    // still drain between them — the regime where dispatch quality decides
    // the tail (at sustained deep saturation every work-conserving policy
    // converges to the same backlog).
    let mut stream_cfg = OpenLoopConfig::poisson(1.0, 400.0);
    let service_ms = mean_service_ms(&stream_cfg.models, &stream_cfg.batch_sizes, &npu);
    stream_cfg.process = prema::workload::ArrivalProcess::Poisson {
        rate_per_ms: offered_rate_per_ms(RHO, NODES, service_ms),
    };
    let spec = generate_open_loop(&stream_cfg, &mut rng);

    // The front-end and the per-node schedulers share the same
    // architecture-aware analytical estimates (Algorithm 1).
    let predictor = AnalyticalPredictor::new(npu.clone());
    let prepared = prepare_workload(&spec, &npu, Some(&predictor));

    let by_priority = |p: Priority| spec.with_priority(p).len();
    println!(
        "open-loop stream: {} requests over {:.0} ms at rho = {RHO} \
         ({} low / {} medium / {} high priority)",
        spec.len(),
        stream_cfg.duration_ms,
        by_priority(Priority::Low),
        by_priority(Priority::Medium),
        by_priority(Priority::High),
    );
    println!("cluster: {NODES} Dynamic-PREMA NPUs behind one dispatcher\n");

    let scheduler = SchedulerConfig::paper_default();

    println!("== open loop: commit on front-end ledgers, then simulate ==");
    let mut open_predictive_p99 = 0.0;
    for dispatch in [DispatchPolicy::ShortestQueue, DispatchPolicy::Predictive] {
        let cluster = ClusterSimulator::new(
            ClusterConfig::new(NODES, scheduler.clone(), dispatch).with_dispatch_seed(7),
        );
        let outcome: ClusterOutcome = cluster.run(&prepared.tasks);
        let metrics = ClusterMetrics::from_outcome(&outcome, &npu);
        if dispatch == DispatchPolicy::Predictive {
            open_predictive_p99 = metrics.p99_ms;
        }
        print_row(dispatch.label(), &metrics, "");
    }

    println!("\n== closed loop: dispatch on observed node state ==");
    let mut reactive_p99 = f64::INFINITY;
    for (label, config) in [
        (
            "predictive-live",
            OnlineClusterConfig::new(NODES, scheduler.clone(), OnlineDispatchPolicy::Predictive),
        ),
        (
            "work-steal",
            OnlineClusterConfig::new(NODES, scheduler.clone(), OnlineDispatchPolicy::Predictive)
                .with_work_stealing(),
        ),
        (
            "sla-admit",
            OnlineClusterConfig::new(NODES, scheduler.clone(), OnlineDispatchPolicy::Predictive)
                .with_admission(SLA_ADMIT_TARGET_P99_MS),
        ),
    ] {
        let outcome = OnlineClusterSimulator::new(config).run(&prepared.tasks);
        let metrics = ClusterMetrics::from_outcome(&outcome.cluster, &npu);
        let extra = if !outcome.shed.is_empty() {
            format!(
                " | shed {} of {} (target p99 {SLA_ADMIT_TARGET_P99_MS:.0} ms)",
                outcome.shed.len(),
                spec.len()
            )
        } else if outcome.steals > 0 {
            format!(" | {} steals", outcome.steals)
        } else {
            String::new()
        };
        // The served-everything reactive policies are the fair tail
        // comparison; sla-admit trades completeness for the tail.
        if outcome.shed.is_empty() {
            reactive_p99 = reactive_p99.min(metrics.p99_ms);
        }
        print_row(label, &metrics, &extra);
    }

    println!(
        "\nreactive dispatch wins the tail at rho = {RHO}: closed-loop p99 {reactive_p99:.2} ms \
         vs open-loop predictive p99 {open_predictive_p99:.2} ms ({:.0}% lower)",
        (1.0 - reactive_p99 / open_predictive_p99) * 100.0
    );
    assert!(
        reactive_p99 < open_predictive_p99,
        "closed-loop dispatch should win tail latency at saturation"
    );
}
