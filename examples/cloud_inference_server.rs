//! The cloud "MLaaS" serving scenario that motivates the paper's
//! introduction, at its real scope: a *cluster* of NPUs behind a front-end
//! dispatcher, fed by an open-loop Poisson stream of mixed CNN/RNN requests
//! with low/medium/high priority tiers. We compare the baseline runtime
//! (NP-FCFS nodes) against PREMA nodes, under both a classic
//! join-shortest-queue front-end and the predictive front-end that reuses
//! PREMA's execution-time estimates at cluster scope.
//!
//! ```text
//! cargo run --release --example cloud_inference_server
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use prema::cluster::{ClusterConfig, ClusterMetrics, ClusterSimulator, DispatchPolicy};
use prema::workload::arrivals::{generate_open_loop, OpenLoopConfig};
use prema::workload::prepare::prepare_workload;
use prema::{AnalyticalPredictor, NpuConfig, Priority, SchedulerConfig};

const NODES: usize = 4;

fn main() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(7);

    // An open-loop Poisson stream over the eight evaluation DNNs at ~90% of
    // the 4-node cluster's service capacity (mean isolated time is ~16 ms,
    // so capacity is ~0.25 requests/ms), with high-priority requests rarer
    // than the batch-like low-priority traffic, as in production serving
    // mixes.
    let mut stream_cfg = OpenLoopConfig::poisson(0.22, 300.0);
    stream_cfg.priority_mix = vec![
        (Priority::Low, 5.0),
        (Priority::Medium, 3.0),
        (Priority::High, 2.0),
    ];
    let spec = generate_open_loop(&stream_cfg, &mut rng);

    // The front-end and the per-node schedulers share the same
    // architecture-aware analytical estimates (Algorithm 1).
    let predictor = AnalyticalPredictor::new(npu.clone());
    let prepared = prepare_workload(&spec, &npu, Some(&predictor));

    let by_priority = |p: Priority| spec.with_priority(p).len();
    println!(
        "open-loop stream: {} requests over {:.0} ms ({} low / {} medium / {} high priority)",
        spec.len(),
        stream_cfg.duration_ms,
        by_priority(Priority::Low),
        by_priority(Priority::Medium),
        by_priority(Priority::High),
    );
    println!("cluster: {NODES} NPUs behind one dispatcher\n");

    for scheduler in [SchedulerConfig::np_fcfs(), SchedulerConfig::paper_default()] {
        for dispatch in [DispatchPolicy::ShortestQueue, DispatchPolicy::Predictive] {
            let cluster = ClusterSimulator::new(
                ClusterConfig::new(NODES, scheduler.clone(), dispatch).with_dispatch_seed(7),
            );
            let outcome = cluster.run(&prepared.tasks);
            let metrics = ClusterMetrics::from_outcome(&outcome, &npu);

            println!("== {} nodes, {} dispatch ==", scheduler.label(), dispatch);
            println!("  ANTT            {:>8.2}", metrics.antt);
            println!("  STP             {:>8.2}", metrics.stp);
            println!(
                "  queueing delay  {:>8.2} ms mean (service {:.2} ms mean)",
                metrics.mean_queueing_delay_ms, metrics.mean_service_ms
            );
            println!(
                "  turnaround      {:>8.2} ms p50 / {:.2} ms p95 / {:.2} ms p99",
                metrics.p50_ms, metrics.p95_ms, metrics.p99_ms
            );
            println!(
                "  SLA at 4x       {:>7.0}% violations",
                metrics.sla.rate_at(4.0).unwrap_or(0.0) * 100.0
            );
            println!(
                "  utilization     {}",
                metrics
                    .node_utilization
                    .iter()
                    .map(|u| format!("{:>3.0}%", u * 100.0))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            let preemptions: u64 = outcome
                .node_outcomes
                .iter()
                .map(|o| o.checkpoint_preemptions + o.kill_preemptions)
                .sum();
            println!("  preemptions     {preemptions:>8}\n");
        }
    }
}
