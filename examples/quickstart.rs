//! Quickstart: run two inference tasks on one preemptible NPU under PREMA and
//! compare against the NP-FCFS baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prema::npu::Cycles;
use prema::{ModelKind, NpuConfig, NpuSimulator, Priority, SchedulerConfig, TaskId, TaskRequest};

fn main() {
    let npu = NpuConfig::paper_default();

    // A long, low-priority VGG-16 request arrives first; a latency-critical
    // GoogLeNet request shows up half a millisecond later.
    let requests = vec![
        TaskRequest::new(TaskId(0), ModelKind::CnnVggNet).with_priority(Priority::Low),
        TaskRequest::new(TaskId(1), ModelKind::CnnGoogLeNet)
            .with_priority(Priority::High)
            .with_arrival(npu.millis_to_cycles(0.5)),
    ];

    let baseline = NpuSimulator::new(npu.clone(), SchedulerConfig::np_fcfs());
    let prema = NpuSimulator::new(npu.clone(), SchedulerConfig::paper_default());

    // Plans are compiled once and shared between both simulators.
    let prepared = baseline.prepare(&requests);

    let base = baseline.run(&prepared);
    let ours = prema.run(&prepared);

    println!("{:<28} {:>12} {:>12}", "task", "NP-FCFS (ms)", "PREMA (ms)");
    for id in [TaskId(0), TaskId(1)] {
        let b = base.record(id).expect("task ran under the baseline");
        let p = ours.record(id).expect("task ran under PREMA");
        println!(
            "{:<28} {:>12.2} {:>12.2}",
            format!("{} ({}, {})", id, b.model.paper_name(), b.priority),
            npu.cycles_to_millis(b.turnaround()),
            npu.cycles_to_millis(p.turnaround()),
        );
    }
    println!();
    println!(
        "ANTT: NP-FCFS {:.2} -> PREMA {:.2} ({:.1}x better)",
        base.antt(),
        ours.antt(),
        base.antt() / ours.antt()
    );
    println!(
        "high-priority wait: NP-FCFS {:.2} ms -> PREMA {:.2} ms (checkpoint preemptions: {})",
        npu.cycles_to_millis(base.record(TaskId(1)).unwrap().waiting()),
        npu.cycles_to_millis(ours.record(TaskId(1)).unwrap().waiting()),
        ours.checkpoint_preemptions,
    );

    let zero = Cycles::ZERO;
    assert!(ours.record(TaskId(1)).unwrap().waiting() >= zero);
}
