//! Fault-tolerant cluster serving: what checkpoint-based recovery buys when
//! NPU nodes crash and freeze under load.
//!
//! A 4-node closed-loop cluster serves a Poisson stream at rho = 0.75 of
//! capacity while a seeded fault process crashes nodes at an MTBF of about
//! ten mean service times (with a fraction of the windows downgraded to
//! freezes). A crash salvages every resident task at its last commit point
//! — the last `GEMM_OP` interval boundary — and the recovery policy
//! re-dispatches the salvage to a surviving node after an exponential
//! backoff, deprioritizing recently-failed nodes.
//!
//! Two recovery policies replay the identical driving:
//!
//! * **checkpoint** — salvaged tasks resume from their commit-point cursor,
//!   paying the restore DMA for the committed context;
//! * **restart-zero** — salvaged tasks discard all progress and rerun from
//!   scratch, as a cluster without on-accelerator checkpointing must.
//!
//! ```text
//! cargo run --release --example fault_tolerant_cluster
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use prema::cluster::{
    ClusterFaultPlan, ClusterMetrics, OnlineClusterConfig, OnlineClusterSimulator,
    OnlineDispatchPolicy, RecoveryConfig,
};
use prema::workload::arrivals::{generate_open_loop, ArrivalProcess, OpenLoopConfig};
use prema::workload::prepare::prepare_requests;
use prema::workload::FaultProcess;
use prema::{NpuConfig, SchedulerConfig};
use prema_bench::cluster::{mean_service_ms, offered_rate_per_ms};

const NODES: usize = 4;
const RHO: f64 = 0.75;
const DURATION_MS: f64 = 400.0;
const MTBF_MULTIPLIER: f64 = 10.0;
const DOWNTIME_MS: f64 = 2.0;
const FREEZE_FRACTION: f64 = 0.2;

fn main() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(2020);

    // One request stream and one fault schedule, shared by both policies:
    // the comparison isolates the recovery policy, nothing else.
    let mut stream_cfg = OpenLoopConfig::poisson(1.0, DURATION_MS);
    let service_ms = mean_service_ms(&stream_cfg.models, &stream_cfg.batch_sizes, &npu);
    stream_cfg.process = ArrivalProcess::Poisson {
        rate_per_ms: offered_rate_per_ms(RHO, NODES, service_ms),
    };
    let spec = generate_open_loop(&stream_cfg, &mut rng);
    let tasks = prepare_requests(&spec.requests, &npu, None);

    let mtbf_ms = MTBF_MULTIPLIER * service_ms;
    let schedule = FaultProcess::crashes(NODES, mtbf_ms, DOWNTIME_MS, DURATION_MS)
        .with_freeze_fraction(FREEZE_FRACTION)
        .generate(&mut rng);

    println!(
        "fault-tolerant cluster: {NODES} nodes, rho {RHO}, {} requests, \
         {} fault windows (MTBF {:.1} ms = {MTBF_MULTIPLIER}x mean service)",
        tasks.len(),
        schedule.len(),
        mtbf_ms
    );
    println!();

    for (label, recovery) in [
        ("checkpoint", RecoveryConfig::checkpointed()),
        ("restart-zero", RecoveryConfig::restart_from_zero()),
    ] {
        let config = OnlineClusterConfig::new(
            NODES,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_faults(ClusterFaultPlan::new(schedule.clone()).with_recovery(recovery));
        let simulator = OnlineClusterSimulator::new(config);
        let outcome = simulator.run(&tasks);
        let metrics = ClusterMetrics::from_online(&outcome, &npu);
        println!(
            "  {label:<13} p99 {:>7.2} ms | ANTT {:>5.2} | availability {:>6.4} | \
             goodput {:>5.3} | {} crashes, {} freezes, {} recoveries, {} abandoned",
            metrics.p99_ms,
            metrics.antt,
            metrics.availability,
            metrics.goodput,
            outcome.crashes,
            outcome.freezes,
            outcome.recoveries,
            outcome.abandoned.len(),
        );
    }

    println!();
    println!(
        "Identical crashes, identical arrivals: the only difference is whether a\n\
         salvaged task resumes from its last commit point or replays from zero.\n\
         Checkpoint recovery turns each crash into a bounded setback (restore DMA\n\
         plus the uncommitted tail of one interval), so less rework queues behind\n\
         every failure and the p99 tail stays closer to the fault-free baseline."
    );
}
