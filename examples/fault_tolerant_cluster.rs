//! Fault-tolerant cluster serving: what checkpoint-based recovery buys when
//! NPU nodes crash and freeze under load, and what deadline-triggered
//! migration buys when they merely *slow down*.
//!
//! **Act one — crashes.** A 4-node closed-loop cluster serves a Poisson
//! stream at rho = 0.75 of capacity while a seeded fault process crashes
//! nodes at an MTBF of about ten mean service times (with a fraction of
//! the windows downgraded to freezes). A crash salvages every resident
//! task at its last commit point — the last `GEMM_OP` interval boundary —
//! and the recovery policy re-dispatches the salvage to a surviving node
//! after an exponential backoff, deprioritizing recently-failed nodes.
//!
//! Two recovery policies replay the identical driving:
//!
//! * **checkpoint** — salvaged tasks resume from their commit-point cursor,
//!   paying the restore DMA for the committed context;
//! * **restart-zero** — salvaged tasks discard all progress and rerun from
//!   scratch, as a cluster without on-accelerator checkpointing must.
//!
//! **Act two — stragglers.** The same cluster, but now two nodes degrade
//! to 1/4 clock speed in long windows instead of crashing. A degraded
//! node keeps serving — slowly — so nothing is salvaged and nothing
//! recovers; the tail just rots. With a migration policy, a deadline
//! monitor spots residents whose predicted completion has blown the SLA,
//! prices stay-vs-move against a checkpoint transfer over the
//! interconnect, and evacuates to a healthy node when moving is cheaper.
//!
//! ```text
//! cargo run --release --example fault_tolerant_cluster
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use prema::cluster::{
    ClusterFaultPlan, ClusterMetrics, MigrationConfig, OnlineClusterConfig, OnlineClusterSimulator,
    OnlineDispatchPolicy, RecoveryConfig,
};
use prema::workload::arrivals::{generate_open_loop, ArrivalProcess, OpenLoopConfig};
use prema::workload::prepare::prepare_requests;
use prema::workload::FaultProcess;
use prema::{NpuConfig, SchedulerConfig};
use prema_bench::cluster::{mean_service_ms, offered_rate_per_ms};

const NODES: usize = 4;
const RHO: f64 = 0.75;
const DURATION_MS: f64 = 400.0;
const MTBF_MULTIPLIER: f64 = 10.0;
const DOWNTIME_MS: f64 = 2.0;
const FREEZE_FRACTION: f64 = 0.2;
const DEGRADED_NODES: usize = 2;
const DEGRADE_MTBF_MS: f64 = 250.0;
const DEGRADE_WINDOW_MS: f64 = 120.0;
const SLA_MULTIPLIER: f64 = 8.0;

fn main() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(2020);

    // One request stream and one fault schedule, shared by both policies:
    // the comparison isolates the recovery policy, nothing else.
    let mut stream_cfg = OpenLoopConfig::poisson(1.0, DURATION_MS);
    let service_ms = mean_service_ms(&stream_cfg.models, &stream_cfg.batch_sizes, &npu);
    stream_cfg.process = ArrivalProcess::Poisson {
        rate_per_ms: offered_rate_per_ms(RHO, NODES, service_ms),
    };
    let spec = generate_open_loop(&stream_cfg, &mut rng);
    let tasks = prepare_requests(&spec.requests, &npu, None);

    let mtbf_ms = MTBF_MULTIPLIER * service_ms;
    let schedule = FaultProcess::crashes(NODES, mtbf_ms, DOWNTIME_MS, DURATION_MS)
        .with_freeze_fraction(FREEZE_FRACTION)
        .generate(&mut rng);

    println!(
        "fault-tolerant cluster: {NODES} nodes, rho {RHO}, {} requests, \
         {} fault windows (MTBF {:.1} ms = {MTBF_MULTIPLIER}x mean service)",
        tasks.len(),
        schedule.len(),
        mtbf_ms
    );
    println!();

    for (label, recovery) in [
        ("checkpoint", RecoveryConfig::checkpointed()),
        ("restart-zero", RecoveryConfig::restart_from_zero()),
    ] {
        let config = OnlineClusterConfig::new(
            NODES,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_faults(ClusterFaultPlan::new(schedule.clone()).with_recovery(recovery));
        let simulator = OnlineClusterSimulator::new(config);
        let outcome = simulator.run(&tasks);
        let metrics = ClusterMetrics::from_online(&outcome, &npu);
        println!(
            "  {label:<13} p99 {:>7.2} ms | ANTT {:>5.2} | availability {:>6.4} | \
             goodput {:>5.3} | {} crashes, {} freezes, {} recoveries, {} abandoned",
            metrics.p99_ms,
            metrics.antt,
            metrics.availability,
            metrics.goodput,
            outcome.crashes,
            outcome.freezes,
            outcome.recoveries,
            outcome.abandoned.len(),
        );
    }

    println!();
    println!(
        "Identical crashes, identical arrivals: the only difference is whether a\n\
         salvaged task resumes from its last commit point or replays from zero.\n\
         Checkpoint recovery turns each crash into a bounded setback (restore DMA\n\
         plus the uncommitted tail of one interval), so less rework queues behind\n\
         every failure and the p99 tail stays closer to the fault-free baseline."
    );

    // Act two: the same cluster, but two nodes become stragglers — their
    // clocks run at 1/4 speed in ~120 ms windows — and nothing crashes.
    // The schedule draws from its own seeded stream so the act is
    // self-contained and reproducible independent of act one.
    let mut straggler_rng = StdRng::seed_from_u64(4);
    let straggler_schedule = FaultProcess::crashes(
        DEGRADED_NODES,
        DEGRADE_MTBF_MS,
        DEGRADE_WINDOW_MS,
        DURATION_MS,
    )
    .with_degradation(1.0, 1, 4)
    .generate(&mut straggler_rng);
    let sla_ms = SLA_MULTIPLIER * service_ms;

    println!();
    println!(
        "straggler cluster: {DEGRADED_NODES} of {NODES} nodes degrade to 1/4 speed, \
         {} degrade windows (~{DEGRADE_WINDOW_MS} ms every ~{DEGRADE_MTBF_MS} ms), \
         SLA {sla_ms:.1} ms",
        straggler_schedule.len(),
    );
    println!();

    for (label, migration) in [
        ("migrate", Some(MigrationConfig::new(sla_ms))),
        ("stay-put", None),
    ] {
        let mut config = OnlineClusterConfig::new(
            NODES,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_faults(ClusterFaultPlan::new(straggler_schedule.clone()));
        if let Some(migration) = migration {
            config = config.with_migration(migration);
        }
        let simulator = OnlineClusterSimulator::new(config);
        let outcome = simulator.run(&tasks);
        let metrics = ClusterMetrics::from_online(&outcome, &npu);
        println!(
            "  {label:<13} p99 {:>7.2} ms | ANTT {:>5.2} | degraded {:>5.1} % of time | \
             {} degrades, {} migrations ({} B over the wire, mean evac {:.3} ms)",
            metrics.p99_ms,
            metrics.antt,
            100.0 * metrics.degraded_fraction,
            outcome.degrades,
            outcome.migrations,
            outcome.migration_bytes,
            metrics.mean_evacuation_ms,
        );
    }

    println!();
    println!(
        "Identical slowdowns, identical arrivals: a straggler never crashes, so\n\
         recovery policy is irrelevant — resident work must move or wait. The\n\
         deadline monitor evacuates exactly the tasks whose predicted finish has\n\
         blown the SLA and for which a checkpoint flight beats riding out the\n\
         slow clock, so the p99 tail tracks the healthy nodes instead of the\n\
         slowest one."
    );
}
