//! # PREMA — A Predictive Multi-task Scheduling Algorithm for Preemptible NPUs
//!
//! This facade crate re-exports the whole PREMA reproduction workspace so
//! applications can depend on a single crate:
//!
//! * [`npu`] — the systolic-array NPU performance model ([`npu_sim`]).
//! * [`models`] — the DNN layer IR and model zoo ([`dnn_models`]).
//! * [`predictor`] — inference-time prediction ([`prema_predictor`]).
//! * [`scheduler`] — preemption mechanisms, policies and the multi-task
//!   engine ([`prema_core`]).
//! * [`workload`] — Section III workload generation and open-loop arrival
//!   processes ([`prema_workload`]).
//! * [`metrics`] — ANTT / STP / fairness / SLA metrics ([`prema_metrics`]).
//! * [`cluster`] — the multi-NPU cluster serving layer: open-loop front-end
//!   dispatch across N simulator nodes, plus the closed-loop online
//!   dispatcher reacting to live node state ([`prema_cluster`]).
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use prema::{
//!     ModelKind, NpuConfig, NpuSimulator, Priority, SchedulerConfig, TaskId, TaskRequest,
//! };
//! use prema::npu::Cycles;
//!
//! let npu = NpuConfig::paper_default();
//! let scheduler = SchedulerConfig::paper_default();
//! let simulator = NpuSimulator::new(npu, scheduler);
//!
//! let requests = vec![
//!     TaskRequest::new(TaskId(0), ModelKind::CnnVggNet),
//!     TaskRequest::new(TaskId(1), ModelKind::CnnGoogLeNet)
//!         .with_priority(Priority::High)
//!         .with_arrival(Cycles::new(350_000)),
//! ];
//! let prepared = simulator.prepare(&requests);
//! let outcome = simulator.run(&prepared);
//! assert_eq!(outcome.records.len(), 2);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The systolic-array NPU performance model (re-export of [`npu_sim`]).
pub mod npu {
    pub use npu_sim::*;
}

/// The DNN layer IR and model zoo (re-export of [`dnn_models`]).
pub mod models {
    pub use dnn_models::*;
}

/// Inference-time predictors (re-export of [`prema_predictor`]).
pub mod predictor {
    pub use prema_predictor::*;
}

/// Preemption mechanisms, scheduling policies and the multi-task engine
/// (re-export of [`prema_core`]).
pub mod scheduler {
    pub use prema_core::*;
}

/// Workload generation (re-export of [`prema_workload`]).
pub mod workload {
    pub use prema_workload::*;
}

/// Multi-program metrics (re-export of [`prema_metrics`]).
pub mod metrics {
    pub use prema_metrics::*;
}

/// The multi-NPU cluster serving layer (re-export of [`prema_cluster`]).
pub mod cluster {
    pub use prema_cluster::*;
}

pub use dnn_models::{ModelKind, SeqSpec};
pub use npu_sim::{Cycles, NpuConfig};
pub use prema_cluster::{
    ClusterConfig, ClusterMetrics, ClusterOutcome, ClusterSimulator, DispatchPolicy,
    InterconnectConfig, MigrationConfig, MigrationRecord, OnlineClusterConfig,
    OnlineClusterSimulator, OnlineDispatchPolicy, OnlineOutcome,
};
pub use prema_core::{
    NpuSimulator, OutcomeSummary, PolicyKind, PreemptionMechanism, PreemptionMode, PreparedTask,
    Priority, ResidentTask, SchedulerConfig, SimOutcome, SimSession, StepOutcome, TaskId,
    TaskRecord, TaskRequest,
};
pub use prema_metrics::{MultiTaskMetrics, TaskOutcome};
pub use prema_predictor::{AnalyticalPredictor, InferenceTimePredictor};
