//! Offline stand-in for `serde`.
//!
//! The workspace builds hermetically (no crates.io), and nothing in the
//! PREMA reproduction serializes data at runtime — the `Serialize` /
//! `Deserialize` derives exist so the public result types keep the same
//! shape as they would with real serde. This shim provides empty marker
//! traits plus the derive macros from the sibling `serde_derive` shim, so
//! `use serde::{Serialize, Deserialize}` and `#[derive(Serialize,
//! Deserialize)]` compile unchanged. Swapping in the real serde later is a
//! one-line Cargo change.
#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
