//! Offline stand-in for `criterion` (the API subset this workspace uses).
//!
//! The workspace builds hermetically with no crates.io access. Benches under
//! `crates/bench/benches/` use the classic criterion shape — `benchmark_group`,
//! `sample_size`, `bench_function`, `b.iter(...)`, `criterion_group!` /
//! `criterion_main!` — so this shim implements exactly that, with a simple
//! wall-clock measurement loop (a warm-up iteration followed by `sample_size`
//! timed samples) and a mean / min / max report per benchmark. Bench targets
//! must set `harness = false`, which they do.
#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("== bench group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample size must be positive");
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls `iter`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        assert!(
            !samples.is_empty(),
            "bench_function closure must call Bencher::iter"
        );
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        println!(
            "{}/{name}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
            self.group,
            samples.len()
        );
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the supplied routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark entry point (a function running each bench fn).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }
}
