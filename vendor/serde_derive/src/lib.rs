//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the real `serde` cannot be vendored. Nothing in the
//! reproduction actually serializes data (the derives only exist so that
//! downstream users *could* persist configurations and results), so the
//! stand-in derive emits impls of the empty marker traits defined by the
//! sibling `serde` shim crate.
//!
//! The parser is deliberately tiny: it scans the derive input token stream
//! for the `struct` / `enum` keyword and takes the following identifier as
//! the type name, skipping attributes and visibility along the way. All
//! types in this workspace that derive the serde traits are non-generic,
//! which keeps the emitted impls trivial.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive shim: could not find a struct/enum name in derive input");
}

/// Derives the no-op [`serde::Serialize`] marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the no-op [`serde::Deserialize`] marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
