//! Offline stand-in for `rand` (0.8-compatible API subset).
//!
//! The workspace builds hermetically with no crates.io access, so this shim
//! implements the exact surface the PREMA reproduction uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen`, `gen_range`, `gen_bool`, the [`distributions::Distribution`] trait
//! and [`seq::SliceRandom::choose`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64. The
//! stream differs from the real `rand` crate's ChaCha12-based `StdRng` — all
//! experiments in this repo are self-consistent (generated and replayed with
//! this generator), so only determinism per seed matters, not stream
//! compatibility.
#![forbid(unsafe_code)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can be sampled uniformly (`rand::distributions::uniform`
/// stand-in, only what `Rng::gen_range` needs).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Each type is paired with its unsigned counterpart so the span is computed
// with `wrapping_sub` in the unsigned domain: exact for the full signed
// range (e.g. `i32::MIN..i32::MAX`), where a direct signed subtraction
// would overflow. Offsets are added back the same way (two's complement).
macro_rules! impl_int_sample_range {
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $ut).wrapping_sub(self.start as $ut) as u64;
                let offset = rng.next_u64() % span;
                (self.start as $ut).wrapping_add(offset as $ut) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $ut).wrapping_sub(lo as $ut) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = rng.next_u64() % (span + 1);
                (lo as $ut).wrapping_add(offset as $ut) as $t
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u8,
    u16 => u16,
    u32 => u32,
    u64 => u64,
    usize => usize,
    i32 => u32,
    i64 => u64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn from the "standard" distribution (`rand`'s
/// `Standard`), as used by `Rng::gen`.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing random value generation (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators (`rand::rngs` stand-in).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sampling from distributions (`rand::distributions` stand-in).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Random slice operations (`rand::seq` stand-in).
pub mod seq {
    use super::Rng;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Returns one uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn signed_ranges_wider_than_the_signed_max_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..1000 {
            let x = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&x));
            let y = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = y; // full-width inclusive range: any value is in range
            let z = rng.gen_range(i32::MIN..i32::MAX);
            assert!(z < i32::MAX);
        }
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(samples.iter().any(|&x| x < 0.1));
        assert!(samples.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = pool.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
