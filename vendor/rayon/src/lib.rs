//! Offline stand-in for `rayon` (the API subset this workspace uses).
//!
//! The workspace builds hermetically with no crates.io access, so this shim
//! reimplements the one pattern the evaluation harness relies on:
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = [1u64, 2, 3].par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```
//!
//! `par_iter().map(f).collect()` fans the items out over
//! `std::thread::available_parallelism()` scoped worker threads and returns
//! the results **in input order**, so a parallel map is a drop-in replacement
//! for the serial `iter().map(f).collect()` whenever `f` is a pure function
//! of its item — which is exactly the property the suite's determinism test
//! asserts. Items are handed out through a shared atomic cursor, so uneven
//! per-item cost (e.g. one slow scheduler configuration) load-balances the
//! same way rayon's work stealing would.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The customary rayon import surface.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `rayon::iter` stand-in (re-exports the same items as the crate root).
pub mod iter {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// The number of worker threads a parallel map will use.
///
/// Like real rayon's global pool, the `RAYON_NUM_THREADS` environment
/// variable overrides the detected parallelism when set to a positive
/// integer (`0` or malformed values fall back to detection). CI's
/// determinism matrix leg relies on this to pin serial (`1`) and genuinely
/// parallel (`4`) runs on the same host.
pub fn current_num_threads() -> usize {
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|value| value.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Borrowing conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The item type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over `&T` (produced by `par_iter`).
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `op` in parallel.
    pub fn map<R, F>(self, op: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            op,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    op: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on all items and collects the results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(parallel_map(self.items, &self.op))
    }
}

/// Ordered parallel map over a slice: the engine behind `ParMap::collect`.
fn parallel_map<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], op: &F) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.iter().map(op).collect();
    }

    // Workers pull item indices from a shared cursor and push (index, result)
    // pairs; results are re-sorted by index afterwards so output order always
    // matches input order regardless of completion order.
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    local.push((idx, op(&items[idx])));
                }
                results
                    .lock()
                    .expect("worker never panics while holding the lock")
                    .append(&mut local);
            });
        }
    });
    let mut indexed = results.into_inner().expect("all workers joined");
    indexed.sort_unstable_by_key(|&(idx, _)| idx);
    indexed.into_iter().map(|(_, value)| value).collect()
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        rb = Some(handle.join().expect("join closure panicked"));
        ra
    });
    (ra, rb.expect("spawned closure completed"))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u64];
        let out: Vec<u64> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn par_map_actually_uses_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u64> = (0..256).collect();
        let _: Vec<()> = items
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
            })
            .collect();
        if super::current_num_threads() > 1 {
            assert!(seen.lock().unwrap().len() > 1, "expected multiple workers");
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
