//! Fixed-bandwidth, fixed-latency memory subsystem and DMA transfer model.
//!
//! Following the paper's methodology (Section III), the memory subsystem is
//! not simulated at DRAM command granularity. Every transfer pays a fixed
//! access latency and then streams at the aggregate channel bandwidth.

use serde::{Deserialize, Serialize};

use crate::config::NpuConfig;
use crate::cycles::Cycles;

/// DMA engine model used for `LOAD_TILE`/`STORE_TILE` and for checkpoint /
/// restore traffic.
///
/// ```
/// use npu_sim::{DmaModel, NpuConfig};
///
/// let cfg = NpuConfig::paper_default();
/// let dma = DmaModel::new(&cfg);
/// // Streaming the entire 8 MB activation buffer takes tens of microseconds.
/// let us = cfg.cycles_to_micros(dma.transfer_cycles(cfg.activation_sram_bytes));
/// assert!(us > 10.0 && us < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaModel {
    bytes_per_cycle: f64,
    access_latency: Cycles,
}

impl DmaModel {
    /// Builds the DMA model from an NPU configuration.
    pub fn new(cfg: &NpuConfig) -> Self {
        DmaModel {
            bytes_per_cycle: cfg.bytes_per_cycle(),
            access_latency: Cycles::new(cfg.memory_latency_cycles),
        }
    }

    /// The aggregate streaming throughput in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// The fixed access latency charged once per transfer.
    pub fn access_latency(&self) -> Cycles {
        self.access_latency
    }

    /// Total cycles to transfer `bytes` (one access latency plus streaming
    /// time). A zero-byte transfer is free.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let streaming = (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        self.access_latency + Cycles::new(streaming)
    }

    /// Cycles for a transfer that is split over `chunks` independent DMA
    /// descriptors (each paying the access latency once).
    pub fn chunked_transfer_cycles(&self, bytes: u64, chunks: u64) -> Cycles {
        if bytes == 0 || chunks == 0 {
            return Cycles::ZERO;
        }
        let streaming = (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        self.access_latency * chunks + Cycles::new(streaming)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dma() -> DmaModel {
        DmaModel::new(&NpuConfig::paper_default())
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(dma().transfer_cycles(0), Cycles::ZERO);
        assert_eq!(dma().chunked_transfer_cycles(0, 4), Cycles::ZERO);
    }

    #[test]
    fn small_transfer_dominated_by_latency() {
        let d = dma();
        let c = d.transfer_cycles(64);
        assert_eq!(c, d.access_latency() + Cycles::new(1));
    }

    #[test]
    fn large_transfer_dominated_by_bandwidth() {
        let cfg = NpuConfig::paper_default();
        let d = DmaModel::new(&cfg);
        let bytes = 8 * 1024 * 1024;
        let c = d.transfer_cycles(bytes);
        let expected_stream = (bytes as f64 / cfg.bytes_per_cycle()).ceil() as u64;
        assert_eq!(c.get(), expected_stream + cfg.memory_latency_cycles);
        // 8 MB at 358 GB/s is ~23 us.
        let us = cfg.cycles_to_micros(c);
        assert!(us > 20.0 && us < 30.0, "got {us}");
    }

    #[test]
    fn chunked_transfer_pays_latency_per_chunk() {
        let d = dma();
        let single = d.transfer_cycles(1 << 20);
        let chunked = d.chunked_transfer_cycles(1 << 20, 8);
        assert_eq!(chunked.get() - single.get(), d.access_latency().get() * 7);
    }

    #[test]
    fn throughput_matches_config() {
        let cfg = NpuConfig::paper_default();
        let d = DmaModel::new(&cfg);
        assert!((d.bytes_per_cycle() - cfg.bytes_per_cycle()).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_bytes() {
        let d = dma();
        let mut prev = Cycles::ZERO;
        for bytes in [1u64, 100, 10_000, 1_000_000, 100_000_000] {
            let c = d.transfer_cycles(bytes);
            assert!(c >= prev);
            prev = c;
        }
    }
}
