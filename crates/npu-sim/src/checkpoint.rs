//! Checkpoint / restore latency model for the CHECKPOINT preemption
//! mechanism (Section IV-B/IV-C of the PREMA paper).
//!
//! When a running inference task is preempted with CHECKPOINT, the NPU's trap
//! routine uses the DMA engine to spill the live output activations (the
//! contents of the UBUF and accumulator queue that were produced since the
//! last layer boundary) to DRAM; when the task is later resumed, the same
//! state is read back. Weights are never checkpointed because inference
//! weights are immutable.

use serde::{Deserialize, Serialize};

use crate::config::NpuConfig;
use crate::cycles::Cycles;
use crate::memory::DmaModel;

/// Latency model for checkpointing and restoring a preempted task's context.
///
/// ```
/// use npu_sim::{CheckpointModel, NpuConfig};
///
/// let cfg = NpuConfig::paper_default();
/// let model = CheckpointModel::new(&cfg);
/// // Checkpointing the full 8 MB of on-chip activation state takes tens of
/// // microseconds — the paper reports a 59 us worst case.
/// let worst = model.checkpoint_cycles(cfg.activation_sram_bytes);
/// assert!(cfg.cycles_to_micros(worst) > 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointModel {
    dma: DmaModel,
    trap_overhead: Cycles,
    channels: u64,
    max_bytes: u64,
}

impl CheckpointModel {
    /// Fixed cycles consumed by the software trap routine that initiates a
    /// checkpoint or restore (register state save, DMA descriptor setup).
    pub const TRAP_OVERHEAD_CYCLES: u64 = 500;

    /// Builds the checkpoint model from an NPU configuration.
    pub fn new(cfg: &NpuConfig) -> Self {
        CheckpointModel {
            dma: DmaModel::new(cfg),
            trap_overhead: Cycles::new(Self::TRAP_OVERHEAD_CYCLES),
            channels: cfg.memory_channels.max(1),
            max_bytes: cfg.max_checkpoint_bytes(),
        }
    }

    /// The largest context state that can ever need checkpointing (bounded by
    /// the on-chip activation storage).
    pub fn max_checkpoint_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Cycles to checkpoint `live_bytes` of context state to DRAM.
    ///
    /// This is the *preemption latency* reported in Figure 5(a): the time
    /// between the preemption request being serviced at a `GEMM_OP` boundary
    /// and the NPU being free to load the preempting task.
    pub fn checkpoint_cycles(&self, live_bytes: u64) -> Cycles {
        let bytes = live_bytes.min(self.max_bytes);
        if bytes == 0 {
            // Even an empty checkpoint runs the trap routine.
            return self.trap_overhead;
        }
        self.trap_overhead + self.dma.chunked_transfer_cycles(bytes, self.channels)
    }

    /// Cycles to restore a previously checkpointed context of `live_bytes`.
    ///
    /// Restoration is symmetric with checkpointing: the same data is streamed
    /// back through the DMA engine before the preempted task resumes.
    pub fn restore_cycles(&self, live_bytes: u64) -> Cycles {
        self.checkpoint_cycles(live_bytes)
    }

    /// The worst-case preemption latency under this configuration (the whole
    /// activation SRAM is live).
    pub fn worst_case_checkpoint_cycles(&self) -> Cycles {
        self.checkpoint_cycles(self.max_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (NpuConfig, CheckpointModel) {
        let cfg = NpuConfig::paper_default();
        let model = CheckpointModel::new(&cfg);
        (cfg, model)
    }

    #[test]
    fn empty_checkpoint_costs_only_the_trap() {
        let (_, m) = model();
        assert_eq!(
            m.checkpoint_cycles(0),
            Cycles::new(CheckpointModel::TRAP_OVERHEAD_CYCLES)
        );
    }

    #[test]
    fn checkpoint_is_monotone_in_bytes() {
        let (_, m) = model();
        let mut prev = Cycles::ZERO;
        for bytes in [0u64, 1 << 10, 1 << 16, 1 << 20, 1 << 23] {
            let c = m.checkpoint_cycles(bytes);
            assert!(c >= prev, "checkpoint cycles must not decrease");
            prev = c;
        }
    }

    #[test]
    fn checkpoint_bytes_are_capped_at_sram_size() {
        let (cfg, m) = model();
        assert_eq!(
            m.checkpoint_cycles(cfg.activation_sram_bytes),
            m.checkpoint_cycles(u64::MAX)
        );
    }

    #[test]
    fn worst_case_is_tens_of_microseconds() {
        let (cfg, m) = model();
        let us = cfg.cycles_to_micros(m.worst_case_checkpoint_cycles());
        // Paper: worst case 59 us when the entire 8 MB of UBUF/ACCQ is
        // checkpointed. Our fixed-bandwidth model lands in the same regime.
        assert!(us > 10.0 && us < 100.0, "worst case {us} us");
    }

    #[test]
    fn restore_matches_checkpoint() {
        let (_, m) = model();
        for bytes in [0u64, 4096, 1 << 20] {
            assert_eq!(m.checkpoint_cycles(bytes), m.restore_cycles(bytes));
        }
    }

    #[test]
    fn max_checkpoint_bytes_reflects_config() {
        let (cfg, m) = model();
        assert_eq!(m.max_checkpoint_bytes(), cfg.activation_sram_bytes);
    }

    #[test]
    fn smaller_sram_means_smaller_worst_case() {
        let small_cfg = NpuConfig::builder().activation_sram_bytes(1 << 20).build();
        let small = CheckpointModel::new(&small_cfg);
        let (_, big) = model();
        assert!(small.worst_case_checkpoint_cycles() < big.worst_case_checkpoint_cycles());
    }
}
