//! NPU architectural configuration (Table I of the PREMA paper).

use serde::{Deserialize, Serialize};

use crate::cycles::Cycles;

/// Number of bytes per 16-bit datum (weights and activations).
pub const BYTES_PER_ELEMENT: u64 = 2;

/// Architectural parameters of the simulated NPU.
///
/// The default values ([`NpuConfig::paper_default`]) reproduce Table I of the
/// PREMA paper: a 128×128 weight-stationary systolic array clocked at
/// 700 MHz, 8 MB of on-chip activation SRAM, 4 MB of weight SRAM, eight
/// memory channels providing 358 GB/s at a 100-cycle access latency.
///
/// Construct variations with [`NpuConfigBuilder`]:
///
/// ```
/// use npu_sim::NpuConfig;
///
/// let cfg = NpuConfig::builder().systolic_width(64).systolic_height(64).build();
/// assert_eq!(cfg.systolic_width, 64);
/// assert_eq!(cfg.pe_count(), 64 * 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuConfig {
    /// Width of the systolic array (`SW` in Algorithm 1).
    pub systolic_width: u64,
    /// Height of the systolic array (`SH` in Algorithm 1).
    pub systolic_height: u64,
    /// Depth of the accumulator queue (`ACC` in Algorithm 1): the number of
    /// output-activation columns a single `GEMM_OP` produces.
    pub accumulator_depth: u64,
    /// Operating frequency of the processing elements, in MHz.
    pub frequency_mhz: f64,
    /// On-chip unified activation buffer (UBUF) capacity in bytes.
    pub activation_sram_bytes: u64,
    /// On-chip weight buffer capacity in bytes.
    pub weight_sram_bytes: u64,
    /// Number of DRAM channels.
    pub memory_channels: u64,
    /// Aggregate off-chip memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Fixed DRAM access latency in cycles.
    pub memory_latency_cycles: u64,
    /// Number of lanes in the vector (element-wise) unit.
    pub vector_lanes: u64,
}

impl NpuConfig {
    /// The configuration of Table I in the PREMA paper.
    pub fn paper_default() -> Self {
        NpuConfig {
            systolic_width: 128,
            systolic_height: 128,
            accumulator_depth: 2048,
            frequency_mhz: 700.0,
            activation_sram_bytes: 8 * 1024 * 1024,
            weight_sram_bytes: 4 * 1024 * 1024,
            memory_channels: 8,
            memory_bandwidth_gbps: 358.0,
            memory_latency_cycles: 100,
            vector_lanes: 128,
        }
    }

    /// Starts building a configuration from the paper defaults.
    pub fn builder() -> NpuConfigBuilder {
        NpuConfigBuilder::new()
    }

    /// Total number of processing elements in the systolic array.
    pub fn pe_count(&self) -> u64 {
        self.systolic_width * self.systolic_height
    }

    /// Peak MAC throughput in operations per cycle.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.pe_count()
    }

    /// Off-chip memory bandwidth expressed in bytes per NPU cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        // GB/s -> bytes/s -> bytes/cycle.
        (self.memory_bandwidth_gbps * 1e9) / (self.frequency_mhz * 1e6)
    }

    /// Cycles needed to stream `bytes` from DRAM at full bandwidth,
    /// excluding the fixed access latency.
    pub fn streaming_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        Cycles::new((bytes as f64 / self.bytes_per_cycle()).ceil() as u64)
    }

    /// Converts a cycle count into microseconds under this configuration.
    pub fn cycles_to_micros(&self, cycles: Cycles) -> f64 {
        cycles.to_micros(self.frequency_mhz)
    }

    /// Converts a cycle count into milliseconds under this configuration.
    pub fn cycles_to_millis(&self, cycles: Cycles) -> f64 {
        cycles.to_millis(self.frequency_mhz)
    }

    /// Converts microseconds into a cycle count under this configuration.
    pub fn micros_to_cycles(&self, micros: f64) -> Cycles {
        Cycles::from_micros(micros, self.frequency_mhz)
    }

    /// Converts milliseconds into a cycle count under this configuration.
    pub fn millis_to_cycles(&self, millis: f64) -> Cycles {
        Cycles::from_millis(millis, self.frequency_mhz)
    }

    /// Maximum number of bytes of execution context that can ever need
    /// checkpointing: the live output activations resident in the activation
    /// SRAM (UBUF plus accumulator queue).
    pub fn max_checkpoint_bytes(&self) -> u64 {
        self.activation_sram_bytes
    }

    /// A 64-bit digest of every architectural parameter, used as the
    /// NPU-configuration component of plan-compilation cache keys. Two
    /// configurations share a fingerprint exactly when they are field-wise
    /// identical (floats compared by bit pattern), so equal fingerprints
    /// imply identical compiled timing.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.systolic_width.hash(&mut hasher);
        self.systolic_height.hash(&mut hasher);
        self.accumulator_depth.hash(&mut hasher);
        self.frequency_mhz.to_bits().hash(&mut hasher);
        self.activation_sram_bytes.hash(&mut hasher);
        self.weight_sram_bytes.hash(&mut hasher);
        self.memory_channels.hash(&mut hasher);
        self.memory_bandwidth_gbps.to_bits().hash(&mut hasher);
        self.memory_latency_cycles.hash(&mut hasher);
        self.vector_lanes.hash(&mut hasher);
        hasher.finish()
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns an error string if any dimension, frequency, buffer size, or
    /// bandwidth parameter is zero or non-positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.systolic_width == 0 || self.systolic_height == 0 {
            return Err("systolic array dimensions must be non-zero".into());
        }
        if self.accumulator_depth == 0 {
            return Err("accumulator depth must be non-zero".into());
        }
        if self.frequency_mhz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("frequency must be positive".into());
        }
        if self.activation_sram_bytes == 0 || self.weight_sram_bytes == 0 {
            return Err("on-chip SRAM sizes must be non-zero".into());
        }
        if self.memory_bandwidth_gbps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("memory bandwidth must be positive".into());
        }
        if self.vector_lanes == 0 {
            return Err("vector lanes must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for NpuConfig {
    fn default() -> Self {
        NpuConfig::paper_default()
    }
}

/// Builder for [`NpuConfig`].
///
/// Starts from [`NpuConfig::paper_default`]; every setter overrides a single
/// field and the terminal [`build`](NpuConfigBuilder::build) method panics if
/// the result fails validation.
#[derive(Debug, Clone, Default)]
pub struct NpuConfigBuilder {
    cfg: Option<NpuConfig>,
}

impl NpuConfigBuilder {
    /// Creates a builder seeded with the paper-default configuration.
    pub fn new() -> Self {
        NpuConfigBuilder {
            cfg: Some(NpuConfig::paper_default()),
        }
    }

    fn cfg_mut(&mut self) -> &mut NpuConfig {
        self.cfg.get_or_insert_with(NpuConfig::paper_default)
    }

    /// Sets the systolic array width (`SW`).
    pub fn systolic_width(mut self, width: u64) -> Self {
        self.cfg_mut().systolic_width = width;
        self
    }

    /// Sets the systolic array height (`SH`).
    pub fn systolic_height(mut self, height: u64) -> Self {
        self.cfg_mut().systolic_height = height;
        self
    }

    /// Sets the accumulator queue depth (`ACC`).
    pub fn accumulator_depth(mut self, depth: u64) -> Self {
        self.cfg_mut().accumulator_depth = depth;
        self
    }

    /// Sets the PE operating frequency in MHz.
    pub fn frequency_mhz(mut self, mhz: f64) -> Self {
        self.cfg_mut().frequency_mhz = mhz;
        self
    }

    /// Sets the activation SRAM capacity in bytes.
    pub fn activation_sram_bytes(mut self, bytes: u64) -> Self {
        self.cfg_mut().activation_sram_bytes = bytes;
        self
    }

    /// Sets the weight SRAM capacity in bytes.
    pub fn weight_sram_bytes(mut self, bytes: u64) -> Self {
        self.cfg_mut().weight_sram_bytes = bytes;
        self
    }

    /// Sets the aggregate DRAM bandwidth in GB/s.
    pub fn memory_bandwidth_gbps(mut self, gbps: f64) -> Self {
        self.cfg_mut().memory_bandwidth_gbps = gbps;
        self
    }

    /// Sets the fixed DRAM access latency in cycles.
    pub fn memory_latency_cycles(mut self, cycles: u64) -> Self {
        self.cfg_mut().memory_latency_cycles = cycles;
        self
    }

    /// Sets the number of vector-unit lanes.
    pub fn vector_lanes(mut self, lanes: u64) -> Self {
        self.cfg_mut().vector_lanes = lanes;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NpuConfig::validate`].
    pub fn build(mut self) -> NpuConfig {
        let cfg = self.cfg.take().unwrap_or_default();
        if let Err(msg) = cfg.validate() {
            panic!("invalid NpuConfig: {msg}");
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_one() {
        let cfg = NpuConfig::paper_default();
        assert_eq!(cfg.systolic_width, 128);
        assert_eq!(cfg.systolic_height, 128);
        assert_eq!(cfg.frequency_mhz, 700.0);
        assert_eq!(cfg.activation_sram_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.weight_sram_bytes, 4 * 1024 * 1024);
        assert_eq!(cfg.memory_channels, 8);
        assert_eq!(cfg.memory_bandwidth_gbps, 358.0);
        assert_eq!(cfg.memory_latency_cycles, 100);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn pe_count_is_product_of_dimensions() {
        assert_eq!(NpuConfig::paper_default().pe_count(), 128 * 128);
    }

    #[test]
    fn bytes_per_cycle_is_roughly_511() {
        let bpc = NpuConfig::paper_default().bytes_per_cycle();
        assert!((bpc - 511.4).abs() < 1.0, "got {bpc}");
    }

    #[test]
    fn streaming_cycles_rounds_up_and_zero_bytes_is_free() {
        let cfg = NpuConfig::paper_default();
        assert_eq!(cfg.streaming_cycles(0), Cycles::ZERO);
        assert_eq!(cfg.streaming_cycles(1), Cycles::new(1));
        let one_mb = cfg.streaming_cycles(1024 * 1024).get();
        assert!((2000..=2100).contains(&one_mb), "got {one_mb}");
    }

    #[test]
    fn time_conversions_are_consistent() {
        let cfg = NpuConfig::paper_default();
        let c = cfg.millis_to_cycles(0.25);
        assert_eq!(c, Cycles::new(175_000));
        assert!((cfg.cycles_to_millis(c) - 0.25).abs() < 1e-9);
        assert!((cfg.cycles_to_micros(cfg.micros_to_cycles(59.0)) - 59.0).abs() < 1e-6);
    }

    #[test]
    fn builder_overrides_single_fields() {
        let cfg = NpuConfig::builder()
            .systolic_width(64)
            .systolic_height(32)
            .accumulator_depth(512)
            .frequency_mhz(1000.0)
            .memory_bandwidth_gbps(100.0)
            .memory_latency_cycles(50)
            .activation_sram_bytes(1 << 20)
            .weight_sram_bytes(1 << 20)
            .vector_lanes(64)
            .build();
        assert_eq!(cfg.systolic_width, 64);
        assert_eq!(cfg.systolic_height, 32);
        assert_eq!(cfg.accumulator_depth, 512);
        assert_eq!(cfg.frequency_mhz, 1000.0);
        assert_eq!(cfg.memory_latency_cycles, 50);
        assert_eq!(cfg.vector_lanes, 64);
    }

    #[test]
    #[should_panic(expected = "invalid NpuConfig")]
    fn builder_rejects_zero_dimensions() {
        let _ = NpuConfig::builder().systolic_width(0).build();
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut cfg = NpuConfig::paper_default();
        cfg.memory_bandwidth_gbps = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = NpuConfig::paper_default();
        cfg.vector_lanes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = NpuConfig::paper_default();
        cfg.accumulator_depth = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(NpuConfig::default(), NpuConfig::paper_default());
    }

    #[test]
    fn fingerprint_distinguishes_configurations() {
        let base = NpuConfig::paper_default();
        assert_eq!(base.fingerprint(), NpuConfig::paper_default().fingerprint());
        let small = NpuConfig::builder().systolic_width(64).build();
        assert_ne!(base.fingerprint(), small.fingerprint());
        let slow = NpuConfig::builder().frequency_mhz(350.0).build();
        assert_ne!(base.fingerprint(), slow.fingerprint());
    }

    #[test]
    fn max_checkpoint_bytes_is_activation_sram() {
        let cfg = NpuConfig::paper_default();
        assert_eq!(cfg.max_checkpoint_bytes(), cfg.activation_sram_bytes);
    }

    #[test]
    fn peak_macs_match_pe_count() {
        let cfg = NpuConfig::paper_default();
        assert_eq!(cfg.peak_macs_per_cycle(), cfg.pe_count());
    }
}
