//! Timing model for the vector (element-wise) unit.
//!
//! `VECTOR_OP` instructions apply activation functions, pooling reductions,
//! bias additions and residual additions to the output activations produced
//! by the GEMM unit. The unit processes `vector_lanes` elements per cycle and
//! its work is typically fused with the producing layer (Section IV-B), so
//! the model only needs the element count.

use serde::{Deserialize, Serialize};

use crate::config::NpuConfig;
use crate::cycles::Cycles;
use crate::isa::VectorOpKind;

/// The element-wise work attached to a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorWork {
    /// The kind of element-wise operation.
    pub kind: VectorOpKind,
    /// Number of elements processed.
    pub elements: u64,
}

impl VectorWork {
    /// Creates a new vector-unit work description.
    pub fn new(kind: VectorOpKind, elements: u64) -> Self {
        VectorWork { kind, elements }
    }

    /// Cycles needed to process this work on the vector unit.
    ///
    /// Transcendental activations (sigmoid, tanh, softmax) are modelled at a
    /// quarter of the lane throughput to reflect their multi-cycle pipelines;
    /// everything else runs at one element per lane per cycle.
    pub fn cycles(&self, cfg: &NpuConfig) -> Cycles {
        if self.elements == 0 {
            return Cycles::ZERO;
        }
        let lanes = cfg.vector_lanes.max(1);
        let throughput_divisor = match self.kind {
            VectorOpKind::Sigmoid | VectorOpKind::Tanh | VectorOpKind::Softmax => 4,
            VectorOpKind::Relu
            | VectorOpKind::Add
            | VectorOpKind::MaxPool
            | VectorOpKind::AvgPool => 1,
        };
        let effective_lanes = (lanes / throughput_divisor).max(1);
        Cycles::new(self.elements.div_ceil(effective_lanes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    #[test]
    fn zero_elements_take_zero_cycles() {
        let w = VectorWork::new(VectorOpKind::Relu, 0);
        assert_eq!(w.cycles(&cfg()), Cycles::ZERO);
    }

    #[test]
    fn relu_runs_at_full_lane_throughput() {
        let c = cfg();
        let w = VectorWork::new(VectorOpKind::Relu, c.vector_lanes * 10);
        assert_eq!(w.cycles(&c), Cycles::new(10));
    }

    #[test]
    fn partial_vector_rounds_up() {
        let c = cfg();
        let w = VectorWork::new(VectorOpKind::Add, c.vector_lanes + 1);
        assert_eq!(w.cycles(&c), Cycles::new(2));
    }

    #[test]
    fn transcendental_ops_are_slower() {
        let c = cfg();
        let relu = VectorWork::new(VectorOpKind::Relu, 4096);
        let tanh = VectorWork::new(VectorOpKind::Tanh, 4096);
        assert!(tanh.cycles(&c) > relu.cycles(&c));
        assert_eq!(tanh.cycles(&c).get(), relu.cycles(&c).get() * 4);
    }

    #[test]
    fn single_lane_config_still_progresses() {
        let c = NpuConfig::builder().vector_lanes(1).build();
        let w = VectorWork::new(VectorOpKind::Softmax, 7);
        assert_eq!(w.cycles(&c), Cycles::new(7));
    }
}
