//! Layer-level execution model: double-buffered tile execution, preemption
//! intervals, and the live checkpoint footprint.
//!
//! The scheduler in `prema-core` never simulates individual cycles. Instead,
//! every layer of a DNN is modelled once as a [`LayerTiming`]: a short list of
//! [`PreemptionInterval`]s, each covering a group of consecutive `GEMM_OP`
//! tiles. Interval boundaries are the legal CHECKPOINT preemption points
//! (Section IV-C footnote 2 of the paper), and every interval records the
//! output-activation bytes that would have to be checkpointed if the task is
//! preempted at its end.

use serde::{Deserialize, Serialize};

use crate::config::NpuConfig;
use crate::cycles::Cycles;
use crate::gemm::{GemmShape, TilePlan};
use crate::isa::{Buffer, Instruction, VectorOpKind};
use crate::memory::DmaModel;
use crate::vector::VectorWork;

/// Default number of preemption intervals a single layer is coalesced into.
///
/// Large layers can consist of thousands of `GEMM_OP` tiles; tracking each
/// individually would be needlessly expensive for the multi-task scheduler.
/// Grouping them into at most this many intervals keeps the preemption-point
/// granularity far below the scheduling quantum (0.25 ms) while bounding
/// memory.
pub const DEFAULT_INTERVALS_PER_LAYER: usize = 32;

/// The architectural work performed by one DNN layer, independent of any
/// particular model-zoo representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerWork {
    /// The GEMM this layer lowers to, if it runs on the systolic array.
    pub gemm: Option<GemmShape>,
    /// Element-wise work executed on the vector unit (activation functions,
    /// pooling, residual adds), possibly fused with the GEMM.
    pub vector: Option<VectorWork>,
    /// Whether this layer is a convolution (uses `CONV_OP` rather than
    /// `GEMM_OP`); purely informational for the instruction stream.
    pub is_conv: bool,
    /// Weight bytes streamed from DRAM for this layer.
    pub weight_bytes: u64,
    /// Input-activation bytes streamed from DRAM (or the previous layer's
    /// on-chip outputs).
    pub input_bytes: u64,
    /// Output-activation bytes produced by this layer.
    pub output_bytes: u64,
    /// Whether the layer operates in place (ACTV / POOL): in-place layers
    /// produce no new checkpointable state of their own.
    pub in_place: bool,
}

impl LayerWork {
    /// A layer executed as a plain matrix multiplication (`GEMM_OP`), e.g. a
    /// fully-connected or recurrent layer.
    pub fn gemm(shape: GemmShape, output_bytes: u64) -> Self {
        LayerWork {
            gemm: Some(shape),
            vector: None,
            is_conv: false,
            weight_bytes: shape.weight_bytes(),
            input_bytes: shape.input_bytes(),
            output_bytes,
            in_place: false,
        }
    }

    /// A convolution lowered to a matrix multiplication (`CONV_OP`).
    pub fn conv(shape: GemmShape, output_bytes: u64) -> Self {
        LayerWork {
            is_conv: true,
            ..LayerWork::gemm(shape, output_bytes)
        }
    }

    /// A layer executed purely on the vector unit (activation or pooling
    /// layer that was not fused with its producer).
    pub fn vector_only(work: VectorWork, data_bytes: u64) -> Self {
        LayerWork {
            gemm: None,
            vector: Some(work),
            is_conv: false,
            weight_bytes: 0,
            input_bytes: data_bytes,
            output_bytes: data_bytes,
            in_place: true,
        }
    }

    /// Fuses an element-wise operation (e.g. ReLU) with this layer's GEMM.
    pub fn with_fused_vector(mut self, kind: VectorOpKind, elements: u64) -> Self {
        self.vector = Some(VectorWork::new(kind, elements));
        self
    }

    /// Total MAC operations performed by this layer.
    pub fn macs(&self) -> u64 {
        self.gemm.map(|g| g.macs()).unwrap_or(0)
    }

    /// Lowers the layer into the coarse-grained instruction stream executed
    /// by the NPU front-end (Section II-B). The stream is representative, not
    /// tile-exact: one `GEMM_OP`/`CONV_OP` is emitted per tile group.
    pub fn instructions(&self, cfg: &NpuConfig) -> Vec<Instruction> {
        let mut stream = Vec::new();
        if self.weight_bytes > 0 {
            stream.push(Instruction::LoadTile {
                buffer: Buffer::Weight,
                bytes: self.weight_bytes,
            });
        }
        if self.input_bytes > 0 {
            stream.push(Instruction::LoadTile {
                buffer: Buffer::Activation,
                bytes: self.input_bytes,
            });
        }
        if let Some(shape) = self.gemm {
            let plan = TilePlan::new(shape, cfg);
            let per_tile = GemmShape::new(
                shape.m.min(cfg.systolic_width),
                shape.k.min(cfg.systolic_height),
                shape.n.min(cfg.accumulator_depth),
            );
            for _ in 0..plan.tile_count() {
                stream.push(if self.is_conv {
                    Instruction::ConvOp { shape: per_tile }
                } else {
                    Instruction::GemmOp { shape: per_tile }
                });
            }
        }
        if let Some(v) = self.vector {
            stream.push(Instruction::VectorOp {
                kind: v.kind,
                elements: v.elements,
            });
        }
        if self.output_bytes > 0 && !self.in_place {
            stream.push(Instruction::StoreTile {
                buffer: Buffer::Activation,
                bytes: self.output_bytes,
            });
        }
        stream
    }
}

/// One preemption interval: a group of consecutive `GEMM_OP` tiles (or a
/// slice of vector-unit work) bounded by legal preemption points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreemptionInterval {
    /// Execution cycles covered by this interval.
    pub cycles: Cycles,
    /// Output-activation bytes that must be checkpointed if the task is
    /// preempted at the end of this interval (live state in UBUF + ACCQ).
    pub live_output_bytes: u64,
}

/// The modelled execution of a single layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    intervals: Vec<PreemptionInterval>,
    total_cycles: Cycles,
    compute_cycles: Cycles,
    memory_cycles: Cycles,
    macs: u64,
}

impl LayerTiming {
    /// Models `work` on the NPU described by `cfg` with the default
    /// preemption-interval granularity.
    pub fn model(work: &LayerWork, cfg: &NpuConfig) -> Self {
        Self::model_with_intervals(work, cfg, DEFAULT_INTERVALS_PER_LAYER)
    }

    /// Models `work`, coalescing tiles into at most `max_intervals`
    /// preemption intervals.
    ///
    /// A [`TilePlan`] contains at most two *distinct* tiles — the repeated
    /// full-size inner tile and the optional n-dimension edge tile — so each
    /// interval's cycle count and live-byte total is computed in closed form
    /// from the number of inner/outer tiles it covers, instead of walking
    /// every `GEMM_OP` individually. A GEMM lowering to tens of thousands of
    /// tiles therefore models in O(`max_intervals`) rather than O(tiles),
    /// and the produced intervals are bit-identical to the per-tile walk
    /// (the grouping, the first-interval DMA lead-in and the per-tile
    /// checkpoint-footprint clamp all commute with the batching; a
    /// regression test in this module pins the equivalence).
    ///
    /// # Panics
    ///
    /// Panics if `max_intervals` is zero.
    pub fn model_with_intervals(work: &LayerWork, cfg: &NpuConfig, max_intervals: usize) -> Self {
        assert!(max_intervals > 0, "max_intervals must be non-zero");
        let dma = DmaModel::new(cfg);

        let mut intervals = Vec::new();
        let mut compute_total = Cycles::ZERO;
        let mut memory_total = Cycles::ZERO;
        let mut total = Cycles::ZERO;

        if let Some(shape) = work.gemm {
            let plan = TilePlan::new(shape, cfg);
            let inner_count = plan.inner_tile_count();
            let tile_count = plan.tile_count();
            let tiles_per_interval = tile_count.div_ceil(max_intervals as u64).max(1);

            let inner = plan.inner_tile();
            let outer = plan.outer_tile();
            let (outer_latency, outer_compute, outer_memory, outer_out_bytes) = outer
                .map(|t| {
                    (
                        t.latency(),
                        t.compute_cycles,
                        t.memory_cycles,
                        t.output_bytes,
                    )
                })
                .unwrap_or((Cycles::ZERO, Cycles::ZERO, Cycles::ZERO, 0));

            // The first operand fetch cannot be hidden behind compute: charge
            // it as a lead-in on the first interval (double buffering warms up
            // after the first tile).
            let first_tile = if inner_count > 0 { Some(inner) } else { outer };
            let lead_in = first_tile
                .map(|t| t.memory_cycles + dma.access_latency())
                .unwrap_or(Cycles::ZERO);

            let outer_count = tile_count - inner_count;
            compute_total += inner.compute_cycles * inner_count + outer_compute * outer_count;
            memory_total += inner.memory_cycles * inner_count + outer_memory * outer_count;

            let cap = cfg.max_checkpoint_bytes();
            let mut live_bytes: u64 = 0;
            let mut start = 0u64;
            while start < tile_count {
                let end = (start + tiles_per_interval).min(tile_count);
                let inner_in = end.min(inner_count).saturating_sub(start.min(inner_count));
                let outer_in = (end - start) - inner_in;
                let mut acc_cycles = inner.latency() * inner_in + outer_latency * outer_in;
                if start == 0 {
                    acc_cycles += lead_in;
                }
                // Saturating: the per-tile walk clamps at `cap` after every
                // tile and so can never overflow; a saturated batched sum
                // clamps to the same `cap`.
                live_bytes = live_bytes
                    .saturating_add(inner.output_bytes.saturating_mul(inner_in))
                    .saturating_add(outer_out_bytes.saturating_mul(outer_in))
                    .min(cap);
                intervals.push(PreemptionInterval {
                    cycles: acc_cycles,
                    live_output_bytes: live_bytes,
                });
                total += acc_cycles;
                start = end;
            }
        }

        // Vector-unit work: fused work overlaps with the systolic array and is
        // only charged for the part that exceeds the GEMM time; standalone
        // (in-place ACTV/POOL) layers are charged in full as a single
        // interval that carries no checkpointable state.
        if let Some(v) = work.vector {
            let v_cycles = v.cycles(cfg);
            if work.gemm.is_some() {
                if v_cycles > total {
                    let extra = v_cycles - total;
                    total += extra;
                    if let Some(last) = intervals.last_mut() {
                        last.cycles += extra;
                    }
                }
            } else {
                let io_cycles = if work.in_place {
                    Cycles::ZERO
                } else {
                    dma.transfer_cycles(work.input_bytes + work.output_bytes)
                };
                let cycles = v_cycles + io_cycles;
                intervals.push(PreemptionInterval {
                    cycles,
                    live_output_bytes: 0,
                });
                total += cycles;
            }
        }

        // A layer with neither GEMM nor vector work (e.g. a reshape) still
        // appears as one zero-byte interval so that plans never contain empty
        // layers.
        if intervals.is_empty() {
            intervals.push(PreemptionInterval {
                cycles: Cycles::ZERO,
                live_output_bytes: 0,
            });
        }

        LayerTiming {
            intervals,
            total_cycles: total,
            compute_cycles: compute_total,
            memory_cycles: memory_total,
            macs: work.macs(),
        }
    }

    /// The preemption intervals of this layer, in execution order.
    pub fn intervals(&self) -> &[PreemptionInterval] {
        &self.intervals
    }

    /// Consumes the timing and returns its intervals without cloning, for
    /// callers (like `prema-core`'s execution-plan compiler) that flatten
    /// many layers' intervals into one arena.
    pub fn into_intervals(self) -> Vec<PreemptionInterval> {
        self.intervals
    }

    /// Total modelled execution time of the layer.
    pub fn total_cycles(&self) -> Cycles {
        self.total_cycles
    }

    /// Aggregate compute-phase cycles across all tiles (before overlap).
    pub fn compute_cycles(&self) -> Cycles {
        self.compute_cycles
    }

    /// Aggregate memory-phase cycles across all tiles (before overlap).
    pub fn memory_cycles(&self) -> Cycles {
        self.memory_cycles
    }

    /// Total MAC operations of the layer.
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// The largest checkpoint footprint reached at any preemption point of
    /// this layer.
    pub fn peak_checkpoint_bytes(&self) -> u64 {
        self.intervals
            .iter()
            .map(|i| i.live_output_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Effective MAC throughput in operations per cycle, a measure of how
    /// well the layer utilizes the systolic array (Figure 10 of the paper).
    pub fn effective_macs_per_cycle(&self) -> f64 {
        if self.total_cycles.is_zero() {
            0.0
        } else {
            self.macs as f64 / self.total_cycles.get() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    #[test]
    fn gemm_layer_total_matches_tile_plan_plus_lead_in() {
        let c = cfg();
        let shape = GemmShape::new(512, 512, 4096);
        let work = LayerWork::gemm(shape, shape.output_bytes());
        let timing = LayerTiming::model(&work, &c);
        let plan = TilePlan::new(shape, &c);
        let lead_in =
            plan.iter().next().unwrap().memory_cycles + Cycles::new(c.memory_latency_cycles);
        assert_eq!(timing.total_cycles(), plan.total_cycles() + lead_in);
    }

    #[test]
    fn interval_cycles_sum_to_total() {
        let c = cfg();
        let shape = GemmShape::new(4096, 4096, 16);
        let work = LayerWork::gemm(shape, shape.output_bytes());
        let timing = LayerTiming::model(&work, &c);
        let sum: Cycles = timing.intervals().iter().map(|i| i.cycles).sum();
        assert_eq!(sum, timing.total_cycles());
    }

    #[test]
    fn interval_count_is_bounded() {
        let c = cfg();
        let shape = GemmShape::new(4096, 25088, 64);
        let work = LayerWork::gemm(shape, shape.output_bytes());
        let timing = LayerTiming::model(&work, &c);
        assert!(timing.intervals().len() <= DEFAULT_INTERVALS_PER_LAYER);
        assert!(timing.intervals().len() > 1);
    }

    #[test]
    fn live_bytes_are_monotone_and_capped() {
        let c = cfg();
        // A huge layer whose outputs exceed the activation SRAM.
        let shape = GemmShape::new(8192, 1024, 4096);
        let work = LayerWork::gemm(shape, shape.output_bytes());
        let timing = LayerTiming::model(&work, &c);
        let mut prev = 0;
        for interval in timing.intervals() {
            assert!(interval.live_output_bytes >= prev);
            assert!(interval.live_output_bytes <= c.max_checkpoint_bytes());
            prev = interval.live_output_bytes;
        }
        assert_eq!(timing.peak_checkpoint_bytes(), c.max_checkpoint_bytes());
    }

    #[test]
    fn vector_only_layer_has_no_checkpoint_state() {
        let c = cfg();
        let work =
            LayerWork::vector_only(VectorWork::new(VectorOpKind::MaxPool, 1_000_000), 2_000_000);
        let timing = LayerTiming::model(&work, &c);
        assert_eq!(timing.peak_checkpoint_bytes(), 0);
        assert!(timing.total_cycles() > Cycles::ZERO);
        assert_eq!(timing.macs(), 0);
    }

    #[test]
    fn fused_activation_does_not_dominate() {
        let c = cfg();
        let shape = GemmShape::new(512, 512, 4096);
        let plain = LayerTiming::model(&LayerWork::gemm(shape, shape.output_bytes()), &c);
        let fused = LayerTiming::model(
            &LayerWork::gemm(shape, shape.output_bytes())
                .with_fused_vector(VectorOpKind::Relu, shape.output_elements()),
            &c,
        );
        // ReLU over the outputs is far cheaper than the GEMM, so fusing it is free.
        assert_eq!(plain.total_cycles(), fused.total_cycles());
    }

    #[test]
    fn empty_layer_has_single_zero_interval() {
        let c = cfg();
        let work = LayerWork {
            gemm: None,
            vector: None,
            is_conv: false,
            weight_bytes: 0,
            input_bytes: 0,
            output_bytes: 0,
            in_place: true,
        };
        let timing = LayerTiming::model(&work, &c);
        assert_eq!(timing.intervals().len(), 1);
        assert_eq!(timing.total_cycles(), Cycles::ZERO);
    }

    #[test]
    fn effective_throughput_reflects_underutilization() {
        let c = cfg();
        // A 1x1-conv-like layer with tiny reduction depth underutilizes the array.
        let small_k = LayerWork::conv(GemmShape::new(256, 32, 4096), 256 * 4096 * 2);
        // A large FC layer keeps the array busy.
        let big = LayerWork::gemm(GemmShape::new(4096, 4096, 2048), 4096 * 2048 * 2);
        let t_small = LayerTiming::model(&small_k, &c);
        let t_big = LayerTiming::model(&big, &c);
        assert!(t_big.effective_macs_per_cycle() > t_small.effective_macs_per_cycle());
    }

    #[test]
    fn instruction_stream_shape() {
        let c = cfg();
        let shape = GemmShape::new(256, 256, 256);
        let work = LayerWork::conv(shape, shape.output_bytes())
            .with_fused_vector(VectorOpKind::Relu, shape.output_elements());
        let stream = work.instructions(&c);
        assert!(stream
            .iter()
            .any(|i| matches!(i, Instruction::LoadTile { .. })));
        assert!(stream.iter().any(|i| i.is_gemm()));
        assert!(stream
            .iter()
            .any(|i| matches!(i, Instruction::VectorOp { .. })));
        assert!(stream
            .iter()
            .any(|i| matches!(i, Instruction::StoreTile { .. })));
        // Conv layers emit CONV_OP, not GEMM_OP.
        assert!(stream
            .iter()
            .all(|i| !matches!(i, Instruction::GemmOp { .. })));
    }

    #[test]
    #[should_panic(expected = "max_intervals must be non-zero")]
    fn zero_intervals_rejected() {
        let c = cfg();
        let work = LayerWork::gemm(GemmShape::new(1, 1, 1), 2);
        let _ = LayerTiming::model_with_intervals(&work, &c, 0);
    }

    /// The original O(tiles) interval construction, kept as the test oracle
    /// for the closed-form grouping in [`LayerTiming::model_with_intervals`].
    fn intervals_by_tile_walk(
        work: &LayerWork,
        cfg: &NpuConfig,
        max_intervals: usize,
    ) -> Vec<PreemptionInterval> {
        let dma = DmaModel::new(cfg);
        let mut intervals = Vec::new();
        let Some(shape) = work.gemm else {
            return intervals;
        };
        let plan = TilePlan::new(shape, cfg);
        let tiles_per_interval = plan.tile_count().div_ceil(max_intervals as u64).max(1);
        let lead_in = plan
            .iter()
            .next()
            .map(|t| t.memory_cycles + dma.access_latency())
            .unwrap_or(Cycles::ZERO);
        let mut live_bytes: u64 = 0;
        let mut acc_cycles = Cycles::ZERO;
        let mut tiles_in_group = 0u64;
        let mut emitted_lead_in = false;
        for tile in plan.iter() {
            let mut cycles = tile.latency();
            if !emitted_lead_in {
                cycles += lead_in;
                emitted_lead_in = true;
            }
            acc_cycles += cycles;
            live_bytes = (live_bytes + tile.output_bytes).min(cfg.max_checkpoint_bytes());
            tiles_in_group += 1;
            if tiles_in_group == tiles_per_interval {
                intervals.push(PreemptionInterval {
                    cycles: acc_cycles,
                    live_output_bytes: live_bytes,
                });
                acc_cycles = Cycles::ZERO;
                tiles_in_group = 0;
            }
        }
        if tiles_in_group > 0 {
            intervals.push(PreemptionInterval {
                cycles: acc_cycles,
                live_output_bytes: live_bytes,
            });
        }
        intervals
    }

    #[test]
    fn closed_form_intervals_match_per_tile_walk() {
        let c = cfg();
        // Shapes chosen to cover: single outer tile, inner-only, inner+outer
        // mixed groups, groups that straddle the inner/outer boundary, and
        // live-byte saturation at the checkpoint cap.
        let shapes = [
            GemmShape::new(64, 64, 100),
            GemmShape::new(256, 256, c.accumulator_depth * 3),
            GemmShape::new(300, 520, c.accumulator_depth * 2 + 7),
            GemmShape::new(4096, 25088, 64),
            GemmShape::new(8192, 1024, 4096),
            GemmShape::new(1, 1, 1),
            GemmShape::new(512, 512, 5000),
        ];
        for shape in shapes {
            let work = LayerWork::gemm(shape, shape.output_bytes());
            for max_intervals in [1usize, 2, 7, 32, 1000] {
                let timing = LayerTiming::model_with_intervals(&work, &c, max_intervals);
                let reference = intervals_by_tile_walk(&work, &c, max_intervals);
                assert_eq!(
                    timing.intervals(),
                    &reference[..],
                    "{shape:?} with max_intervals {max_intervals}"
                );
                let plan = TilePlan::new(shape, &c);
                let compute: Cycles = plan.iter().map(|t| t.compute_cycles).sum();
                let memory: Cycles = plan.iter().map(|t| t.memory_cycles).sum();
                assert_eq!(timing.compute_cycles(), compute);
                assert_eq!(timing.memory_cycles(), memory);
            }
        }
    }

    #[test]
    fn into_intervals_matches_borrowed_accessor() {
        let c = cfg();
        let shape = GemmShape::new(512, 512, 4096);
        let work = LayerWork::gemm(shape, shape.output_bytes());
        let timing = LayerTiming::model(&work, &c);
        let borrowed = timing.intervals().to_vec();
        assert_eq!(timing.into_intervals(), borrowed);
    }

    #[test]
    fn macs_propagated_from_shape() {
        let c = cfg();
        let shape = GemmShape::new(128, 128, 128);
        let timing = LayerTiming::model(&LayerWork::gemm(shape, 1), &c);
        assert_eq!(timing.macs(), shape.macs());
    }
}
