//! The CISC instruction set of the baseline NPU (Section II-B of the PREMA
//! paper).
//!
//! Layer execution is compiled into a stream of coarse-grained instructions.
//! The instruction stream is not interpreted cycle-by-cycle by the simulator —
//! the timing model works at tile granularity — but it is exposed so that
//! clients (tests, the experiment harness, documentation examples) can
//! inspect what a layer lowers to, and so that the preemption machinery can
//! reason about `GEMM_OP` boundaries explicitly.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gemm::GemmShape;

/// Which on-chip buffer a `LOAD_TILE` / `STORE_TILE` targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Buffer {
    /// The unified activation buffer (UBUF).
    Activation,
    /// The weight buffer feeding the systolic array's weight registers.
    Weight,
    /// The accumulator queue (ACCQ) holding freshly produced outputs.
    Accumulator,
}

impl fmt::Display for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Buffer::Activation => "UBUF",
            Buffer::Weight => "WBUF",
            Buffer::Accumulator => "ACCQ",
        };
        f.write_str(name)
    }
}

/// Element-wise operations executed on the vector unit via `VECTOR_OP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorOpKind {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softmax over the innermost dimension.
    Softmax,
    /// Element-wise addition (residual connections, bias add).
    Add,
    /// Max pooling window reduction.
    MaxPool,
    /// Average pooling window reduction.
    AvgPool,
}

impl fmt::Display for VectorOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            VectorOpKind::Relu => "relu",
            VectorOpKind::Sigmoid => "sigmoid",
            VectorOpKind::Tanh => "tanh",
            VectorOpKind::Softmax => "softmax",
            VectorOpKind::Add => "add",
            VectorOpKind::MaxPool => "maxpool",
            VectorOpKind::AvgPool => "avgpool",
        };
        f.write_str(name)
    }
}

/// A coarse-grained NPU instruction (Section II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    /// `LOAD_TILE`: DMA `bytes` from DRAM into the given on-chip buffer.
    LoadTile {
        /// Destination buffer.
        buffer: Buffer,
        /// Number of bytes transferred.
        bytes: u64,
    },
    /// `GEMM_OP`: one tile-granularity matrix multiplication between the
    /// weight tile latched in the array and an activation tile streamed from
    /// the UBUF.
    GemmOp {
        /// The shape of the tile-level GEMM.
        shape: GemmShape,
    },
    /// `CONV_OP`: a convolution lowered to a matrix multiplication and then
    /// executed exactly like [`Instruction::GemmOp`].
    ConvOp {
        /// The shape of the lowered tile-level GEMM.
        shape: GemmShape,
    },
    /// `VECTOR_OP`: an element-wise operation over `elements` values.
    VectorOp {
        /// The element-wise operation applied.
        kind: VectorOpKind,
        /// Number of elements processed.
        elements: u64,
    },
    /// `STORE_TILE`: DMA `bytes` of output activations back to DRAM.
    StoreTile {
        /// Source buffer.
        buffer: Buffer,
        /// Number of bytes transferred.
        bytes: u64,
    },
}

impl Instruction {
    /// Returns `true` for instructions executed on the GEMM unit
    /// (`GEMM_OP` / `CONV_OP`), i.e. the instructions whose commit points are
    /// legal CHECKPOINT preemption points.
    pub fn is_gemm(&self) -> bool {
        matches!(
            self,
            Instruction::GemmOp { .. } | Instruction::ConvOp { .. }
        )
    }

    /// Returns `true` for DMA instructions (`LOAD_TILE` / `STORE_TILE`).
    pub fn is_dma(&self) -> bool {
        matches!(
            self,
            Instruction::LoadTile { .. } | Instruction::StoreTile { .. }
        )
    }

    /// Bytes moved by this instruction if it is a DMA instruction.
    pub fn dma_bytes(&self) -> Option<u64> {
        match self {
            Instruction::LoadTile { bytes, .. } | Instruction::StoreTile { bytes, .. } => {
                Some(*bytes)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::LoadTile { buffer, bytes } => {
                write!(f, "LOAD_TILE {buffer}, {bytes}B")
            }
            Instruction::GemmOp { shape } => {
                write!(f, "GEMM_OP {}x{}x{}", shape.m, shape.k, shape.n)
            }
            Instruction::ConvOp { shape } => {
                write!(f, "CONV_OP {}x{}x{}", shape.m, shape.k, shape.n)
            }
            Instruction::VectorOp { kind, elements } => {
                write!(f, "VECTOR_OP {kind}, {elements} elems")
            }
            Instruction::StoreTile { buffer, bytes } => {
                write!(f, "STORE_TILE {buffer}, {bytes}B")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_and_conv_are_gemm_instructions() {
        let shape = GemmShape::new(1, 1, 1);
        assert!(Instruction::GemmOp { shape }.is_gemm());
        assert!(Instruction::ConvOp { shape }.is_gemm());
        assert!(!Instruction::LoadTile {
            buffer: Buffer::Weight,
            bytes: 10
        }
        .is_gemm());
    }

    #[test]
    fn dma_detection_and_bytes() {
        let load = Instruction::LoadTile {
            buffer: Buffer::Activation,
            bytes: 128,
        };
        let store = Instruction::StoreTile {
            buffer: Buffer::Accumulator,
            bytes: 64,
        };
        let vec = Instruction::VectorOp {
            kind: VectorOpKind::Relu,
            elements: 10,
        };
        assert!(load.is_dma());
        assert!(store.is_dma());
        assert!(!vec.is_dma());
        assert_eq!(load.dma_bytes(), Some(128));
        assert_eq!(store.dma_bytes(), Some(64));
        assert_eq!(vec.dma_bytes(), None);
    }

    #[test]
    fn display_is_never_empty() {
        let shape = GemmShape::new(2, 3, 4);
        let instrs = [
            Instruction::LoadTile {
                buffer: Buffer::Weight,
                bytes: 1,
            },
            Instruction::GemmOp { shape },
            Instruction::ConvOp { shape },
            Instruction::VectorOp {
                kind: VectorOpKind::Softmax,
                elements: 5,
            },
            Instruction::StoreTile {
                buffer: Buffer::Activation,
                bytes: 2,
            },
        ];
        for instr in instrs {
            assert!(!instr.to_string().is_empty());
        }
    }

    #[test]
    fn buffer_and_vector_kind_display() {
        assert_eq!(Buffer::Activation.to_string(), "UBUF");
        assert_eq!(Buffer::Accumulator.to_string(), "ACCQ");
        assert_eq!(VectorOpKind::MaxPool.to_string(), "maxpool");
    }
}
