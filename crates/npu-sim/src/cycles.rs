//! Strongly typed cycle counting.
//!
//! All timing in the simulator is expressed in NPU clock cycles. [`Cycles`]
//! is a thin newtype over `u64` that supports saturating arithmetic and
//! conversion to wall-clock time for a given operating frequency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A number of NPU clock cycles.
///
/// `Cycles` behaves like an unsigned integer: addition and multiplication
/// saturate instead of wrapping, and subtraction saturates at zero so that
/// "remaining time" computations never underflow.
///
/// # Example
///
/// ```
/// use npu_sim::Cycles;
///
/// let a = Cycles::new(700);
/// let b = Cycles::new(1_400);
/// assert_eq!(a + b, Cycles::new(2_100));
/// assert_eq!(a - b, Cycles::ZERO); // saturating
/// assert_eq!((a + b).to_micros(700.0), 3.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);
    /// The largest representable cycle count.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a cycle count from a raw `u64`.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if the count is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of the two cycle counts.
    #[inline]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }

    /// Returns the larger of the two cycle counts.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Converts a number of seconds into cycles at `freq_mhz` megahertz,
    /// rounding to the nearest cycle.
    pub fn from_secs(secs: f64, freq_mhz: f64) -> Cycles {
        assert!(secs >= 0.0, "seconds must be non-negative");
        assert!(freq_mhz > 0.0, "frequency must be positive");
        Cycles((secs * freq_mhz * 1e6).round() as u64)
    }

    /// Converts a number of microseconds into cycles at `freq_mhz` megahertz.
    pub fn from_micros(micros: f64, freq_mhz: f64) -> Cycles {
        Cycles::from_secs(micros * 1e-6, freq_mhz)
    }

    /// Converts a number of milliseconds into cycles at `freq_mhz` megahertz.
    pub fn from_millis(millis: f64, freq_mhz: f64) -> Cycles {
        Cycles::from_secs(millis * 1e-3, freq_mhz)
    }

    /// Wall-clock duration in seconds at `freq_mhz` megahertz.
    pub fn to_secs(self, freq_mhz: f64) -> f64 {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        self.0 as f64 / (freq_mhz * 1e6)
    }

    /// Wall-clock duration in microseconds at `freq_mhz` megahertz.
    pub fn to_micros(self, freq_mhz: f64) -> f64 {
        self.to_secs(freq_mhz) * 1e6
    }

    /// Wall-clock duration in milliseconds at `freq_mhz` megahertz.
    pub fn to_millis(self, freq_mhz: f64) -> f64 {
        self.to_secs(freq_mhz) * 1e3
    }

    /// The ratio of this count to `other`, as a float.
    ///
    /// Returns `f64::INFINITY` if `other` is zero and `self` is non-zero, and
    /// `1.0` when both are zero (a degenerate but well-defined slowdown).
    pub fn ratio(self, other: Cycles) -> f64 {
        if other.is_zero() {
            if self.is_zero() {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> Self {
        c.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        assert!(rhs != 0, "division of Cycles by zero");
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |acc, c| acc + c)
    }
}

impl<'a> Sum<&'a Cycles> for Cycles {
    fn sum<I: Iterator<Item = &'a Cycles>>(iter: I) -> Cycles {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_get_round_trip() {
        assert_eq!(Cycles::new(42).get(), 42);
        assert_eq!(u64::from(Cycles::from(7u64)), 7);
    }

    #[test]
    fn zero_is_zero() {
        assert!(Cycles::ZERO.is_zero());
        assert!(!Cycles::new(1).is_zero());
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(Cycles::MAX + Cycles::new(1), Cycles::MAX);
        assert_eq!(Cycles::new(2) + Cycles::new(3), Cycles::new(5));
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        assert_eq!(Cycles::new(3) - Cycles::new(10), Cycles::ZERO);
        assert_eq!(Cycles::new(10) - Cycles::new(3), Cycles::new(7));
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut c = Cycles::new(10);
        c += Cycles::new(5);
        assert_eq!(c, Cycles::new(15));
        c -= Cycles::new(20);
        assert_eq!(c, Cycles::ZERO);
    }

    #[test]
    fn multiplication_and_division() {
        assert_eq!(Cycles::new(10) * 3, Cycles::new(30));
        assert_eq!(Cycles::new(30) / 4, Cycles::new(7));
    }

    #[test]
    #[should_panic(expected = "division of Cycles by zero")]
    fn division_by_zero_panics() {
        let _ = Cycles::new(1) / 0;
    }

    #[test]
    fn time_conversions_round_trip() {
        let c = Cycles::from_micros(12.0, 700.0);
        assert_eq!(c, Cycles::new(8_400));
        assert!((c.to_micros(700.0) - 12.0).abs() < 1e-9);
        assert!((Cycles::from_millis(1.0, 700.0).to_millis(700.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_second_at_700mhz() {
        assert_eq!(Cycles::from_secs(1.0, 700.0), Cycles::new(700_000_000));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(Cycles::new(10).ratio(Cycles::new(5)), 2.0);
        assert_eq!(Cycles::ZERO.ratio(Cycles::ZERO), 1.0);
        assert!(Cycles::new(1).ratio(Cycles::ZERO).is_infinite());
    }

    #[test]
    fn min_max() {
        assert_eq!(Cycles::new(3).min(Cycles::new(5)), Cycles::new(3));
        assert_eq!(Cycles::new(3).max(Cycles::new(5)), Cycles::new(5));
    }

    #[test]
    fn sum_of_iterator() {
        let v = vec![Cycles::new(1), Cycles::new(2), Cycles::new(3)];
        let total: Cycles = v.iter().sum();
        assert_eq!(total, Cycles::new(6));
        let total2: Cycles = v.into_iter().sum();
        assert_eq!(total2, Cycles::new(6));
    }

    #[test]
    fn display_mentions_cycles() {
        assert_eq!(Cycles::new(5).to_string(), "5 cycles");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Cycles::new(1) < Cycles::new(2));
        assert!(Cycles::new(2) <= Cycles::new(2));
    }
}
