//! Cycle-approximate performance model of a systolic-array neural processing
//! unit (NPU), modelled after the Google TPU as described in the PREMA paper
//! (Choi & Rhu, HPCA 2020, Section II-B and Table I).
//!
//! The crate provides:
//!
//! * [`NpuConfig`] — the architectural parameters of Table I (128×128
//!   weight-stationary systolic array, 700 MHz, 8 MB activation SRAM, 4 MB
//!   weight SRAM, 358 GB/s of DRAM bandwidth, 100-cycle access latency).
//! * [`Cycles`] — a strongly typed cycle counter with conversions to wall
//!   clock time for a given operating frequency.
//! * [`GemmShape`] and [`gemm::TilePlan`] — the inner/outer tiling of a GEMM
//!   onto the systolic array (Figure 3(c) of the paper).
//! * [`LayerWork`] and [`layer::LayerTiming`] — the double-buffered execution
//!   model of a single DNN layer, broken into *preemption intervals*
//!   (GEMM_OP boundaries) that carry the live output-activation footprint
//!   used for checkpointing (Section IV).
//! * [`memory::DmaModel`] and [`checkpoint`] — the fixed-bandwidth memory
//!   subsystem and the checkpoint/restore latency model.
//!
//! # Example
//!
//! ```
//! use npu_sim::{NpuConfig, GemmShape, LayerWork};
//!
//! let cfg = NpuConfig::paper_default();
//! // A fully-connected layer with 4096 outputs, 4096 inputs, batch 4.
//! let work = LayerWork::gemm(GemmShape::new(4096, 4096, 4), 4096 * 4 * 2);
//! let timing = npu_sim::layer::LayerTiming::model(&work, &cfg);
//! assert!(timing.total_cycles().get() > 0);
//! assert!(!timing.intervals().is_empty());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod config;
pub mod cycles;
pub mod gemm;
pub mod isa;
pub mod layer;
pub mod memory;
pub mod vector;

pub use checkpoint::CheckpointModel;
pub use config::NpuConfig;
pub use cycles::Cycles;
pub use gemm::{GemmShape, TilePlan};
pub use isa::Instruction;
pub use layer::{LayerTiming, LayerWork, PreemptionInterval};
pub use memory::DmaModel;
pub use vector::VectorWork;
