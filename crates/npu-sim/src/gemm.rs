//! GEMM tiling onto the weight-stationary systolic array (Figure 3(c) of the
//! PREMA paper) and the per-tile timing model of Algorithm 1.
//!
//! A `GEMM_OP` multiplies an `(m × k)` weight matrix by a `(k × n)` input
//! activation matrix. The systolic array holds an `SW × SH` weight tile and
//! streams `SH × ACC` activation tiles through it, so the full GEMM is tiled
//! along all three dimensions:
//!
//! * `m` is split into `⌈m / SW⌉` weight-row tiles,
//! * `k` is split into `⌈k / SH⌉` reduction tiles,
//! * `n` is split into `⌊n / ACC⌋` *inner* column tiles plus at most one
//!   smaller *outer* (edge) tile of `n mod ACC` columns.
//!
//! For every tile, the compute phase (`C1`/`C2` in Algorithm 1) overlaps with
//! the memory phase that prefetches the next tile's operands (`M1`/`M2`), so
//! the tile latency is the maximum of the two — exactly lines 3–8 of
//! Algorithm 1.

use serde::{Deserialize, Serialize};

use crate::config::{NpuConfig, BYTES_PER_ELEMENT};
use crate::cycles::Cycles;

/// Dimensions of a single GEMM operation: an `(m × k)` weight matrix times a
/// `(k × n)` input activation matrix, producing an `(m × n)` output.
///
/// ```
/// use npu_sim::GemmShape;
///
/// let g = GemmShape::new(256, 1024, 64);
/// assert_eq!(g.macs(), 256 * 1024 * 64);
/// assert_eq!(g.output_elements(), 256 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Number of weight rows (output features).
    pub m: u64,
    /// Reduction dimension (input features).
    pub k: u64,
    /// Number of activation columns (batch × spatial positions).
    pub n: u64,
}

impl GemmShape {
    /// Creates a new GEMM shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "GEMM dimensions must be non-zero");
        GemmShape { m, k, n }
    }

    /// Total multiply-accumulate operations performed by this GEMM.
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }

    /// Number of output-activation elements produced.
    pub fn output_elements(&self) -> u64 {
        self.m * self.n
    }

    /// Number of output-activation bytes produced (16-bit data).
    pub fn output_bytes(&self) -> u64 {
        self.output_elements() * BYTES_PER_ELEMENT
    }

    /// Number of weight bytes consumed (16-bit data).
    pub fn weight_bytes(&self) -> u64 {
        self.m * self.k * BYTES_PER_ELEMENT
    }

    /// Number of input-activation bytes consumed (16-bit data).
    pub fn input_bytes(&self) -> u64 {
        self.k * self.n * BYTES_PER_ELEMENT
    }
}

/// A single systolic-array tile of a larger GEMM.
///
/// Tiles are the preemption granularity of the CHECKPOINT mechanism: a
/// preemption trap is only serviced once the currently issued `GEMM_OP`
/// (i.e. the current tile) has committed its outputs to the accumulator
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmTile {
    /// Rows of the weight tile actually occupied (≤ `SW`).
    pub rows: u64,
    /// Reduction depth of the tile actually occupied (≤ `SH`).
    pub depth: u64,
    /// Activation columns processed by this tile (≤ `ACC`).
    pub cols: u64,
    /// Whether this is an edge ("outer") tile smaller than the full
    /// accumulator depth.
    pub is_outer: bool,
    /// Cycles spent in the compute phase of this tile.
    pub compute_cycles: Cycles,
    /// Cycles spent in the memory phase prefetching the next tile's operands.
    pub memory_cycles: Cycles,
    /// Output-activation bytes committed to the accumulator queue by this
    /// tile.
    pub output_bytes: u64,
}

impl GemmTile {
    /// The latency contributed by this tile under double buffering: the
    /// maximum of its compute and memory phases (Algorithm 1, lines 5 and 8).
    pub fn latency(&self) -> Cycles {
        self.compute_cycles.max(self.memory_cycles)
    }

    /// MAC operations actually performed by this tile.
    pub fn macs(&self) -> u64 {
        self.rows * self.depth * self.cols
    }
}

/// The complete tiling of one GEMM onto the systolic array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilePlan {
    shape: GemmShape,
    inner_tiles: u64,
    outer_tiles: u64,
    inner_latency: Cycles,
    outer_latency: Cycles,
    inner_tile: GemmTile,
    outer_tile: Option<GemmTile>,
}

impl TilePlan {
    /// Tiles `shape` onto the array described by `cfg`, following Algorithm 1.
    pub fn new(shape: GemmShape, cfg: &NpuConfig) -> Self {
        let sw = cfg.systolic_width;
        let sh = cfg.systolic_height;
        let acc = cfg.accumulator_depth;

        let m_tiles = shape.m.div_ceil(sw);
        let k_tiles = shape.k.div_ceil(sh);
        let n_inner = shape.n / acc;
        let n_rem = shape.n % acc;

        // Effective occupied dimensions of a "typical" tile. Edge effects in
        // m/k are folded into the occupancy of the last tile; the dominant
        // term the paper models explicitly is the n-dimension edge (the
        // "outer tile"), which we reproduce exactly.
        let inner_tile = Self::make_tile(sw.min(shape.m), sh.min(shape.k), acc, false, cfg);
        let outer_tile = if n_rem > 0 {
            Some(Self::make_tile(
                sw.min(shape.m),
                sh.min(shape.k),
                n_rem,
                true,
                cfg,
            ))
        } else {
            None
        };

        let inner_tiles = m_tiles * k_tiles * n_inner;
        let outer_tiles = if n_rem > 0 { m_tiles * k_tiles } else { 0 };

        TilePlan {
            shape,
            inner_tiles,
            outer_tiles,
            inner_latency: inner_tile.latency(),
            outer_latency: outer_tile.map(|t| t.latency()).unwrap_or(Cycles::ZERO),
            inner_tile,
            outer_tile,
        }
    }

    fn make_tile(rows: u64, depth: u64, cols: u64, is_outer: bool, cfg: &NpuConfig) -> GemmTile {
        let sw = cfg.systolic_width;
        let sh = cfg.systolic_height;
        // Algorithm 1, line 3 / line 6: the compute phase of a tile is
        // (cols + SH + 2*SW) cycles — the activation columns pulsating through
        // the array plus the pipeline fill/drain of the array dimensions.
        let compute = cols + sh + 2 * sw;
        // Algorithm 1, line 4 / line 7: the memory phase fetches the next
        // weight tile (SH*SW elements) and the next activation tile
        // (SH*cols elements) at the DRAM bandwidth.
        let bytes = (sh * sw + sh * cols) * BYTES_PER_ELEMENT;
        let memory = cfg.streaming_cycles(bytes);
        GemmTile {
            rows,
            depth,
            cols,
            is_outer,
            compute_cycles: Cycles::new(compute),
            memory_cycles: memory,
            output_bytes: rows * cols * BYTES_PER_ELEMENT,
        }
    }

    /// The GEMM shape this plan tiles.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// Number of full-size inner tiles.
    pub fn inner_tile_count(&self) -> u64 {
        self.inner_tiles
    }

    /// Number of edge (outer) tiles.
    pub fn outer_tile_count(&self) -> u64 {
        self.outer_tiles
    }

    /// Total number of `GEMM_OP` instructions (tiles) issued for this GEMM.
    pub fn tile_count(&self) -> u64 {
        self.inner_tiles + self.outer_tiles
    }

    /// The representative inner tile.
    pub fn inner_tile(&self) -> GemmTile {
        self.inner_tile
    }

    /// The representative outer (edge) tile, if the n-dimension does not
    /// divide evenly by the accumulator depth.
    pub fn outer_tile(&self) -> Option<GemmTile> {
        self.outer_tile
    }

    /// Estimated latency of the whole GEMM under double buffering: the sum of
    /// per-tile latencies (Algorithm 1, line 10).
    pub fn total_cycles(&self) -> Cycles {
        self.inner_latency * self.inner_tiles + self.outer_latency * self.outer_tiles
    }

    /// Iterates over every tile in issue order (inner tiles first, then the
    /// edge tiles), yielding a [`GemmTile`] per `GEMM_OP`.
    pub fn iter(&self) -> TileIter<'_> {
        TileIter {
            plan: self,
            issued: 0,
        }
    }
}

impl<'a> IntoIterator for &'a TilePlan {
    type Item = GemmTile;
    type IntoIter = TileIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the tiles of a [`TilePlan`] in issue order.
#[derive(Debug, Clone)]
pub struct TileIter<'a> {
    plan: &'a TilePlan,
    issued: u64,
}

impl Iterator for TileIter<'_> {
    type Item = GemmTile;

    fn next(&mut self) -> Option<GemmTile> {
        let total = self.plan.tile_count();
        if self.issued >= total {
            return None;
        }
        let tile = if self.issued < self.plan.inner_tiles {
            self.plan.inner_tile
        } else {
            self.plan
                .outer_tile
                .expect("outer tiles exist when outer_tiles > 0")
        };
        self.issued += 1;
        Some(tile)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.plan.tile_count() - self.issued) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TileIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    #[test]
    fn shape_accessors() {
        let g = GemmShape::new(10, 20, 30);
        assert_eq!(g.macs(), 6000);
        assert_eq!(g.output_elements(), 300);
        assert_eq!(g.output_bytes(), 600);
        assert_eq!(g.weight_bytes(), 400);
        assert_eq!(g.input_bytes(), 1200);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = GemmShape::new(0, 1, 1);
    }

    #[test]
    fn small_gemm_is_a_single_outer_tile() {
        let plan = TilePlan::new(GemmShape::new(64, 64, 100), &cfg());
        assert_eq!(plan.inner_tile_count(), 0);
        assert_eq!(plan.outer_tile_count(), 1);
        assert_eq!(plan.tile_count(), 1);
        let tile = plan.outer_tile().unwrap();
        assert!(tile.is_outer);
        assert_eq!(tile.cols, 100);
        assert_eq!(tile.rows, 64);
    }

    #[test]
    fn exact_multiple_has_no_outer_tiles() {
        let c = cfg();
        let plan = TilePlan::new(GemmShape::new(256, 256, c.accumulator_depth * 3), &c);
        assert_eq!(plan.outer_tile_count(), 0);
        assert_eq!(plan.inner_tile_count(), 2 * 2 * 3);
        assert!(plan.outer_tile().is_none());
    }

    #[test]
    fn tile_counts_match_algorithm_one() {
        let c = cfg();
        let shape = GemmShape::new(300, 520, c.accumulator_depth * 2 + 7);
        let plan = TilePlan::new(shape, &c);
        let m_tiles = 300u64.div_ceil(c.systolic_width);
        let k_tiles = 520u64.div_ceil(c.systolic_height);
        assert_eq!(plan.inner_tile_count(), m_tiles * k_tiles * 2);
        assert_eq!(plan.outer_tile_count(), m_tiles * k_tiles);
    }

    #[test]
    fn compute_phase_matches_formula() {
        let c = cfg();
        let plan = TilePlan::new(GemmShape::new(1000, 1000, c.accumulator_depth), &c);
        let tile = plan.inner_tile();
        assert_eq!(
            tile.compute_cycles,
            Cycles::new(c.accumulator_depth + c.systolic_height + 2 * c.systolic_width)
        );
    }

    #[test]
    fn memory_phase_matches_bandwidth_model() {
        let c = cfg();
        let plan = TilePlan::new(GemmShape::new(1000, 1000, c.accumulator_depth), &c);
        let tile = plan.inner_tile();
        let bytes = (c.systolic_height * c.systolic_width
            + c.systolic_height * c.accumulator_depth)
            * BYTES_PER_ELEMENT;
        assert_eq!(tile.memory_cycles, c.streaming_cycles(bytes));
    }

    #[test]
    fn tile_latency_is_max_of_phases() {
        let c = cfg();
        let plan = TilePlan::new(GemmShape::new(1000, 1000, c.accumulator_depth), &c);
        let tile = plan.inner_tile();
        assert_eq!(tile.latency(), tile.compute_cycles.max(tile.memory_cycles));
    }

    #[test]
    fn total_cycles_is_sum_over_tiles() {
        let c = cfg();
        let plan = TilePlan::new(GemmShape::new(512, 512, 5000), &c);
        let from_iter: Cycles = plan.iter().map(|t| t.latency()).sum();
        assert_eq!(plan.total_cycles(), from_iter);
    }

    #[test]
    fn iterator_length_matches_tile_count() {
        let c = cfg();
        let plan = TilePlan::new(GemmShape::new(512, 512, 5000), &c);
        assert_eq!(plan.iter().count() as u64, plan.tile_count());
        assert_eq!(plan.iter().len() as u64, plan.tile_count());
    }

    #[test]
    fn outer_tile_output_bytes_smaller_than_inner() {
        let c = cfg();
        let plan = TilePlan::new(GemmShape::new(512, 512, c.accumulator_depth + 5), &c);
        let inner = plan.inner_tile();
        let outer = plan.outer_tile().unwrap();
        assert!(outer.output_bytes < inner.output_bytes);
        assert_eq!(outer.cols, 5);
    }

    #[test]
    fn bigger_gemm_takes_longer() {
        let c = cfg();
        let small = TilePlan::new(GemmShape::new(256, 256, 256), &c);
        let big = TilePlan::new(GemmShape::new(1024, 1024, 1024), &c);
        assert!(big.total_cycles() > small.total_cycles());
    }

    #[test]
    fn macs_of_tiles_cover_shape_when_dimensions_align() {
        let c = cfg();
        let shape = GemmShape::new(
            c.systolic_width * 2,
            c.systolic_height * 2,
            c.accumulator_depth * 2,
        );
        let plan = TilePlan::new(shape, &c);
        let tile_macs: u64 = plan.iter().map(|t| t.macs()).sum();
        assert_eq!(tile_macs, shape.macs());
    }
}
