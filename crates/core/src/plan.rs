//! Execution plans: a task's DNN compiled down to preemption intervals.
//!
//! Before a request is dispatched to the NPU, its network (at the request's
//! batch size and actual sequence lengths) is lowered layer by layer onto the
//! NPU timing model. The result is an [`ExecutionPlan`]: for every layer, a
//! short list of [`PreemptionInterval`]s whose boundaries are the legal
//! CHECKPOINT preemption points and which carry the live output-activation
//! footprint at each point.
//!
//! [`ProgressCursor`] tracks how far through its plan a task has executed,
//! supports advancing by an arbitrary number of cycles, and answers the two
//! questions the preemption machinery needs: "how long until the next legal
//! preemption point?" and "how many bytes are live right now?".
//!
//! # Design note: the plan arena and the event horizon
//!
//! The simulation engine advances a running task by hundreds of thousands of
//! cycles per scheduling event, and a single advance used to walk the nested
//! `layers → intervals` vectors one interval at a time — O(intervals crossed)
//! per event, with a pointer chase per layer. Compilation therefore flattens
//! every plan into a `PlanArena`: one cache-friendly prefix-sum table of
//! cumulative interval end boundaries, plus parallel per-interval live-byte
//! and layer-index tables and the flat offset of each layer's first interval.
//! On the arena, [`ProgressCursor::advance`] is a bounds check in the common
//! case and a binary search in the worst case, and
//! [`ProgressCursor::cycles_to_boundary`] /
//! [`ProgressCursor::live_checkpoint_bytes`] / [`ProgressCursor::layer_index`]
//! are O(1) lookups. The arena is what lets the engine's *event-horizon*
//! fast path (see [`crate::engine`]) jump a running task over thousands of
//! provably uneventful scheduling quanta in a single bounded step.
//!
//! The original nested-vector walk survives as [`reference::ReferenceCursor`]
//! — the oracle a property test replays random plans and budgets against to
//! pin the flat cursor to the exact historical semantics (including
//! zero-cycle intervals and layer-boundary normalization).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dnn_models::lowering::lower_graph;
use dnn_models::{ModelKind, SeqSpec};
use npu_sim::{Cycles, LayerTiming, NpuConfig, PreemptionInterval};

/// The modelled execution of one layer: its preemption intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Preemption intervals in execution order.
    pub intervals: Vec<PreemptionInterval>,
    /// Total cycles of the layer (sum of interval cycles).
    pub total_cycles: Cycles,
    /// Total MAC operations of the layer.
    pub macs: u64,
}

/// Flat prefix-sum view of every preemption interval in a plan (see the
/// module-level design note). Built once at compile time; immutable after.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
struct PlanArena {
    /// `bounds[i]` is the cumulative cycle count through the *end* of flat
    /// interval `i`; strictly the running prefix sum of interval lengths.
    bounds: Vec<Cycles>,
    /// `live_bytes[i]` is the checkpoint footprint at the end of flat
    /// interval `i`.
    live_bytes: Vec<u64>,
    /// `layer_of[i]` is the layer that flat interval `i` belongs to.
    layer_of: Vec<u32>,
    /// `layer_starts[l]` is the flat index of layer `l`'s first interval.
    layer_starts: Vec<u32>,
}

impl PlanArena {
    fn build(layers: &[LayerPlan]) -> Self {
        let interval_count: usize = layers.iter().map(|l| l.intervals.len()).sum();
        let mut arena = PlanArena {
            bounds: Vec::with_capacity(interval_count),
            live_bytes: Vec::with_capacity(interval_count),
            layer_of: Vec::with_capacity(interval_count),
            layer_starts: Vec::with_capacity(layers.len()),
        };
        let mut cumulative = Cycles::ZERO;
        for (layer_idx, layer) in layers.iter().enumerate() {
            arena.layer_starts.push(arena.bounds.len() as u32);
            for interval in &layer.intervals {
                cumulative += interval.cycles;
                arena.bounds.push(cumulative);
                arena.live_bytes.push(interval.live_output_bytes);
                arena.layer_of.push(layer_idx as u32);
            }
        }
        arena
    }

    /// Number of flat intervals.
    fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Cumulative cycles at the *start* of flat interval `i`.
    fn start_of(&self, i: usize) -> Cycles {
        if i == 0 {
            Cycles::ZERO
        } else {
            self.bounds[i - 1]
        }
    }

    /// Whether flat interval `i` is the first interval of its layer.
    fn is_layer_start(&self, i: usize) -> bool {
        self.layer_starts[self.layer_of[i] as usize] as usize == i
    }
}

/// A task's complete compiled execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    layers: Vec<LayerPlan>,
    total_cycles: Cycles,
    total_macs: u64,
    arena: PlanArena,
}

impl ExecutionPlan {
    /// Compiles `model` at `batch`/`seq` onto the NPU described by `cfg`.
    pub fn compile(model: ModelKind, batch: u64, seq: SeqSpec, cfg: &NpuConfig) -> Self {
        let network = model.build(batch, seq);
        let works = lower_graph(&network, batch);
        let mut layers = Vec::with_capacity(works.len());
        for work in &works {
            let timing = LayerTiming::model(work, cfg);
            let total_cycles = timing.total_cycles();
            let macs = timing.macs();
            layers.push(LayerPlan {
                intervals: timing.into_intervals(),
                total_cycles,
                macs,
            });
        }
        Self::from_layers(layers)
    }

    /// Assembles a plan (totals + flat arena) from per-layer plans.
    fn from_layers(layers: Vec<LayerPlan>) -> Self {
        let total_cycles = layers.iter().map(|l| l.total_cycles).sum();
        let total_macs = layers.iter().map(|l| l.macs).sum();
        let arena = PlanArena::build(&layers);
        ExecutionPlan {
            layers,
            total_cycles,
            total_macs,
            arena,
        }
    }

    /// Compiles and wraps the plan in an [`Arc`] for cheap sharing across
    /// scheduler configurations. Always compiles fresh; use
    /// [`ExecutionPlan::compile_cached`] to share identical plans across an
    /// entire evaluation suite.
    pub fn compile_shared(
        model: ModelKind,
        batch: u64,
        seq: SeqSpec,
        cfg: &NpuConfig,
    ) -> Arc<Self> {
        Arc::new(Self::compile(model, batch, seq, cfg))
    }

    /// Returns the memoized plan for `(model, batch, seq, cfg)`, compiling
    /// it on first use.
    ///
    /// Plan compilation is a pure function of its arguments, so a suite that
    /// replays the same workloads under many scheduler configurations (or
    /// many workloads drawing the same model/batch/sequence combinations)
    /// compiles each distinct plan exactly once and shares it through the
    /// returned [`Arc`]. See [`plan_cache`] for statistics and eviction.
    pub fn compile_cached(
        model: ModelKind,
        batch: u64,
        seq: SeqSpec,
        cfg: &NpuConfig,
    ) -> Arc<Self> {
        plan_cache::get_or_compile(model, batch, seq, cfg)
    }

    /// The per-layer plans in execution order.
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// The task's isolated, uninterrupted execution time.
    pub fn total_cycles(&self) -> Cycles {
        self.total_cycles
    }

    /// Total MAC operations across the network.
    pub fn total_macs(&self) -> u64 {
        self.total_macs
    }

    /// Number of layers in the plan.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total number of preemption intervals across all layers.
    pub fn interval_count(&self) -> usize {
        self.arena.len()
    }

    /// The cumulative cycle offset at which `layer` starts executing.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= layer_count()`.
    pub fn layer_start_cycles(&self, layer: usize) -> Cycles {
        self.arena.start_of(self.arena.layer_starts[layer] as usize)
    }
}

/// Process-wide memoization of compiled [`ExecutionPlan`]s.
///
/// A full figure suite simulates 25 workloads × ~7 scheduler configurations,
/// and the workload generator draws from eight models at a handful of batch
/// sizes and sequence lengths — so the same plan is otherwise recompiled
/// hundreds of times. The cache is keyed on every input that determines the
/// compiled timing: model, batch, sequence lengths, and the full
/// architectural configuration (compared field-wise; the
/// [`NpuConfig::fingerprint`] digest is only used for hashing).
///
/// The cache is striped across `SHARD_COUNT` independently locked shards
/// (selected by key hash), so concurrent lookups from the parallel
/// evaluation suite contend only when they race on the same stripe instead
/// of serializing on one global mutex. Entries are `Arc`-shared and
/// immutable; a racing first-compile of the same key simply keeps one
/// winner. [`plan_cache::warm`] pre-compiles a suite's unique keys in parallel before a
/// grid run, eliminating first-touch duplicate compiles entirely. [`plan_cache::clear`]
/// exists for benchmarks that want to measure the uncached path and for
/// long-lived processes sweeping many NPU configurations.
pub mod plan_cache {
    use std::collections::{HashMap, HashSet};
    use std::hash::{Hash, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    use rayon::prelude::*;

    use dnn_models::{ModelKind, SeqSpec};
    use npu_sim::NpuConfig;

    use super::ExecutionPlan;

    /// Number of lock stripes the cache is sharded into.
    pub const SHARD_COUNT: usize = 16;

    /// Cache key: equality compares the *full* `NpuConfig` field-wise (via
    /// its derived `PartialEq`), so a plan can never be served for a
    /// different configuration even if [`NpuConfig::fingerprint`] ever
    /// collided or lagged behind a newly added field — a stale fingerprint
    /// only degrades hash bucketing, never correctness.
    #[derive(Debug, Clone, PartialEq)]
    struct PlanKey {
        model: ModelKind,
        batch: u64,
        seq: SeqSpec,
        npu: NpuConfig,
    }

    // NpuConfig contains f64 fields, so it is PartialEq but not Eq. The
    // validated configurations stored here never hold NaN (validation
    // rejects non-positive and NaN frequencies/bandwidths), so equality is
    // reflexive for every key that can reach the cache.
    impl Eq for PlanKey {}

    impl Hash for PlanKey {
        fn hash<H: Hasher>(&self, state: &mut H) {
            self.model.hash(state);
            self.batch.hash(state);
            self.seq.hash(state);
            self.npu.fingerprint().hash(state);
        }
    }

    type Shard = Mutex<HashMap<PlanKey, Arc<ExecutionPlan>>>;

    static SHARDS: OnceLock<Vec<Shard>> = OnceLock::new();
    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);

    fn shards() -> &'static [Shard] {
        SHARDS.get_or_init(|| {
            (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect()
        })
    }

    /// The lock stripe responsible for `key`.
    fn shard_of(key: &PlanKey) -> &'static Shard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &shards()[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Cumulative cache statistics since process start (or the last
    /// [`clear`]).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct CacheStats {
        /// Lookups answered from the cache.
        pub hits: u64,
        /// Lookups that had to compile.
        pub misses: u64,
        /// Plans currently resident.
        pub entries: usize,
    }

    impl CacheStats {
        /// Fraction of lookups served from the cache (0 when unused).
        pub fn hit_rate(&self) -> f64 {
            let total = self.hits + self.misses;
            if total == 0 {
                0.0
            } else {
                self.hits as f64 / total as f64
            }
        }
    }

    pub(super) fn get_or_compile(
        model: ModelKind,
        batch: u64,
        seq: SeqSpec,
        cfg: &NpuConfig,
    ) -> Arc<ExecutionPlan> {
        let key = PlanKey {
            model,
            batch,
            seq,
            npu: cfg.clone(),
        };
        let shard = shard_of(&key);
        if let Some(plan) = shard.lock().expect("plan cache poisoned").get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        // Compile outside the lock: plans take milliseconds to build and the
        // parallel suite would otherwise serialize on first touch. A racing
        // compile of the same key produces an identical plan; first insert
        // wins and the loser's work is discarded.
        MISSES.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(ExecutionPlan::compile(model, batch, seq, cfg));
        let mut map = shard.lock().expect("plan cache poisoned");
        Arc::clone(map.entry(key).or_insert(plan))
    }

    /// Pre-compiles every not-yet-cached `(model, batch, seq)` key for `cfg`,
    /// fanning the compiles out over all cores when `parallel` is set.
    /// Returns the number of plans compiled.
    ///
    /// Duplicate keys are deduplicated first, so a grid run that warms the
    /// cache with all of its workloads' plan keys compiles each distinct
    /// plan exactly once — without warming, concurrent first touches of the
    /// same key race and compile it redundantly. Warm compiles count as
    /// cache misses; probing for already-resident keys does not count as a
    /// hit (a warm pass is not a lookup).
    pub fn warm(keys: &[(ModelKind, u64, SeqSpec)], cfg: &NpuConfig, parallel: bool) -> usize {
        let mut seen = HashSet::with_capacity(keys.len());
        let mut missing: Vec<PlanKey> = Vec::new();
        for &(model, batch, seq) in keys {
            let key = PlanKey {
                model,
                batch,
                seq,
                npu: cfg.clone(),
            };
            if !seen.insert(key.clone()) {
                continue;
            }
            let resident = shard_of(&key)
                .lock()
                .expect("plan cache poisoned")
                .contains_key(&key);
            if !resident {
                missing.push(key);
            }
        }
        let compiled_count = missing.len();
        let compile = |key: &PlanKey| -> (PlanKey, Arc<ExecutionPlan>) {
            let plan = Arc::new(ExecutionPlan::compile(
                key.model, key.batch, key.seq, &key.npu,
            ));
            (key.clone(), plan)
        };
        let compiled: Vec<(PlanKey, Arc<ExecutionPlan>)> = if parallel && missing.len() > 1 {
            missing.par_iter().map(compile).collect()
        } else {
            missing.iter().map(compile).collect()
        };
        MISSES.fetch_add(compiled_count as u64, Ordering::Relaxed);
        for (key, plan) in compiled {
            let shard = shard_of(&key);
            let mut map = shard.lock().expect("plan cache poisoned");
            map.entry(key).or_insert(plan);
        }
        compiled_count
    }

    /// Current cache statistics.
    pub fn stats() -> CacheStats {
        CacheStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            entries: shards()
                .iter()
                .map(|s| s.lock().expect("plan cache poisoned").len())
                .sum(),
        }
    }

    /// Drops every cached plan and resets the statistics.
    pub fn clear() {
        for shard in shards() {
            shard.lock().expect("plan cache poisoned").clear();
        }
        HITS.store(0, Ordering::Relaxed);
        MISSES.store(0, Ordering::Relaxed);
    }
}

/// A task's position within its execution plan.
///
/// The cursor works on the plan's flat `PlanArena`: its state is the total
/// cycles executed plus the flat index of the interval the next cycle
/// executes in. [`ProgressCursor::advance`] is a boundary comparison in the
/// common case and a binary search over the prefix-sum table otherwise; the
/// boundary/footprint/layer queries are O(1). The semantics — including the
/// treatment of zero-cycle intervals and the normalization of a cursor that
/// lands exactly on an interval boundary — are pinned bit-for-bit to the
/// original nested interval walk, which survives as
/// [`reference::ReferenceCursor`] for the equivalence property test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressCursor {
    /// Flat index (into the plan arena) of the interval in which the next
    /// cycle executes; `interval_count` once the plan is complete.
    interval: usize,
    /// Total cycles executed so far.
    executed: Cycles,
}

impl ProgressCursor {
    /// A cursor at the very beginning of a plan.
    pub fn start() -> Self {
        ProgressCursor {
            interval: 0,
            executed: Cycles::ZERO,
        }
    }

    /// Total cycles executed so far.
    pub fn executed(&self) -> Cycles {
        self.executed
    }

    /// Index of the layer currently being executed (`layer_count` once the
    /// plan is complete).
    pub fn layer_index(&self, plan: &ExecutionPlan) -> usize {
        if self.interval >= plan.arena.len() {
            plan.layer_count()
        } else {
            plan.arena.layer_of[self.interval] as usize
        }
    }

    /// Whether the whole plan has finished.
    pub fn is_complete(&self, plan: &ExecutionPlan) -> bool {
        self.interval >= plan.arena.len()
    }

    /// Remaining cycles until the plan completes.
    pub fn remaining(&self, plan: &ExecutionPlan) -> Cycles {
        plan.total_cycles() - self.executed
    }

    /// Resets the cursor to the start of the plan (the KILL mechanism
    /// discards all progress).
    pub fn reset(&mut self) {
        *self = ProgressCursor::start();
    }

    /// Advances the cursor by at most `budget` cycles, returning the cycles
    /// actually consumed (less than `budget` only if the plan completes).
    pub fn advance(&mut self, plan: &ExecutionPlan, budget: Cycles) -> Cycles {
        let arena = &plan.arena;
        let n = arena.len();
        if budget.is_zero() || self.interval >= n {
            return Cycles::ZERO;
        }
        let total = plan.total_cycles();
        let target = (self.executed + budget).min(total);
        let consumed = target - self.executed;
        if self.executed + budget > total {
            // Leftover budget walks the cursor through any trailing
            // zero-cycle intervals and completes the plan.
            self.interval = n;
        } else {
            // The budget is consumed exactly. The interval ending precisely
            // at `target` (if any) counts as consumed; zero-cycle intervals
            // *after* that boundary do not — matching the reference walk,
            // which stops stepping the moment its budget reaches zero.
            let bound = arena.bounds[self.interval];
            if target < bound {
                // Common case: still inside the current interval.
            } else if target == bound {
                self.interval += 1;
            } else {
                let offset = self.interval + 1;
                let j = offset + arena.bounds[offset..].partition_point(|&b| b < target);
                self.interval = if arena.bounds[j] == target { j + 1 } else { j };
            }
        }
        self.executed = target;
        consumed
    }

    /// Cycles executed *inside* the currently executing interval — progress
    /// past the last interval boundary, which a node failure loses under
    /// the commit-point recovery model (`executed - in_interval` is the
    /// last `GEMM_OP` commit the task can resume from). Zero when sitting
    /// exactly on a boundary or when the plan is complete.
    pub fn in_interval(&self, plan: &ExecutionPlan) -> Cycles {
        let arena = &plan.arena;
        if self.interval >= arena.len() {
            return Cycles::ZERO;
        }
        self.executed - arena.start_of(self.interval)
    }

    /// Cycles needed to reach the next legal preemption point (the end of the
    /// currently executing interval). Zero when already at a boundary or when
    /// the plan is complete.
    pub fn cycles_to_boundary(&self, plan: &ExecutionPlan) -> Cycles {
        let arena = &plan.arena;
        if self.interval >= arena.len() || self.executed == arena.start_of(self.interval) {
            return Cycles::ZERO;
        }
        arena.bounds[self.interval] - self.executed
    }

    /// The output-activation bytes that are live (and would have to be
    /// checkpointed) at the *current boundary* — i.e. the checkpoint
    /// footprint if the task is preempted at the end of the interval it is
    /// currently in, or right now if it already sits at a boundary.
    pub fn live_checkpoint_bytes(&self, plan: &ExecutionPlan) -> u64 {
        let arena = &plan.arena;
        if self.interval >= arena.len() {
            return 0;
        }
        if self.executed == arena.start_of(self.interval) {
            // At a boundary: the last *completed* interval of this layer
            // defines the live state; at a layer start nothing is live.
            if arena.is_layer_start(self.interval) {
                0
            } else {
                arena.live_bytes[self.interval - 1]
            }
        } else {
            // Mid-interval: preemption waits for this interval to commit.
            arena.live_bytes[self.interval]
        }
    }
}

impl Default for ProgressCursor {
    fn default() -> Self {
        ProgressCursor::start()
    }
}

/// The original nested-vector progress cursor, preserved verbatim as the
/// semantic oracle for [`ProgressCursor`].
///
/// This walks `plan.layers()[..].intervals[..]` one interval at a time —
/// O(intervals crossed) per advance — exactly as the engine did before the
/// flat `PlanArena` existed. It is **not** used on any production path;
/// the cursor-equivalence property test (`tests/property_tests.rs`) replays
/// random plans and budgets through both cursors and asserts every
/// observable (consumed cycles, executed total, boundary distance, live
/// checkpoint bytes, layer index, completion) is identical at every step.
pub mod reference {
    use super::{Cycles, ExecutionPlan};

    /// Nested interval-walk cursor (test oracle; see the module docs).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ReferenceCursor {
        layer: usize,
        interval: usize,
        /// Cycles already spent inside the current interval.
        offset: Cycles,
        /// Total cycles executed so far.
        executed: Cycles,
    }

    impl ReferenceCursor {
        /// A cursor at the very beginning of a plan.
        pub fn start() -> Self {
            ReferenceCursor {
                layer: 0,
                interval: 0,
                offset: Cycles::ZERO,
                executed: Cycles::ZERO,
            }
        }

        /// Total cycles executed so far.
        pub fn executed(&self) -> Cycles {
            self.executed
        }

        /// Index of the layer currently being executed.
        pub fn layer_index(&self) -> usize {
            self.layer
        }

        /// Whether the whole plan has finished.
        pub fn is_complete(&self, plan: &ExecutionPlan) -> bool {
            self.layer >= plan.layers().len()
        }

        /// Remaining cycles until the plan completes.
        pub fn remaining(&self, plan: &ExecutionPlan) -> Cycles {
            plan.total_cycles() - self.executed
        }

        /// Resets the cursor to the start of the plan.
        pub fn reset(&mut self) {
            *self = ReferenceCursor::start();
        }

        /// Advances the cursor by at most `budget` cycles, returning the
        /// cycles actually consumed.
        pub fn advance(&mut self, plan: &ExecutionPlan, budget: Cycles) -> Cycles {
            let layers = plan.layers();
            let mut remaining_budget = budget;
            let mut consumed = Cycles::ZERO;
            while !remaining_budget.is_zero() && self.layer < layers.len() {
                let interval = &layers[self.layer].intervals[self.interval];
                let left_in_interval = interval.cycles - self.offset;
                if remaining_budget >= left_in_interval {
                    remaining_budget -= left_in_interval;
                    consumed += left_in_interval;
                    self.offset = Cycles::ZERO;
                    self.interval += 1;
                    if self.interval >= layers[self.layer].intervals.len() {
                        self.interval = 0;
                        self.layer += 1;
                    }
                } else {
                    self.offset += remaining_budget;
                    consumed += remaining_budget;
                    remaining_budget = Cycles::ZERO;
                }
            }
            self.executed += consumed;
            consumed
        }

        /// Cycles executed inside the currently executing interval.
        pub fn in_interval(&self, _plan: &ExecutionPlan) -> Cycles {
            self.offset
        }

        /// Cycles needed to reach the next legal preemption point.
        pub fn cycles_to_boundary(&self, plan: &ExecutionPlan) -> Cycles {
            let layers = plan.layers();
            if self.layer >= layers.len() || self.offset.is_zero() {
                return Cycles::ZERO;
            }
            layers[self.layer].intervals[self.interval].cycles - self.offset
        }

        /// The checkpoint footprint at the current boundary.
        pub fn live_checkpoint_bytes(&self, plan: &ExecutionPlan) -> u64 {
            let layers = plan.layers();
            if self.layer >= layers.len() {
                return 0;
            }
            let intervals = &layers[self.layer].intervals;
            if self.offset.is_zero() {
                if self.interval == 0 {
                    0
                } else {
                    intervals[self.interval - 1].live_output_bytes
                }
            } else {
                intervals[self.interval].live_output_bytes
            }
        }
    }

    impl Default for ReferenceCursor {
        fn default() -> Self {
            ReferenceCursor::start()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceCursor;
    use super::*;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    fn small_plan() -> ExecutionPlan {
        ExecutionPlan::compile(ModelKind::CnnAlexNet, 1, SeqSpec::none(), &cfg())
    }

    #[test]
    fn compiled_plan_has_layers_and_cycles() {
        let plan = small_plan();
        assert_eq!(plan.layer_count(), 11);
        assert!(plan.interval_count() >= plan.layer_count());
        assert!(plan.total_cycles() > Cycles::ZERO);
        assert!(plan.total_macs() > 500_000_000);
        let sum: Cycles = plan.layers().iter().map(|l| l.total_cycles).sum();
        assert_eq!(sum, plan.total_cycles());
    }

    #[test]
    fn arena_is_consistent_with_the_nested_layers() {
        let plan =
            ExecutionPlan::compile(ModelKind::RnnTranslation1, 2, SeqSpec::new(20, 15), &cfg());
        let arena = &plan.arena;
        assert_eq!(arena.len(), plan.interval_count());
        assert_eq!(arena.layer_starts.len(), plan.layer_count());
        // Bounds are the running prefix sum of interval cycles, ending at
        // the plan total; live bytes and layer indices line up flat-to-nested.
        let mut flat = 0usize;
        let mut cumulative = Cycles::ZERO;
        for (layer_idx, layer) in plan.layers().iter().enumerate() {
            assert_eq!(arena.layer_starts[layer_idx] as usize, flat);
            assert_eq!(plan.layer_start_cycles(layer_idx), cumulative);
            for interval in &layer.intervals {
                cumulative += interval.cycles;
                assert_eq!(arena.bounds[flat], cumulative);
                assert_eq!(arena.live_bytes[flat], interval.live_output_bytes);
                assert_eq!(arena.layer_of[flat] as usize, layer_idx);
                assert_eq!(
                    arena.is_layer_start(flat),
                    arena.layer_starts[layer_idx] as usize == flat
                );
                flat += 1;
            }
        }
        assert_eq!(flat, arena.len());
        assert_eq!(cumulative, plan.total_cycles());
    }

    #[test]
    fn rnn_plan_scales_with_output_length() {
        let c = cfg();
        let short = ExecutionPlan::compile(ModelKind::RnnTranslation1, 1, SeqSpec::new(20, 5), &c);
        let long = ExecutionPlan::compile(ModelKind::RnnTranslation1, 1, SeqSpec::new(20, 40), &c);
        assert!(long.total_cycles() > short.total_cycles());
        assert!(long.layer_count() > short.layer_count());
    }

    #[test]
    fn cursor_advances_to_completion() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        let consumed = cursor.advance(&plan, plan.total_cycles());
        assert_eq!(consumed, plan.total_cycles());
        assert!(cursor.is_complete(&plan));
        assert_eq!(cursor.remaining(&plan), Cycles::ZERO);
        assert_eq!(cursor.executed(), plan.total_cycles());
        assert_eq!(cursor.layer_index(&plan), plan.layer_count());
        // Advancing past the end consumes nothing more.
        assert_eq!(cursor.advance(&plan, Cycles::new(1000)), Cycles::ZERO);
    }

    #[test]
    fn partial_advance_tracks_executed_and_remaining() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        let half = plan.total_cycles() / 2;
        let consumed = cursor.advance(&plan, half);
        assert_eq!(consumed, half);
        assert_eq!(cursor.executed(), half);
        assert_eq!(cursor.remaining(&plan), plan.total_cycles() - half);
        assert!(!cursor.is_complete(&plan));
    }

    #[test]
    fn many_small_advances_equal_one_large_advance() {
        let plan = small_plan();
        let mut a = ProgressCursor::start();
        let mut b = ProgressCursor::start();
        a.advance(&plan, plan.total_cycles());
        let step = Cycles::new(10_000);
        while !b.is_complete(&plan) {
            b.advance(&plan, step);
        }
        assert_eq!(a.executed(), b.executed());
    }

    #[test]
    fn boundary_distance_is_zero_at_boundaries_and_positive_mid_interval() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        assert_eq!(cursor.cycles_to_boundary(&plan), Cycles::ZERO);
        // Step into the middle of the first interval.
        let first_interval = plan.layers()[0].intervals[0].cycles;
        cursor.advance(&plan, first_interval / 2);
        let to_boundary = cursor.cycles_to_boundary(&plan);
        assert!(to_boundary > Cycles::ZERO);
        assert!(to_boundary <= first_interval);
        // Finishing the interval brings us back to a boundary.
        cursor.advance(&plan, to_boundary);
        assert_eq!(cursor.cycles_to_boundary(&plan), Cycles::ZERO);
    }

    #[test]
    fn live_bytes_grow_within_a_layer_and_reset_at_layer_start() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        assert_eq!(cursor.live_checkpoint_bytes(&plan), 0);
        // Execute the whole first layer: cursor lands at the start of layer 1.
        cursor.advance(&plan, plan.layers()[0].total_cycles);
        assert_eq!(cursor.layer_index(&plan), 1);
        assert_eq!(cursor.live_checkpoint_bytes(&plan), 0);
        // Step partway into layer 1: some state is now live.
        cursor.advance(&plan, plan.layers()[1].total_cycles / 2);
        if plan.layers()[1].intervals.len() > 1 {
            assert!(cursor.live_checkpoint_bytes(&plan) > 0);
        }
    }

    #[test]
    fn reset_discards_progress() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        cursor.advance(&plan, plan.total_cycles() / 3);
        assert!(cursor.executed() > Cycles::ZERO);
        cursor.reset();
        assert_eq!(cursor.executed(), Cycles::ZERO);
        assert_eq!(cursor, ProgressCursor::start());
        assert_eq!(ProgressCursor::default(), ProgressCursor::start());
    }

    #[test]
    fn flat_cursor_matches_reference_cursor_on_a_real_plan() {
        let plan = small_plan();
        let mut flat = ProgressCursor::start();
        let mut reference = ReferenceCursor::start();
        // Step sizes chosen to land exactly on boundaries, mid-interval and
        // past the end.
        let first = plan.layers()[0].intervals[0].cycles;
        let steps = [
            first / 2,
            first - first / 2, // exactly at the first boundary
            Cycles::new(1),
            Cycles::ZERO,
            plan.layers()[0].total_cycles,
            Cycles::new(123_457),
            plan.total_cycles(), // overshoots: completes
        ];
        for &step in &steps {
            let a = flat.advance(&plan, step);
            let b = reference.advance(&plan, step);
            assert_eq!(a, b);
            assert_eq!(flat.executed(), reference.executed());
            assert_eq!(flat.is_complete(&plan), reference.is_complete(&plan));
            assert_eq!(flat.layer_index(&plan), reference.layer_index());
            assert_eq!(
                flat.cycles_to_boundary(&plan),
                reference.cycles_to_boundary(&plan)
            );
            assert_eq!(
                flat.live_checkpoint_bytes(&plan),
                reference.live_checkpoint_bytes(&plan)
            );
        }
        assert!(flat.is_complete(&plan));
    }

    #[test]
    fn cached_compile_shares_one_plan_and_tracks_stats() {
        let c = cfg();
        // Use a batch size nothing else in the test suite touches so the
        // first lookup is a miss even when other tests warmed the cache.
        let before = plan_cache::stats();
        let first = ExecutionPlan::compile_cached(ModelKind::CnnAlexNet, 3, SeqSpec::none(), &c);
        let second = ExecutionPlan::compile_cached(ModelKind::CnnAlexNet, 3, SeqSpec::none(), &c);
        assert!(Arc::ptr_eq(&first, &second), "cache must share one Arc");
        let after = plan_cache::stats();
        assert!(after.misses > before.misses, "first lookup compiles");
        assert!(after.hits > before.hits, "second lookup hits");
        assert!(after.entries > 0);
        assert!(after.hit_rate() > 0.0);

        // The cached plan is identical to a fresh compile.
        let fresh = ExecutionPlan::compile(ModelKind::CnnAlexNet, 3, SeqSpec::none(), &c);
        assert_eq!(*first, fresh);

        // A different NPU fingerprint is a different cache entry.
        let small = NpuConfig::builder().systolic_width(64).build();
        let other =
            ExecutionPlan::compile_cached(ModelKind::CnnAlexNet, 3, SeqSpec::none(), &small);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_ne!(first.total_cycles(), other.total_cycles());
    }

    #[test]
    fn warm_compiles_each_unique_key_once_and_later_lookups_hit() {
        let c = cfg();
        // Batch size 5 is unique to this test, so the keys cannot already be
        // resident.
        let keys = [
            (ModelKind::CnnAlexNet, 5u64, SeqSpec::none()),
            (ModelKind::CnnAlexNet, 5u64, SeqSpec::none()), // duplicate
            (ModelKind::CnnMobileNet, 5u64, SeqSpec::none()),
        ];
        let before = plan_cache::stats();
        let compiled = plan_cache::warm(&keys, &c, true);
        assert_eq!(compiled, 2, "duplicates are compiled once");
        let mid = plan_cache::stats();
        assert_eq!(mid.misses - before.misses, 2);
        assert_eq!(mid.hits, before.hits, "warming is not a lookup");

        // Re-warming compiles nothing.
        assert_eq!(plan_cache::warm(&keys, &c, false), 0);

        // A post-warm lookup hits and returns the warmed plan.
        let plan = ExecutionPlan::compile_cached(ModelKind::CnnAlexNet, 5, SeqSpec::none(), &c);
        let after = plan_cache::stats();
        assert_eq!(after.hits, mid.hits + 1);
        assert_eq!(after.misses, mid.misses);
        let fresh = ExecutionPlan::compile(ModelKind::CnnAlexNet, 5, SeqSpec::none(), &c);
        assert_eq!(*plan, fresh);
    }

    #[test]
    fn shared_compile_matches_plain_compile() {
        let c = cfg();
        let plain = ExecutionPlan::compile(ModelKind::CnnMobileNet, 1, SeqSpec::none(), &c);
        let shared = ExecutionPlan::compile_shared(ModelKind::CnnMobileNet, 1, SeqSpec::none(), &c);
        assert_eq!(plain.total_cycles(), shared.total_cycles());
        assert_eq!(plain.layer_count(), shared.layer_count());
    }
}
