//! Execution plans: a task's DNN compiled down to preemption intervals.
//!
//! Before a request is dispatched to the NPU, its network (at the request's
//! batch size and actual sequence lengths) is lowered layer by layer onto the
//! NPU timing model. The result is an [`ExecutionPlan`]: for every layer, a
//! short list of [`PreemptionInterval`]s whose boundaries are the legal
//! CHECKPOINT preemption points and which carry the live output-activation
//! footprint at each point.
//!
//! [`ProgressCursor`] tracks how far through its plan a task has executed,
//! supports advancing by an arbitrary number of cycles, and answers the two
//! questions the preemption machinery needs: "how long until the next legal
//! preemption point?" and "how many bytes are live right now?".

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dnn_models::lowering::lower_graph;
use dnn_models::{ModelKind, SeqSpec};
use npu_sim::{Cycles, LayerTiming, NpuConfig, PreemptionInterval};

/// The modelled execution of one layer: its preemption intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Preemption intervals in execution order.
    pub intervals: Vec<PreemptionInterval>,
    /// Total cycles of the layer (sum of interval cycles).
    pub total_cycles: Cycles,
    /// Total MAC operations of the layer.
    pub macs: u64,
}

/// A task's complete compiled execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    layers: Vec<LayerPlan>,
    total_cycles: Cycles,
    total_macs: u64,
}

impl ExecutionPlan {
    /// Compiles `model` at `batch`/`seq` onto the NPU described by `cfg`.
    pub fn compile(model: ModelKind, batch: u64, seq: SeqSpec, cfg: &NpuConfig) -> Self {
        let network = model.build(batch, seq);
        let works = lower_graph(&network, batch);
        let mut layers = Vec::with_capacity(works.len());
        let mut total_cycles = Cycles::ZERO;
        let mut total_macs = 0u64;
        for work in &works {
            let timing = LayerTiming::model(work, cfg);
            total_cycles += timing.total_cycles();
            total_macs += timing.macs();
            layers.push(LayerPlan {
                intervals: timing.intervals().to_vec(),
                total_cycles: timing.total_cycles(),
                macs: timing.macs(),
            });
        }
        ExecutionPlan {
            layers,
            total_cycles,
            total_macs,
        }
    }

    /// Compiles and wraps the plan in an [`Arc`] for cheap sharing across
    /// scheduler configurations. Always compiles fresh; use
    /// [`ExecutionPlan::compile_cached`] to share identical plans across an
    /// entire evaluation suite.
    pub fn compile_shared(
        model: ModelKind,
        batch: u64,
        seq: SeqSpec,
        cfg: &NpuConfig,
    ) -> Arc<Self> {
        Arc::new(Self::compile(model, batch, seq, cfg))
    }

    /// Returns the memoized plan for `(model, batch, seq, cfg)`, compiling
    /// it on first use.
    ///
    /// Plan compilation is a pure function of its arguments, so a suite that
    /// replays the same workloads under many scheduler configurations (or
    /// many workloads drawing the same model/batch/sequence combinations)
    /// compiles each distinct plan exactly once and shares it through the
    /// returned [`Arc`]. See [`plan_cache`] for statistics and eviction.
    pub fn compile_cached(
        model: ModelKind,
        batch: u64,
        seq: SeqSpec,
        cfg: &NpuConfig,
    ) -> Arc<Self> {
        plan_cache::get_or_compile(model, batch, seq, cfg)
    }

    /// The per-layer plans in execution order.
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// The task's isolated, uninterrupted execution time.
    pub fn total_cycles(&self) -> Cycles {
        self.total_cycles
    }

    /// Total MAC operations across the network.
    pub fn total_macs(&self) -> u64 {
        self.total_macs
    }

    /// Number of layers in the plan.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total number of preemption intervals across all layers.
    pub fn interval_count(&self) -> usize {
        self.layers.iter().map(|l| l.intervals.len()).sum()
    }
}

/// Process-wide memoization of compiled [`ExecutionPlan`]s.
///
/// A full figure suite simulates 25 workloads × ~7 scheduler configurations,
/// and the workload generator draws from eight models at a handful of batch
/// sizes and sequence lengths — so the same plan is otherwise recompiled
/// hundreds of times. The cache is keyed on every input that determines the
/// compiled timing: model, batch, sequence lengths, and the full
/// architectural configuration (compared field-wise; the
/// [`NpuConfig::fingerprint`] digest is only used for hashing).
///
/// Entries are `Arc`-shared and immutable; concurrent lookups from the
/// parallel evaluation suite are safe and a racing first-compile simply
/// keeps one winner. [`clear`] exists for benchmarks that want to measure
/// the uncached path and for long-lived processes sweeping many NPU
/// configurations.
pub mod plan_cache {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    use dnn_models::{ModelKind, SeqSpec};
    use npu_sim::NpuConfig;

    use super::ExecutionPlan;

    /// Cache key: equality compares the *full* `NpuConfig` field-wise (via
    /// its derived `PartialEq`), so a plan can never be served for a
    /// different configuration even if [`NpuConfig::fingerprint`] ever
    /// collided or lagged behind a newly added field — a stale fingerprint
    /// only degrades hash bucketing, never correctness.
    #[derive(Debug, Clone, PartialEq)]
    struct PlanKey {
        model: ModelKind,
        batch: u64,
        seq: SeqSpec,
        npu: NpuConfig,
    }

    // NpuConfig contains f64 fields, so it is PartialEq but not Eq. The
    // validated configurations stored here never hold NaN (validation
    // rejects non-positive and NaN frequencies/bandwidths), so equality is
    // reflexive for every key that can reach the cache.
    impl Eq for PlanKey {}

    impl std::hash::Hash for PlanKey {
        fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
            self.model.hash(state);
            self.batch.hash(state);
            self.seq.hash(state);
            self.npu.fingerprint().hash(state);
        }
    }

    static CACHE: OnceLock<Mutex<HashMap<PlanKey, Arc<ExecutionPlan>>>> = OnceLock::new();
    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);

    fn cache() -> &'static Mutex<HashMap<PlanKey, Arc<ExecutionPlan>>> {
        CACHE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Cumulative cache statistics since process start (or the last
    /// [`clear`]).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct CacheStats {
        /// Lookups answered from the cache.
        pub hits: u64,
        /// Lookups that had to compile.
        pub misses: u64,
        /// Plans currently resident.
        pub entries: usize,
    }

    impl CacheStats {
        /// Fraction of lookups served from the cache (0 when unused).
        pub fn hit_rate(&self) -> f64 {
            let total = self.hits + self.misses;
            if total == 0 {
                0.0
            } else {
                self.hits as f64 / total as f64
            }
        }
    }

    pub(super) fn get_or_compile(
        model: ModelKind,
        batch: u64,
        seq: SeqSpec,
        cfg: &NpuConfig,
    ) -> Arc<ExecutionPlan> {
        let key = PlanKey {
            model,
            batch,
            seq,
            npu: cfg.clone(),
        };
        if let Some(plan) = cache().lock().expect("plan cache poisoned").get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        // Compile outside the lock: plans take milliseconds to build and the
        // parallel suite would otherwise serialize on first touch. A racing
        // compile of the same key produces an identical plan; first insert
        // wins and the loser's work is discarded.
        MISSES.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(ExecutionPlan::compile(model, batch, seq, cfg));
        let mut map = cache().lock().expect("plan cache poisoned");
        Arc::clone(map.entry(key).or_insert(plan))
    }

    /// Current cache statistics.
    pub fn stats() -> CacheStats {
        CacheStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            entries: cache().lock().expect("plan cache poisoned").len(),
        }
    }

    /// Drops every cached plan and resets the statistics.
    pub fn clear() {
        let mut map = cache().lock().expect("plan cache poisoned");
        map.clear();
        HITS.store(0, Ordering::Relaxed);
        MISSES.store(0, Ordering::Relaxed);
    }
}

/// A task's position within its execution plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressCursor {
    layer: usize,
    interval: usize,
    /// Cycles already spent inside the current interval.
    offset: Cycles,
    /// Total cycles executed so far.
    executed: Cycles,
}

impl ProgressCursor {
    /// A cursor at the very beginning of a plan.
    pub fn start() -> Self {
        ProgressCursor {
            layer: 0,
            interval: 0,
            offset: Cycles::ZERO,
            executed: Cycles::ZERO,
        }
    }

    /// Total cycles executed so far.
    pub fn executed(&self) -> Cycles {
        self.executed
    }

    /// Index of the layer currently being executed.
    pub fn layer_index(&self) -> usize {
        self.layer
    }

    /// Whether the whole plan has finished.
    pub fn is_complete(&self, plan: &ExecutionPlan) -> bool {
        self.layer >= plan.layers.len()
    }

    /// Remaining cycles until the plan completes.
    pub fn remaining(&self, plan: &ExecutionPlan) -> Cycles {
        plan.total_cycles() - self.executed
    }

    /// Resets the cursor to the start of the plan (the KILL mechanism
    /// discards all progress).
    pub fn reset(&mut self) {
        *self = ProgressCursor::start();
    }

    /// Advances the cursor by at most `budget` cycles, returning the cycles
    /// actually consumed (less than `budget` only if the plan completes).
    pub fn advance(&mut self, plan: &ExecutionPlan, budget: Cycles) -> Cycles {
        let mut remaining_budget = budget;
        let mut consumed = Cycles::ZERO;
        while !remaining_budget.is_zero() && self.layer < plan.layers.len() {
            let interval = &plan.layers[self.layer].intervals[self.interval];
            let left_in_interval = interval.cycles - self.offset;
            if remaining_budget >= left_in_interval {
                remaining_budget -= left_in_interval;
                consumed += left_in_interval;
                self.offset = Cycles::ZERO;
                self.interval += 1;
                if self.interval >= plan.layers[self.layer].intervals.len() {
                    self.interval = 0;
                    self.layer += 1;
                }
            } else {
                self.offset += remaining_budget;
                consumed += remaining_budget;
                remaining_budget = Cycles::ZERO;
            }
        }
        self.executed += consumed;
        consumed
    }

    /// Cycles needed to reach the next legal preemption point (the end of the
    /// currently executing interval). Zero when already at a boundary or when
    /// the plan is complete.
    pub fn cycles_to_boundary(&self, plan: &ExecutionPlan) -> Cycles {
        if self.layer >= plan.layers.len() || self.offset.is_zero() {
            return Cycles::ZERO;
        }
        plan.layers[self.layer].intervals[self.interval].cycles - self.offset
    }

    /// The output-activation bytes that are live (and would have to be
    /// checkpointed) at the *current boundary* — i.e. the checkpoint
    /// footprint if the task is preempted at the end of the interval it is
    /// currently in, or right now if it already sits at a boundary.
    pub fn live_checkpoint_bytes(&self, plan: &ExecutionPlan) -> u64 {
        if self.layer >= plan.layers.len() {
            return 0;
        }
        let intervals = &plan.layers[self.layer].intervals;
        if self.offset.is_zero() {
            // At a boundary: the last *completed* interval of this layer
            // defines the live state; at a layer start nothing is live.
            if self.interval == 0 {
                0
            } else {
                intervals[self.interval - 1].live_output_bytes
            }
        } else {
            // Mid-interval: preemption waits for this interval to commit.
            intervals[self.interval].live_output_bytes
        }
    }
}

impl Default for ProgressCursor {
    fn default() -> Self {
        ProgressCursor::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    fn small_plan() -> ExecutionPlan {
        ExecutionPlan::compile(ModelKind::CnnAlexNet, 1, SeqSpec::none(), &cfg())
    }

    #[test]
    fn compiled_plan_has_layers_and_cycles() {
        let plan = small_plan();
        assert_eq!(plan.layer_count(), 11);
        assert!(plan.interval_count() >= plan.layer_count());
        assert!(plan.total_cycles() > Cycles::ZERO);
        assert!(plan.total_macs() > 500_000_000);
        let sum: Cycles = plan.layers().iter().map(|l| l.total_cycles).sum();
        assert_eq!(sum, plan.total_cycles());
    }

    #[test]
    fn rnn_plan_scales_with_output_length() {
        let c = cfg();
        let short = ExecutionPlan::compile(ModelKind::RnnTranslation1, 1, SeqSpec::new(20, 5), &c);
        let long = ExecutionPlan::compile(ModelKind::RnnTranslation1, 1, SeqSpec::new(20, 40), &c);
        assert!(long.total_cycles() > short.total_cycles());
        assert!(long.layer_count() > short.layer_count());
    }

    #[test]
    fn cursor_advances_to_completion() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        let consumed = cursor.advance(&plan, plan.total_cycles());
        assert_eq!(consumed, plan.total_cycles());
        assert!(cursor.is_complete(&plan));
        assert_eq!(cursor.remaining(&plan), Cycles::ZERO);
        assert_eq!(cursor.executed(), plan.total_cycles());
        // Advancing past the end consumes nothing more.
        assert_eq!(cursor.advance(&plan, Cycles::new(1000)), Cycles::ZERO);
    }

    #[test]
    fn partial_advance_tracks_executed_and_remaining() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        let half = plan.total_cycles() / 2;
        let consumed = cursor.advance(&plan, half);
        assert_eq!(consumed, half);
        assert_eq!(cursor.executed(), half);
        assert_eq!(cursor.remaining(&plan), plan.total_cycles() - half);
        assert!(!cursor.is_complete(&plan));
    }

    #[test]
    fn many_small_advances_equal_one_large_advance() {
        let plan = small_plan();
        let mut a = ProgressCursor::start();
        let mut b = ProgressCursor::start();
        a.advance(&plan, plan.total_cycles());
        let step = Cycles::new(10_000);
        while !b.is_complete(&plan) {
            b.advance(&plan, step);
        }
        assert_eq!(a.executed(), b.executed());
    }

    #[test]
    fn boundary_distance_is_zero_at_boundaries_and_positive_mid_interval() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        assert_eq!(cursor.cycles_to_boundary(&plan), Cycles::ZERO);
        // Step into the middle of the first interval.
        let first_interval = plan.layers()[0].intervals[0].cycles;
        cursor.advance(&plan, first_interval / 2);
        let to_boundary = cursor.cycles_to_boundary(&plan);
        assert!(to_boundary > Cycles::ZERO);
        assert!(to_boundary <= first_interval);
        // Finishing the interval brings us back to a boundary.
        cursor.advance(&plan, to_boundary);
        assert_eq!(cursor.cycles_to_boundary(&plan), Cycles::ZERO);
    }

    #[test]
    fn live_bytes_grow_within_a_layer_and_reset_at_layer_start() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        assert_eq!(cursor.live_checkpoint_bytes(&plan), 0);
        // Execute the whole first layer: cursor lands at the start of layer 1.
        cursor.advance(&plan, plan.layers()[0].total_cycles);
        assert_eq!(cursor.layer_index(), 1);
        assert_eq!(cursor.live_checkpoint_bytes(&plan), 0);
        // Step partway into layer 1: some state is now live.
        cursor.advance(&plan, plan.layers()[1].total_cycles / 2);
        if plan.layers()[1].intervals.len() > 1 {
            assert!(cursor.live_checkpoint_bytes(&plan) > 0);
        }
    }

    #[test]
    fn reset_discards_progress() {
        let plan = small_plan();
        let mut cursor = ProgressCursor::start();
        cursor.advance(&plan, plan.total_cycles() / 3);
        assert!(cursor.executed() > Cycles::ZERO);
        cursor.reset();
        assert_eq!(cursor.executed(), Cycles::ZERO);
        assert_eq!(cursor, ProgressCursor::start());
        assert_eq!(ProgressCursor::default(), ProgressCursor::start());
    }

    #[test]
    fn cached_compile_shares_one_plan_and_tracks_stats() {
        let c = cfg();
        // Use a batch size nothing else in the test suite touches so the
        // first lookup is a miss even when other tests warmed the cache.
        let before = plan_cache::stats();
        let first = ExecutionPlan::compile_cached(ModelKind::CnnAlexNet, 3, SeqSpec::none(), &c);
        let second = ExecutionPlan::compile_cached(ModelKind::CnnAlexNet, 3, SeqSpec::none(), &c);
        assert!(Arc::ptr_eq(&first, &second), "cache must share one Arc");
        let after = plan_cache::stats();
        assert!(after.misses > before.misses, "first lookup compiles");
        assert!(after.hits > before.hits, "second lookup hits");
        assert!(after.entries > 0);
        assert!(after.hit_rate() > 0.0);

        // The cached plan is identical to a fresh compile.
        let fresh = ExecutionPlan::compile(ModelKind::CnnAlexNet, 3, SeqSpec::none(), &c);
        assert_eq!(*first, fresh);

        // A different NPU fingerprint is a different cache entry.
        let small = NpuConfig::builder().systolic_width(64).build();
        let other =
            ExecutionPlan::compile_cached(ModelKind::CnnAlexNet, 3, SeqSpec::none(), &small);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_ne!(first.total_cycles(), other.total_cycles());
    }

    #[test]
    fn shared_compile_matches_plain_compile() {
        let c = cfg();
        let plain = ExecutionPlan::compile(ModelKind::CnnMobileNet, 1, SeqSpec::none(), &c);
        let shared = ExecutionPlan::compile_shared(ModelKind::CnnMobileNet, 1, SeqSpec::none(), &c);
        assert_eq!(plain.total_cycles(), shared.total_cycles());
        assert_eq!(plain.layer_count(), shared.layer_count());
    }
}
