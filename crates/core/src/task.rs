//! Inference tasks: identifiers, priorities and dispatch requests.

use std::fmt;

use serde::{Deserialize, Serialize};

use dnn_models::{ModelKind, SeqSpec};
use npu_sim::Cycles;

/// Identifier of an inference task within one simulation.
///
/// The identifier doubles as the ASID the NPU's MMU uses to isolate the
/// co-located tasks' memory accesses (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// User-defined priority of an inference request (Section V-C, Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Low priority (1 token per grant).
    Low,
    /// Medium priority (3 tokens per grant).
    Medium,
    /// High priority (9 tokens per grant).
    High,
}

impl Priority {
    /// All priority levels in ascending order.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Medium, Priority::High];

    /// The level's position in [`Priority::ALL`] — a dense index for
    /// per-priority bucket arrays (e.g. the engine's incrementally
    /// maintained blocking-work totals).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The token grant associated with this priority level (Table II).
    pub fn token_grant(self) -> f64 {
        match self {
            Priority::Low => 1.0,
            Priority::Medium => 3.0,
            Priority::High => 9.0,
        }
    }

    /// The weight used in the fairness metric (Equation 2); identical to the
    /// token grant.
    pub fn weight(self) -> f64 {
        self.token_grant()
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Priority::Low => "low",
            Priority::Medium => "medium",
            Priority::High => "high",
        };
        f.write_str(name)
    }
}

/// Lifecycle state of a task inside the scheduler (the `State` field of the
/// inference task context table, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Dispatched to the NPU and waiting in the ready queue.
    Ready,
    /// Currently executing on the NPU.
    Running,
    /// Preempted with its context checkpointed to memory.
    Checkpointed,
    /// Finished execution.
    Completed,
}

/// One inference request dispatched from the CPU to the NPU job scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRequest {
    /// Unique task identifier.
    pub id: TaskId,
    /// Which DNN the request runs.
    pub model: ModelKind,
    /// Batch size of the request.
    pub batch: u64,
    /// The *actual* sequence lengths of this request (the output length is
    /// only discovered as the RNN executes; the scheduler never sees it).
    pub seq: SeqSpec,
    /// User-defined priority level.
    pub priority: Priority,
    /// Dispatch (arrival) time at the NPU scheduler.
    pub arrival: Cycles,
    /// The scheduler's estimate of the task's isolated execution time, as
    /// produced by a predictor. `None` means "use the exact plan length"
    /// (oracle estimates, Section VI-D).
    pub estimated_cycles: Option<Cycles>,
}

impl TaskRequest {
    /// Creates a request with the given identifier and model, batch 1, low
    /// priority, arriving at time zero. Use the builder-style setters to
    /// customize.
    pub fn new(id: TaskId, model: ModelKind) -> Self {
        TaskRequest {
            id,
            model,
            batch: 1,
            seq: SeqSpec::for_model(model, 20),
            priority: Priority::Low,
            arrival: Cycles::ZERO,
            estimated_cycles: None,
        }
    }

    /// Sets the batch size.
    pub fn with_batch(mut self, batch: u64) -> Self {
        assert!(batch > 0, "batch size must be non-zero");
        self.batch = batch;
        self
    }

    /// Sets the actual sequence specification.
    pub fn with_seq(mut self, seq: SeqSpec) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the arrival time.
    pub fn with_arrival(mut self, arrival: Cycles) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the predictor-provided execution time estimate.
    pub fn with_estimate(mut self, estimate: Cycles) -> Self {
        self.estimated_cycles = Some(estimate);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_token_grants_match_table_two() {
        assert_eq!(Priority::Low.token_grant(), 1.0);
        assert_eq!(Priority::Medium.token_grant(), 3.0);
        assert_eq!(Priority::High.token_grant(), 9.0);
        assert_eq!(Priority::High.weight(), 9.0);
    }

    #[test]
    fn priorities_are_ordered() {
        assert!(Priority::Low < Priority::Medium);
        assert!(Priority::Medium < Priority::High);
        assert_eq!(Priority::ALL.len(), 3);
    }

    #[test]
    fn priority_index_is_dense_and_matches_all_order() {
        for (expected, priority) in Priority::ALL.into_iter().enumerate() {
            assert_eq!(priority.index(), expected);
        }
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(TaskId(3).to_string(), "task3");
        assert_eq!(Priority::Medium.to_string(), "medium");
    }

    #[test]
    fn request_builder_sets_fields() {
        let req = TaskRequest::new(TaskId(1), ModelKind::CnnVggNet)
            .with_batch(4)
            .with_priority(Priority::High)
            .with_arrival(Cycles::new(700))
            .with_estimate(Cycles::new(1_000_000));
        assert_eq!(req.batch, 4);
        assert_eq!(req.priority, Priority::High);
        assert_eq!(req.arrival, Cycles::new(700));
        assert_eq!(req.estimated_cycles, Some(Cycles::new(1_000_000)));
        assert_eq!(req.seq, SeqSpec::none());
    }

    #[test]
    fn rnn_request_gets_a_default_sequence() {
        let req = TaskRequest::new(TaskId(2), ModelKind::RnnTranslation1);
        assert!(req.seq.input_len > 0 && req.seq.output_len > 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be non-zero")]
    fn zero_batch_rejected() {
        let _ = TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet).with_batch(0);
    }
}
