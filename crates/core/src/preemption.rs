//! Preemption mechanisms (Section IV-C) and the dynamic mechanism selection
//! algorithm (Algorithm 3).
//!
//! Three mechanisms trade off checkpointed state size, preemption latency,
//! fairness and throughput:
//!
//! * **CHECKPOINT** — wait for the current `GEMM_OP` to commit, then DMA the
//!   live output activations to DRAM and switch. Moderate preemption latency
//!   (microseconds), no lost work.
//! * **KILL** — terminate the running task immediately without saving its
//!   context. Zero preemption latency, but everything executed so far is
//!   wasted (the task restarts from scratch), hurting system throughput.
//! * **DRAIN** — do not preempt at all; the candidate waits for the running
//!   task to finish its remaining network-wide computation. Zero preemption
//!   latency, potentially long waiting time.
//!
//! PREMA couples a preemptible NPU with a *dynamic* selection between
//! CHECKPOINT and DRAIN (Algorithm 3): when the running task is close to
//! finishing and the candidate is long, it is better for average turnaround
//! time to drain; otherwise checkpoint.

use serde::{Deserialize, Serialize};

use npu_sim::Cycles;

/// The three preemption mechanisms studied in Section IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PreemptionMechanism {
    /// Checkpoint the live context to DRAM, then switch.
    Checkpoint,
    /// Immediately terminate the running task; it restarts from scratch.
    Kill,
    /// Let the running task finish; the candidate waits.
    Drain,
}

impl PreemptionMechanism {
    /// All mechanisms, in the order the paper's figures present them.
    pub const ALL: [PreemptionMechanism; 3] = [
        PreemptionMechanism::Kill,
        PreemptionMechanism::Checkpoint,
        PreemptionMechanism::Drain,
    ];

    /// The name used in the paper's figures.
    pub fn paper_name(self) -> &'static str {
        match self {
            PreemptionMechanism::Checkpoint => "CHECKPOINT",
            PreemptionMechanism::Kill => "KILL",
            PreemptionMechanism::Drain => "DRAIN",
        }
    }

    /// Whether the mechanism actually takes the NPU away from the running
    /// task (DRAIN does not).
    pub fn displaces_running_task(self) -> bool {
        !matches!(self, PreemptionMechanism::Drain)
    }
}

impl std::fmt::Display for PreemptionMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Inputs to the dynamic mechanism selection: the predictor's view of the
/// running task and of the candidate chosen by the scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MechanismDecisionInputs {
    /// Estimated total execution time of the currently running task.
    pub current_estimated: Cycles,
    /// Cycles the running task has already executed.
    pub current_executed: Cycles,
    /// Estimated total execution time of the preempting candidate.
    pub candidate_estimated: Cycles,
    /// Cycles the candidate has already executed (non-zero if it was
    /// previously preempted).
    pub candidate_executed: Cycles,
}

/// Algorithm 3: dynamic preemption mechanism selection.
///
/// Computes the relative degradation each task would suffer — the candidate's
/// remaining time scaled by the current task's estimated length, and vice
/// versa — and drains when interrupting the (nearly finished) current task
/// would hurt average turnaround more than making the candidate wait.
pub fn select_mechanism(inputs: MechanismDecisionInputs) -> PreemptionMechanism {
    let current_remaining = inputs.current_estimated - inputs.current_executed;
    let candidate_remaining = inputs.candidate_estimated - inputs.candidate_executed;

    // Degradation the *current* task would experience if preempted: it must
    // wait for the candidate's remaining work, relative to its own length.
    let degradation_current =
        candidate_remaining.get() as f64 / inputs.current_estimated.get().max(1) as f64;
    // Degradation the *candidate* would experience if it waits for the
    // current task to drain, relative to its own length.
    let degradation_candidate =
        current_remaining.get() as f64 / inputs.candidate_estimated.get().max(1) as f64;

    if degradation_current > degradation_candidate {
        PreemptionMechanism::Drain
    } else {
        PreemptionMechanism::Checkpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(
        current_estimated: u64,
        current_executed: u64,
        candidate_estimated: u64,
        candidate_executed: u64,
    ) -> MechanismDecisionInputs {
        MechanismDecisionInputs {
            current_estimated: Cycles::new(current_estimated),
            current_executed: Cycles::new(current_executed),
            candidate_estimated: Cycles::new(candidate_estimated),
            candidate_executed: Cycles::new(candidate_executed),
        }
    }

    #[test]
    fn nearly_finished_current_task_is_drained() {
        // Current task is 95% done; candidate is long. Draining barely hurts
        // the candidate, while preempting would stall the current task for the
        // candidate's entire (long) execution.
        let decision = select_mechanism(inputs(1_000_000, 950_000, 2_000_000, 0));
        assert_eq!(decision, PreemptionMechanism::Drain);
    }

    #[test]
    fn long_remaining_current_task_is_checkpointed() {
        // Current task has barely started and the candidate is short: preempt.
        let decision = select_mechanism(inputs(2_000_000, 100_000, 300_000, 0));
        assert_eq!(decision, PreemptionMechanism::Checkpoint);
    }

    #[test]
    fn equal_degradation_prefers_checkpoint() {
        // Symmetric situation: identical tasks, same progress. The tie breaks
        // toward preemption (the candidate has waited, the policy chose it).
        let decision = select_mechanism(inputs(1_000_000, 500_000, 1_000_000, 500_000));
        assert_eq!(decision, PreemptionMechanism::Checkpoint);
    }

    #[test]
    fn partially_executed_candidate_counts_only_its_remaining_work() {
        // The candidate already did 90% of its work before being preempted, so
        // letting it in costs the current task very little.
        let decision = select_mechanism(inputs(1_000_000, 100_000, 1_000_000, 900_000));
        assert_eq!(decision, PreemptionMechanism::Checkpoint);
        // Conversely, a current task at 90% with a fresh equal-length candidate
        // should drain.
        let decision = select_mechanism(inputs(1_000_000, 900_000, 1_000_000, 0));
        assert_eq!(decision, PreemptionMechanism::Drain);
    }

    #[test]
    fn zero_estimates_do_not_panic() {
        let decision = select_mechanism(inputs(0, 0, 0, 0));
        assert_eq!(decision, PreemptionMechanism::Checkpoint);
    }

    #[test]
    fn mechanism_metadata() {
        assert_eq!(PreemptionMechanism::ALL.len(), 3);
        assert!(PreemptionMechanism::Checkpoint.displaces_running_task());
        assert!(PreemptionMechanism::Kill.displaces_running_task());
        assert!(!PreemptionMechanism::Drain.displaces_running_task());
        assert_eq!(PreemptionMechanism::Kill.to_string(), "KILL");
    }
}
