//! The inference task context table (Figure 4 of the PREMA paper).
//!
//! The preemption module inside the NPU tracks, per co-located task: its ID,
//! priority, accumulated tokens, how long it has executed, how long it has
//! waited, its estimated total execution time, and its lifecycle state. The
//! PREMA scheduling policy (Algorithm 2) and the dynamic mechanism selection
//! (Algorithm 3) both read and update these entries.
//!
//! Section VI-F sizes the hardware cost of the table: seven 64-bit fields per
//! entry (448 bits), i.e. well under a kilobyte of SRAM even for 16
//! co-located tasks.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_sim::Cycles;

use crate::task::{Priority, TaskId, TaskState};

/// Number of 64-bit fields per context-table entry (Section VI-F).
pub const FIELDS_PER_ENTRY: u64 = 7;
/// Bits per context-table field.
pub const BITS_PER_FIELD: u64 = 64;

/// One entry of the inference task context table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextEntry {
    /// The task this entry describes.
    pub task_id: TaskId,
    /// The task's user-defined priority.
    pub priority: Priority,
    /// Accumulated scheduling tokens (Algorithm 2).
    pub tokens: f64,
    /// Cycles the task has executed so far.
    pub executed: Cycles,
    /// Cycles the task has waited in the ready queue so far.
    pub waited: Cycles,
    /// The predictor's estimate of the task's total execution time.
    pub estimated: Cycles,
    /// Lifecycle state.
    pub state: TaskState,
}

impl ContextEntry {
    /// Creates a fresh entry for a newly dispatched task. Its initial token
    /// count is the priority's grant (Algorithm 2, line 3).
    pub fn new(task_id: TaskId, priority: Priority, estimated: Cycles) -> Self {
        ContextEntry {
            task_id,
            priority,
            tokens: priority.token_grant(),
            executed: Cycles::ZERO,
            waited: Cycles::ZERO,
            estimated,
            state: TaskState::Ready,
        }
    }

    /// The task's estimated remaining execution time.
    pub fn estimated_remaining(&self) -> Cycles {
        self.estimated - self.executed
    }
}

/// The context table: one entry per co-located inference task.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ContextTable {
    entries: BTreeMap<TaskId, ContextEntry>,
}

impl ContextTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ContextTable::default()
    }

    /// Number of tracked tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or replaces) the entry for a task and returns the previous
    /// entry if one existed.
    pub fn insert(&mut self, entry: ContextEntry) -> Option<ContextEntry> {
        self.entries.insert(entry.task_id, entry)
    }

    /// Removes a task's entry (when the task completes and its results are
    /// returned to the CPU).
    pub fn remove(&mut self, id: TaskId) -> Option<ContextEntry> {
        self.entries.remove(&id)
    }

    /// The entry for `id`, if tracked.
    pub fn get(&self, id: TaskId) -> Option<&ContextEntry> {
        self.entries.get(&id)
    }

    /// Mutable access to the entry for `id`, if tracked.
    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut ContextEntry> {
        self.entries.get_mut(&id)
    }

    /// Iterates over all entries in task-ID order.
    pub fn iter(&self) -> impl Iterator<Item = &ContextEntry> {
        self.entries.values()
    }

    /// The entries currently in the ready queue (dispatched, not running,
    /// not completed).
    pub fn ready_entries(&self) -> impl Iterator<Item = &ContextEntry> {
        self.entries
            .values()
            .filter(|e| matches!(e.state, TaskState::Ready | TaskState::Checkpointed))
    }

    /// Size in bits of the SRAM structure needed to track `task_slots`
    /// co-located tasks (Section VI-F: 448 bits per task).
    pub fn sram_bits_for(task_slots: u64) -> u64 {
        task_slots * FIELDS_PER_ENTRY * BITS_PER_FIELD
    }

    /// Size in bits for the tasks currently tracked.
    pub fn sram_bits(&self) -> u64 {
        Self::sram_bits_for(self.entries.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, priority: Priority) -> ContextEntry {
        ContextEntry::new(TaskId(id), priority, Cycles::new(1_000_000))
    }

    #[test]
    fn new_entry_starts_with_priority_grant_and_ready_state() {
        let e = entry(1, Priority::High);
        assert_eq!(e.tokens, 9.0);
        assert_eq!(e.state, TaskState::Ready);
        assert_eq!(e.executed, Cycles::ZERO);
        assert_eq!(e.waited, Cycles::ZERO);
        assert_eq!(e.estimated_remaining(), Cycles::new(1_000_000));
    }

    #[test]
    fn estimated_remaining_shrinks_with_execution() {
        let mut e = entry(1, Priority::Low);
        e.executed = Cycles::new(400_000);
        assert_eq!(e.estimated_remaining(), Cycles::new(600_000));
        e.executed = Cycles::new(2_000_000);
        assert_eq!(e.estimated_remaining(), Cycles::ZERO);
    }

    #[test]
    fn table_insert_get_remove() {
        let mut table = ContextTable::new();
        assert!(table.is_empty());
        assert!(table.insert(entry(1, Priority::Low)).is_none());
        assert!(table.insert(entry(2, Priority::High)).is_none());
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(TaskId(2)).unwrap().priority, Priority::High);
        table.get_mut(TaskId(1)).unwrap().state = TaskState::Running;
        assert_eq!(table.get(TaskId(1)).unwrap().state, TaskState::Running);
        assert!(table.remove(TaskId(1)).is_some());
        assert!(table.get(TaskId(1)).is_none());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn ready_entries_exclude_running_and_completed() {
        let mut table = ContextTable::new();
        table.insert(entry(1, Priority::Low));
        table.insert(entry(2, Priority::Low));
        table.insert(entry(3, Priority::Low));
        table.get_mut(TaskId(1)).unwrap().state = TaskState::Running;
        table.get_mut(TaskId(2)).unwrap().state = TaskState::Checkpointed;
        table.get_mut(TaskId(3)).unwrap().state = TaskState::Completed;
        let ready: Vec<_> = table.ready_entries().map(|e| e.task_id).collect();
        assert_eq!(ready, vec![TaskId(2)]);
    }

    #[test]
    fn sram_cost_matches_section_vi_f() {
        // 448 bits per task; 16 co-located tasks need 7168 bits (< 1 KB).
        assert_eq!(ContextTable::sram_bits_for(1), 448);
        assert_eq!(ContextTable::sram_bits_for(16), 448 * 16);
        let mut table = ContextTable::new();
        table.insert(entry(1, Priority::Low));
        table.insert(entry(2, Priority::Low));
        assert_eq!(table.sram_bits(), 896);
    }

    #[test]
    fn iteration_is_in_task_id_order() {
        let mut table = ContextTable::new();
        table.insert(entry(5, Priority::Low));
        table.insert(entry(1, Priority::Low));
        table.insert(entry(3, Priority::Low));
        let ids: Vec<_> = table.iter().map(|e| e.task_id.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}
