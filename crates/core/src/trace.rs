//! Zero-cost-when-disabled engine tracing: the flight-recorder substrate.
//!
//! Every scheduling decision the engine makes — wakeups with the candidate
//! scores the policy compared, dispatches with their restore price,
//! preemptions with the checkpointed bytes, event-horizon skips, the whole
//! closed-loop surface (inject / revoke / salvage / stall / clock scale) —
//! can be streamed to a [`TraceSink`]. The sink is a *monomorphized* type
//! parameter of [`crate::SimSession`] whose default, [`NullSink`], carries
//! `ENABLED = false`: every emission site is guarded by the associated
//! constant, so with the default sink the compiler removes the tracing code
//! entirely and the engine is bit-identical (and byte-identical in its
//! outcome digests) to the pre-tracing build.
//!
//! The invariant tracing must uphold: **a sink observes, it never
//! perturbs**. Attaching any sink must produce a [`crate::SimOutcome`]
//! bit-identical to the untraced run — the emission sites only read state,
//! and the chaos/property suites pin this by running the same driving
//! traced and untraced.
//!
//! Events are `Copy` and allocation-free: per-candidate scores are captured
//! into a fixed-width [`CandidateSet`] (the first
//! [`MAX_TRACE_CANDIDATES`] candidates inline plus the true total), so a
//! bounded ring of events never chases heap pointers.

use npu_sim::Cycles;

use crate::policy::TaskView;
use crate::preemption::PreemptionMechanism;
use crate::task::{Priority, TaskId};

/// How many per-candidate scores a [`CandidateSet`] stores inline. Wakeups
/// with more candidates record the first four in view order (waiting set in
/// task-id order, then the running task) plus the true total.
pub const MAX_TRACE_CANDIDATES: usize = 4;

/// One candidate's standing at a scheduler wakeup: the inputs the token /
/// priority policies actually compare.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateScore {
    /// The candidate task.
    pub id: TaskId,
    /// Its user priority.
    pub priority: Priority,
    /// Its accumulated scheduling tokens at the decision instant.
    pub tokens: f64,
    /// Whether it was the task already holding the NPU.
    pub is_running: bool,
}

impl CandidateScore {
    fn of(view: &TaskView) -> Self {
        CandidateScore {
            id: view.id,
            priority: view.priority,
            tokens: view.tokens,
            is_running: view.is_running,
        }
    }
}

/// A fixed-width capture of the candidate scores a wakeup compared: the
/// first [`MAX_TRACE_CANDIDATES`] in view order plus the true total, so the
/// event stays `Copy` no matter how deep the ready queue is.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CandidateSet {
    scores: [Option<CandidateScore>; MAX_TRACE_CANDIDATES],
    total: u32,
}

impl CandidateSet {
    /// Captures the leading candidates of a wakeup's view slice.
    pub fn capture(views: &[TaskView]) -> Self {
        let mut scores = [None; MAX_TRACE_CANDIDATES];
        for (slot, view) in scores.iter_mut().zip(views) {
            *slot = Some(CandidateScore::of(view));
        }
        CandidateSet {
            scores,
            total: views.len() as u32,
        }
    }

    /// The recorded leading candidates, in view order.
    pub fn recorded(&self) -> impl Iterator<Item = &CandidateScore> {
        self.scores.iter().flatten()
    }

    /// How many candidates the wakeup actually compared (may exceed the
    /// number recorded inline).
    pub fn total(&self) -> usize {
        self.total as usize
    }
}

/// One engine trace event. Compact and `Copy`: a bounded ring of these is
/// allocation-free after construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A scheduler wakeup that consulted the policy: the decision and the
    /// candidate scores it compared.
    Wakeup {
        /// The wakeup's ordinal (1-based scheduler invocation count).
        invocation: u64,
        /// The task the policy selected.
        chosen: TaskId,
        /// The leading candidate scores compared.
        candidates: CandidateSet,
    },
    /// A task started (or resumed) on the NPU.
    Dispatch {
        /// The dispatched task.
        task: TaskId,
        /// Restore-DMA cycles charged before useful execution (zero unless
        /// the task resumed from a checkpoint with restore charging on).
        restore: Cycles,
    },
    /// A preemption began: `task` is displaced in favour of `by`.
    PreemptBegin {
        /// The task losing the NPU.
        task: TaskId,
        /// The task displacing it.
        by: TaskId,
        /// The mechanism the engine chose (CHECKPOINT or KILL).
        mechanism: PreemptionMechanism,
    },
    /// The preemption completed; the displaced task is parked.
    PreemptEnd {
        /// The task that lost the NPU.
        task: TaskId,
        /// Context bytes checkpointed (zero for KILL — progress discarded).
        checkpoint_bytes: u64,
        /// Checkpoint-DMA cycles charged (zero for KILL).
        checkpoint_cycles: Cycles,
    },
    /// The dynamic mechanism selection chose DRAIN: the contender waits for
    /// the runner's preemption point instead of displacing it.
    DrainDecision {
        /// The task keeping the NPU.
        running: TaskId,
        /// The contender the policy preferred.
        contender: TaskId,
    },
    /// A task completed.
    Complete {
        /// The completed task.
        task: TaskId,
    },
    /// The event-horizon fast path elided a span of provably inert quantum
    /// wakeups, batching their token grants.
    QuantumSkip {
        /// The clock before the jump.
        from: Cycles,
        /// The last skipped quantum boundary the clock jumped to.
        to: Cycles,
        /// Quantum wakeups elided.
        quanta: u64,
        /// Per-task token grants replayed in the batch.
        grants: u64,
    },
    /// A task was injected into the paused session.
    Inject {
        /// The injected task.
        task: TaskId,
        /// Whether it resumed from a salvaged checkpoint manifest.
        salvaged: bool,
        /// The checkpoint cursor it re-entered with (zero for fresh work).
        resume_executed: Cycles,
    },
    /// A never-started task was handed back (stolen or shed).
    Revoke {
        /// The revoked task.
        task: TaskId,
    },
    /// A resident task was drained off the session as a salvage manifest
    /// (node crash, or a voluntary checkpoint-out for migration).
    Salvage {
        /// The salvaged task.
        task: TaskId,
        /// Its last commit point (executed cycles the manifest resumes from).
        resume_executed: Cycles,
        /// The live context bytes at that commit point.
        checkpoint_bytes: u64,
    },
    /// The node's clock scale changed (degrade window edge).
    ClockScale {
        /// Plan-progress cycles per...
        num: u32,
        /// ...wall cycles: the new `num / den` scale.
        den: u32,
    },
    /// The node was stalled (fault window): no progress before `until`.
    Stall {
        /// The instant the stall ends.
        until: Cycles,
    },
}

/// A destination for engine trace events.
///
/// The engine guards every emission with `S::ENABLED`, so a sink whose
/// constant is `false` (the default [`NullSink`]) compiles to nothing. A
/// sink must only *observe*: implementations must not feed anything back
/// into the engine, so traced and untraced runs stay bit-identical.
pub trait TraceSink: std::fmt::Debug {
    /// Whether emission sites are compiled in for this sink.
    const ENABLED: bool = true;

    /// Records one event at engine time `now`.
    fn record(&mut self, now: Cycles, event: TraceEvent);
}

/// The default sink: tracing disabled, every emission site compiled away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _now: Cycles, _event: TraceEvent) {}
}

/// The simplest real sink: an unbounded in-memory event log, for tests and
/// ad-hoc inspection.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The recorded `(time, event)` pairs, in emission order.
    pub events: Vec<(Cycles, TraceEvent)>,
}

impl TraceSink for VecSink {
    fn record(&mut self, now: Cycles, event: TraceEvent) {
        self.events.push((now, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u64, tokens: f64) -> TaskView {
        TaskView {
            id: TaskId(id),
            priority: Priority::Medium,
            arrival: Cycles::ZERO,
            tokens,
            estimated_total: Cycles::new(100),
            executed: Cycles::ZERO,
            waited: Cycles::ZERO,
            last_scheduled: None,
            is_running: false,
        }
    }

    #[test]
    fn candidate_set_truncates_but_keeps_the_true_total() {
        let views: Vec<TaskView> = (0..7).map(|i| view(i, i as f64)).collect();
        let set = CandidateSet::capture(&views);
        assert_eq!(set.total(), 7);
        let recorded: Vec<u64> = set.recorded().map(|c| c.id.0).collect();
        assert_eq!(recorded, vec![0, 1, 2, 3]);
        let small = CandidateSet::capture(&views[..2]);
        assert_eq!(small.total(), 2);
        assert_eq!(small.recorded().count(), 2);
    }

    #[test]
    fn null_sink_is_disabled_and_vec_sink_records() {
        const { assert!(!NullSink::ENABLED) };
        let mut sink = VecSink::default();
        const { assert!(<VecSink as TraceSink>::ENABLED) };
        sink.record(Cycles::new(5), TraceEvent::Complete { task: TaskId(1) });
        assert_eq!(sink.events.len(), 1);
        let mut null = NullSink;
        null.record(Cycles::ZERO, TraceEvent::Revoke { task: TaskId(2) });
    }
}
