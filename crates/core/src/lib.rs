//! PREMA: preemptible-NPU multi-task scheduling.
//!
//! This crate is the paper's primary contribution rebuilt as a library:
//!
//! * **Preemption mechanisms** ([`preemption`]) — CHECKPOINT, KILL and DRAIN
//!   (Section IV), plus the dynamic mechanism selection of Algorithm 3.
//! * **The inference task context table** ([`context_table`], Figure 4) and
//!   its SRAM cost model (Section VI-F).
//! * **Scheduling policies** ([`policy`]) — NP-FCFS, RRB, HPF, TOKEN, SJF and
//!   the token-based predictive PREMA policy (Algorithm 2).
//! * **The multi-task NPU simulation engine** ([`engine`]) — a discrete-event
//!   simulator that executes compiled [`plan::ExecutionPlan`]s under a
//!   [`config::SchedulerConfig`], producing per-task records from which
//!   ANTT / STP / fairness / SLA metrics are computed.
//!
//! # Example: PREMA vs. the NP-FCFS baseline
//!
//! ```
//! use npu_sim::NpuConfig;
//! use dnn_models::ModelKind;
//! use prema_core::{NpuSimulator, SchedulerConfig, TaskRequest, TaskId, Priority};
//! use npu_sim::Cycles;
//!
//! let npu = NpuConfig::paper_default();
//! let requests = vec![
//!     TaskRequest::new(TaskId(0), ModelKind::CnnVggNet),
//!     TaskRequest::new(TaskId(1), ModelKind::CnnAlexNet)
//!         .with_priority(Priority::High)
//!         .with_arrival(Cycles::new(100_000)),
//! ];
//!
//! let baseline = NpuSimulator::new(npu.clone(), SchedulerConfig::np_fcfs());
//! let prema = NpuSimulator::new(npu, SchedulerConfig::paper_default());
//! let prepared = baseline.prepare(&requests);
//!
//! let base = baseline.run(&prepared);
//! let ours = prema.run(&prepared);
//! assert!(ours.antt() <= base.antt() + 1e-9);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod context_table;
pub mod engine;
pub mod plan;
pub mod policy;
pub mod preemption;
pub mod task;
pub mod trace;

pub use config::{PolicyKind, PreemptionMode, SchedulerConfig};
pub use context_table::{ContextEntry, ContextTable};
pub use engine::{
    DispatchSignals, EngineError, NpuSimulator, OutcomeSummary, PreparedTask, ResidentTask,
    SalvagedTask, SimOutcome, SimSession, StepOutcome, TaskRecord,
};
pub use plan::{ExecutionPlan, ProgressCursor};
pub use policy::{SchedulingPolicy, TaskView};
pub use preemption::PreemptionMechanism;
pub use task::{Priority, TaskId, TaskRequest, TaskState};
pub use trace::{
    CandidateScore, CandidateSet, NullSink, TraceEvent, TraceSink, VecSink, MAX_TRACE_CANDIDATES,
};
