//! The multi-task NPU simulation engine.
//!
//! [`NpuSimulator`] drives a set of prepared inference tasks through one NPU
//! under a [`SchedulerConfig`]: it admits arrivals, wakes the scheduler on
//! the three events of Section V-C (task arrival, task completion, expiry of
//! the scheduling period), asks the configured policy for the next task,
//! applies the configured preemption mode (including the Algorithm 3 dynamic
//! mechanism selection), and charges checkpoint / restore latencies through
//! the `npu-sim` DMA model.
//!
//! The engine works at preemption-interval granularity: a running task's
//! progress is tracked with a [`ProgressCursor`] over its [`ExecutionPlan`],
//! and CHECKPOINT preemptions take effect at the next interval boundary, as
//! on the real hardware (`GEMM_OP` commit points).
//!
//! # The event horizon
//!
//! Waking the scheduler at every expired quantum is faithful but wasteful:
//! most wakeups provably cannot change the schedule. [`NpuSimulator::run`]
//! therefore computes, at every execution step, the *event horizon* — the
//! earliest moment at which a scheduling decision could actually change
//! (the running task's completion or the next task arrival) — and, when
//! every quantum wakeup before that horizon is provably inert, jumps `now`
//! straight to the horizon. Skipped wakeups are fully accounted for: the
//! invocation counter advances by the number of elided quanta and their
//! token grants are replayed in one batched, bit-identical
//! `grant_tokens_batch` call, so the produced [`SimOutcome`] — per-task
//! records, makespan, even the scheduler-invocation count — is exactly what
//! stepping every quantum produces. A wakeup is provably inert when a task
//! is running and either (a) the waiting set is empty, so there is no
//! alternative candidate (and the paper's policies are pure functions of
//! the task views — see [`SchedulingPolicy::select`]'s contract), or (b)
//! the preemption mode is non-preemptive, so the scheduler would not be
//! consulted while a task runs anyway. The step-every-quantum loop stays
//! in-tree as [`NpuSimulator::run_reference`]; `tests/determinism.rs`
//! asserts the two paths are bit-identical across every policy and
//! preemption mode.
//!
//! # Suspend / resume
//!
//! The event loop is factored into a state machine, [`SimSession`], that can
//! be paused at an arbitrary *horizon* and resumed later:
//! [`SimSession::run_until`] simulates until the clock reaches the horizon
//! and returns [`StepOutcome::Paused`] (or [`StepOutcome::Drained`] once
//! every admitted task has completed). [`NpuSimulator::run`] is literally
//! `session(..) + run_until(Cycles::MAX) + finish()`, and pausing is pure
//! suspension: composing `run_until` over *any* ascending sequence of
//! horizons produces a [`SimOutcome`] bit-identical to the one-shot run —
//! per-task records, makespan, even the scheduler-invocation count
//! (`tests/property_tests.rs` pins this with random horizon sequences
//! across every policy and preemption mode).
//!
//! A paused session also exposes what a cluster front-end could observe on
//! a real accelerator node — the live queue depth, the predictor's remaining
//! work over resident tasks, the next completion bound — and accepts *new*
//! tasks mid-flight ([`SimSession::inject`]) or gives not-yet-started ones
//! back ([`SimSession::revoke`]). This is what turns N independent
//! simulators into a closed-loop cluster: see `prema_cluster::online`.
//!
//! [`SchedulingPolicy::select`]: crate::policy::SchedulingPolicy::select

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dnn_models::ModelKind;
use npu_sim::{CheckpointModel, Cycles, NpuConfig};

use crate::config::{PreemptionMode, SchedulerConfig};
use crate::plan::{ExecutionPlan, ProgressCursor};
use crate::policy::{make_policy, TaskView};
use crate::preemption::{select_mechanism, MechanismDecisionInputs, PreemptionMechanism};
use crate::task::{Priority, TaskId, TaskRequest, TaskState};
use crate::trace::{CandidateSet, NullSink, TraceEvent, TraceSink};

/// A one-read bundle of the per-node signals a cluster dispatch index keys
/// on. Every field is O(1) to produce (the engine maintains the totals
/// incrementally — see [`SimSession::predicted_remaining_work`] and
/// [`SimSession::predicted_blocking_work`]), so an index refresh costs one
/// call instead of five accessor round-trips, and the bundle documents
/// exactly which session state a dispatch index is allowed to depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchSignals {
    /// The session clock at the read (the node-local "now").
    pub now: Cycles,
    /// Live queue depth: resident tasks not yet finished.
    pub queue_depth: usize,
    /// Total predicted remaining work over resident tasks.
    pub remaining_work: Cycles,
    /// Predicted blocking work per arrival priority, indexed by
    /// [`Priority::index`]: the work the node would run before a newcomer
    /// of that priority (suffix sums of the per-priority totals).
    pub blocking_work: [Cycles; Priority::ALL.len()],
    /// The node is inside a fault stall (crash downtime or freeze): the
    /// clock is parked and nothing progresses until the window ends.
    pub stalled: bool,
    /// The node's clock is scaled below unit speed (degrade window).
    pub scaled: bool,
}

/// A request whose execution plan has been compiled for a specific NPU
/// configuration. Plans are shared via [`Arc`] so the same workload can be
/// replayed under many scheduler configurations without recompiling.
#[derive(Debug, Clone)]
pub struct PreparedTask {
    /// The original request.
    pub request: TaskRequest,
    /// The compiled execution plan (at the request's *actual* sequence
    /// lengths).
    pub plan: Arc<ExecutionPlan>,
}

impl PreparedTask {
    /// Compiles the request's plan for the given NPU configuration,
    /// sharing identical plans through the process-wide
    /// [`plan_cache`](crate::plan::plan_cache).
    pub fn prepare(request: TaskRequest, npu: &NpuConfig) -> Self {
        let plan = ExecutionPlan::compile_cached(request.model, request.batch, request.seq, npu);
        PreparedTask { request, plan }
    }

    /// Compiles the request's plan from scratch, bypassing the plan cache.
    /// The compiled timing is identical to [`PreparedTask::prepare`]; this
    /// exists for baseline measurements and cache-validation tests.
    pub fn prepare_uncached(request: TaskRequest, npu: &NpuConfig) -> Self {
        let plan = ExecutionPlan::compile_shared(request.model, request.batch, request.seq, npu);
        PreparedTask { request, plan }
    }

    /// The task's isolated (uninterrupted) execution time.
    pub fn isolated_cycles(&self) -> Cycles {
        self.plan.total_cycles()
    }

    /// The estimate the scheduler will use: the predictor-provided estimate
    /// if present, otherwise the exact plan length (oracle estimates).
    pub fn estimated_cycles(&self) -> Cycles {
        self.request
            .estimated_cycles
            .unwrap_or_else(|| self.plan.total_cycles())
    }
}

/// Per-task results of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task identifier.
    pub id: TaskId,
    /// The model the task ran.
    pub model: ModelKind,
    /// Batch size.
    pub batch: u64,
    /// Priority level.
    pub priority: Priority,
    /// Dispatch time.
    pub arrival: Cycles,
    /// When the task first started executing on the NPU.
    pub first_start: Cycles,
    /// When the task completed.
    pub completion: Cycles,
    /// The task's isolated execution time (`C_single`).
    pub isolated_cycles: Cycles,
    /// The estimate the scheduler used.
    pub estimated_cycles: Cycles,
    /// Number of times the task was preempted (CHECKPOINT or KILL).
    pub preemption_count: u64,
    /// Number of KILL restarts the task suffered.
    pub kill_restarts: u64,
    /// Total cycles spent checkpointing this task's context.
    pub checkpoint_overhead: Cycles,
    /// Total cycles spent restoring this task's context.
    pub restore_overhead: Cycles,
    /// The largest context state this task ever checkpointed, in bytes.
    pub max_checkpoint_bytes: u64,
}

impl TaskRecord {
    /// Turnaround time under multi-tasking (`C_multi`): dispatch to
    /// completion.
    pub fn turnaround(&self) -> Cycles {
        self.completion - self.arrival
    }

    /// Time the task waited before first receiving the NPU.
    pub fn waiting(&self) -> Cycles {
        self.first_start - self.arrival
    }

    /// Normalized turnaround time (Equation 1).
    pub fn ntt(&self) -> f64 {
        self.turnaround().ratio(self.isolated_cycles)
    }

    /// The task's progress relative to isolated execution (`C_single/C_multi`).
    pub fn progress(&self) -> f64 {
        self.isolated_cycles.ratio(self.turnaround())
    }

    /// Average preemption latency experienced per preemption, if any.
    pub fn mean_preemption_latency(&self) -> Option<Cycles> {
        if self.preemption_count == 0 {
            None
        } else {
            Some(self.checkpoint_overhead / self.preemption_count)
        }
    }
}

/// Aggregate results of one simulation.
///
/// # Equality
///
/// `PartialEq` compares the *semantic* outcome — records, makespan and the
/// decision counters — and deliberately excludes the engine-diagnostic
/// fields ([`SimOutcome::quanta_skipped`],
/// [`SimOutcome::replayed_token_grants`]): those describe *how* the
/// event-horizon fast path got there, and are the only fields on which the
/// fast engine legitimately differs from the step-every-quantum reference
/// it must otherwise match bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Per-task records, in task-ID order.
    pub records: Vec<TaskRecord>,
    /// Completion time of the last task.
    pub makespan: Cycles,
    /// Number of scheduler wakeups.
    pub scheduler_invocations: u64,
    /// Number of preemptions performed with CHECKPOINT.
    pub checkpoint_preemptions: u64,
    /// Number of preemptions performed with KILL.
    pub kill_preemptions: u64,
    /// Number of times the dynamic mechanism selection chose DRAIN.
    pub drain_decisions: u64,
    /// Quantum wakeups the event-horizon fast path elided (diagnostic;
    /// always zero on the reference engine, excluded from equality).
    pub quanta_skipped: u64,
    /// Per-task token grants replayed in fast-forward batches — each
    /// skipped period's grant to each then-waiting task (diagnostic;
    /// always zero on the reference engine, excluded from equality).
    pub replayed_token_grants: u64,
}

impl PartialEq for SimOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
            && self.makespan == other.makespan
            && self.scheduler_invocations == other.scheduler_invocations
            && self.checkpoint_preemptions == other.checkpoint_preemptions
            && self.kill_preemptions == other.kill_preemptions
            && self.drain_decisions == other.drain_decisions
    }
}

/// One-pass aggregate of a [`SimOutcome`]'s per-task records.
///
/// Computing [`SimOutcome::antt`] and [`SimOutcome::stp`] separately walks
/// `records` twice; callers that need more than one aggregate (the bench
/// figure modules, the suite, the throughput report) take a single
/// [`SimOutcome::summary`] pass instead.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OutcomeSummary {
    /// Number of per-task records aggregated.
    pub task_count: usize,
    /// Average normalized turnaround time (Equation 1 averaged over tasks).
    pub antt: f64,
    /// System throughput: sum of per-task progress.
    pub stp: f64,
    /// Total preemptions suffered across all tasks (CHECKPOINT or KILL).
    pub preemptions: u64,
    /// Total KILL restarts suffered across all tasks.
    pub kill_restarts: u64,
    /// Quantum wakeups the event-horizon fast path elided (zero on the
    /// reference engine).
    pub quanta_skipped: u64,
    /// Per-task token grants replayed in fast-forward batches (zero on the
    /// reference engine).
    pub replayed_token_grants: u64,
}

impl SimOutcome {
    /// The record for `id`, if the task was part of the run.
    ///
    /// Engine-produced outcomes keep `records` id-sorted, so the lookup is
    /// a binary search. `records` is a public field, though, so an
    /// externally assembled (or re-sorted) outcome falls back to a linear
    /// scan rather than silently missing the record.
    pub fn record(&self, id: TaskId) -> Option<&TaskRecord> {
        match self.records.binary_search_by_key(&id, |r| r.id) {
            Ok(i) => Some(&self.records[i]),
            Err(_) => self.records.iter().find(|r| r.id == id),
        }
    }

    /// Aggregates the per-task records in a single pass.
    ///
    /// `summary().antt` and `summary().stp` accumulate in the same
    /// per-record order as [`SimOutcome::antt`] / [`SimOutcome::stp`], so
    /// the values are bit-identical to the two-pass accessors.
    pub fn summary(&self) -> OutcomeSummary {
        let mut ntt_sum = 0.0f64;
        let mut stp = 0.0f64;
        let mut preemptions = 0u64;
        let mut kill_restarts = 0u64;
        for record in &self.records {
            ntt_sum += record.ntt();
            stp += record.progress();
            preemptions += record.preemption_count;
            kill_restarts += record.kill_restarts;
        }
        let antt = if self.records.is_empty() {
            0.0
        } else {
            ntt_sum / self.records.len() as f64
        };
        OutcomeSummary {
            task_count: self.records.len(),
            antt,
            stp,
            preemptions,
            kill_restarts,
            quanta_skipped: self.quanta_skipped,
            replayed_token_grants: self.replayed_token_grants,
        }
    }

    /// Average normalized turnaround time across all tasks.
    pub fn antt(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(TaskRecord::ntt).sum::<f64>() / self.records.len() as f64
    }

    /// System throughput: sum of per-task progress.
    pub fn stp(&self) -> f64 {
        self.records.iter().map(TaskRecord::progress).sum()
    }
}

/// The per-task state the engine tracks while simulating.
#[derive(Debug)]
struct Runtime {
    prepared: PreparedTask,
    cursor: ProgressCursor,
    state: TaskState,
    arrived: bool,
    /// When the session's admission loop hands the task to the scheduler.
    /// Equals the request's arrival for ordinary tasks; salvage re-injection
    /// sets it to the recovery instant so a node whose clock lags the
    /// cluster's cannot run the task before it was actually re-admitted
    /// (the record still carries the original arrival).
    admit_at: Cycles,
    tokens: f64,
    /// Waiting time materialized at the task's last transition *out of* the
    /// waiting set. While the task is waiting, its effective waiting time is
    /// `waited + (total_wait - wait_baseline)` — see [`EngineState`].
    waited: Cycles,
    /// The engine's `total_wait` at the moment this task last entered the
    /// waiting set.
    wait_baseline: Cycles,
    waited_at_last_grant: Cycles,
    estimated: Cycles,
    first_start: Option<Cycles>,
    completion: Option<Cycles>,
    last_scheduled: Option<Cycles>,
    checkpointed_bytes: u64,
    needs_restore: bool,
    preemption_count: u64,
    kill_restarts: u64,
    checkpoint_overhead: Cycles,
    restore_overhead: Cycles,
    max_checkpoint_bytes: u64,
    /// Whether the task was handed back via [`SimSession::revoke`] before it
    /// ever started. Revoked tasks count as finished for the loop condition
    /// but produce no [`TaskRecord`].
    revoked: bool,
}

impl Runtime {
    fn new(prepared: PreparedTask) -> Self {
        let estimated = prepared.estimated_cycles();
        let tokens = prepared.request.priority.token_grant();
        let admit_at = prepared.request.arrival;
        Runtime {
            prepared,
            cursor: ProgressCursor::start(),
            state: TaskState::Ready,
            arrived: false,
            admit_at,
            tokens,
            waited: Cycles::ZERO,
            wait_baseline: Cycles::ZERO,
            waited_at_last_grant: Cycles::ZERO,
            estimated,
            first_start: None,
            completion: None,
            last_scheduled: None,
            checkpointed_bytes: 0,
            needs_restore: false,
            preemption_count: 0,
            kill_restarts: 0,
            checkpoint_overhead: Cycles::ZERO,
            restore_overhead: Cycles::ZERO,
            max_checkpoint_bytes: 0,
            revoked: false,
        }
    }

    fn id(&self) -> TaskId {
        self.prepared.request.id
    }

    /// The predictor's estimate of this task's remaining execution time,
    /// saturating at zero when the estimate undershoots the true length.
    fn remaining_estimate(&self) -> Cycles {
        self.estimated - self.cursor.executed()
    }

    fn is_waiting(&self) -> bool {
        self.arrived
            && !self.revoked
            && matches!(self.state, TaskState::Ready | TaskState::Checkpointed)
            && self.completion.is_none()
    }

    /// The task's waiting time as of `total_wait` (see [`EngineState`]).
    fn effective_waited(&self, total_wait: Cycles) -> Cycles {
        if self.is_waiting() {
            self.waited + (total_wait - self.wait_baseline)
        } else {
            self.waited
        }
    }

    fn view(&self, is_running: bool, total_wait: Cycles) -> TaskView {
        TaskView {
            id: self.prepared.request.id,
            priority: self.prepared.request.priority,
            arrival: self.prepared.request.arrival,
            tokens: self.tokens,
            estimated_total: self.estimated,
            executed: self.cursor.executed(),
            waited: self.effective_waited(total_wait),
            last_scheduled: self.last_scheduled,
            is_running,
        }
    }
}

/// Incrementally maintained scheduler state.
///
/// The naive event loop recounted completions, re-probed for waiting tasks
/// and rebuilt + re-sorted the policy's `TaskView` vector on every wakeup —
/// all O(n) scans. This struct keeps that state up to date at each
/// transition instead:
///
/// * `finished` — counter of tasks that are done with the engine (completed
///   or revoked), so the loop condition is O(1);
/// * `waiting` — the indices of schedulable tasks, kept sorted by task id,
///   updated by O(log n) binary-search insert/remove at the (rare) state
///   transitions;
/// * `total_wait` — a global waiting-time accumulator. Charging `dt` of
///   waiting to every waiting task is a single add; a task's own waiting
///   time is reconstructed as `waited + (total_wait - wait_baseline)`,
///   making wait accrual O(1) instead of O(n) per event;
/// * `id_index` — id-sorted (id, index) pairs, so resolving the policy's
///   chosen [`TaskId`] back to a runtime is a binary search;
/// * `views` — a reusable scratch buffer for the policy's task views, so
///   steady-state scheduling events allocate nothing;
/// * `remaining_work` / `remaining_by_priority` — running totals of the
///   predictor's remaining-work estimate over every live (not completed,
///   not revoked) task, per-task saturating exactly like the former
///   resident scans, updated at every cursor advance / reset and at
///   completion, injection and revocation — so the closed-loop accessors
///   [`SimSession::predicted_remaining_work`] and
///   [`SimSession::predicted_blocking_work`] are O(1);
/// * `steal_order` / `shed_order` / `revocable_work` — the never-started
///   (revocable) tasks kept in the work-stealing and load-shedding
///   preference orders, with their summed estimates, so a cluster
///   front-end's victim searches are O(1) peeks instead of resident scans;
/// * `state_version` — a monotone counter bumped at every transition that
///   can move the closed-loop observation surface (waiting-set entry/exit,
///   completion, injection, revocation). Between equal versions a paused
///   session either idles or executes one task continuously with no
///   checkpoint/restore stalls, which is what lets cluster-side caches
///   reuse derived per-node state (see `prema_cluster`).
#[derive(Debug)]
struct EngineState {
    runtimes: Vec<Runtime>,
    waiting: Vec<usize>,
    finished: usize,
    total_wait: Cycles,
    id_index: Vec<(TaskId, usize)>,
    views: Vec<TaskView>,
    remaining_work: Cycles,
    remaining_by_priority: [Cycles; Priority::ALL.len()],
    revocable_work: Cycles,
    steal_order: Vec<usize>,
    shed_order: Vec<usize>,
    /// The *true* (plan-cursor) remaining cycles of every live resident
    /// that is not currently running, sorted ascending. A non-running
    /// resident's plan remaining is constant, so entries change only at
    /// dispatch / preemption / completion / injection / revocation. The
    /// minimum feeds [`SimSession::completion_lower_bound`].
    static_remaining: Vec<(Cycles, TaskId)>,
    state_version: u64,
}

impl EngineState {
    fn new(tasks: &[PreparedTask]) -> Self {
        let runtimes: Vec<Runtime> = tasks.iter().cloned().map(Runtime::new).collect();
        let mut id_index: Vec<(TaskId, usize)> = runtimes
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id(), i))
            .collect();
        id_index.sort_unstable_by_key(|&(id, _)| id);
        let capacity = runtimes.len();
        let mut remaining_work = Cycles::ZERO;
        let mut remaining_by_priority = [Cycles::ZERO; Priority::ALL.len()];
        let mut revocable_work = Cycles::ZERO;
        for runtime in &runtimes {
            let priority = runtime.prepared.request.priority;
            remaining_work += runtime.estimated;
            remaining_by_priority[priority.index()] += runtime.estimated;
            revocable_work += runtime.estimated;
        }
        let mut static_remaining: Vec<(Cycles, TaskId)> = runtimes
            .iter()
            .map(|r| (r.prepared.plan.total_cycles(), r.id()))
            .collect();
        static_remaining.sort_unstable();
        let mut state = EngineState {
            runtimes,
            waiting: Vec::with_capacity(capacity),
            finished: 0,
            total_wait: Cycles::ZERO,
            id_index,
            views: Vec::with_capacity(capacity),
            remaining_work,
            remaining_by_priority,
            revocable_work,
            steal_order: (0..capacity).collect(),
            shed_order: (0..capacity).collect(),
            static_remaining,
            state_version: 0,
        };
        // Keys are indexed by *runtime index*, matching the indices stored
        // in the order vectors (whatever their initial permutation).
        let steal_keys: Vec<_> = (0..capacity).map(|i| state.steal_key(i)).collect();
        state.steal_order.sort_by_key(|&i| steal_keys[i]);
        let shed_keys: Vec<_> = (0..capacity).map(|i| state.shed_key(i)).collect();
        state.shed_order.sort_by_key(|&i| shed_keys[i]);
        state
    }

    /// The work-stealing preference key: a thief takes the revocable task
    /// with the largest remaining estimate (never-started, so the estimate
    /// itself), ties to the lowest id — the *last* entry of `steal_order`.
    fn steal_key(&self, idx: usize) -> (Cycles, std::cmp::Reverse<TaskId>) {
        let runtime = &self.runtimes[idx];
        (runtime.estimated, std::cmp::Reverse(runtime.id()))
    }

    /// The load-shedding preference key: lowest priority first, then the
    /// largest estimate, then the newest id — the *first* entry of
    /// `shed_order` sheds first.
    fn shed_key(
        &self,
        idx: usize,
    ) -> (
        Priority,
        std::cmp::Reverse<Cycles>,
        std::cmp::Reverse<TaskId>,
    ) {
        let runtime = &self.runtimes[idx];
        (
            runtime.prepared.request.priority,
            std::cmp::Reverse(runtime.estimated),
            std::cmp::Reverse(runtime.id()),
        )
    }

    /// Adds a never-started task to the revocable indexes.
    fn track_revocable(&mut self, idx: usize) {
        debug_assert!(self.runtimes[idx].first_start.is_none());
        self.revocable_work += self.runtimes[idx].estimated;
        let steal = self.steal_key(idx);
        let pos = self
            .steal_order
            .binary_search_by(|&i| self.steal_key(i).cmp(&steal))
            .expect_err("task is not already steal-tracked");
        self.steal_order.insert(pos, idx);
        let shed = self.shed_key(idx);
        let pos = self
            .shed_order
            .binary_search_by(|&i| self.shed_key(i).cmp(&shed))
            .expect_err("task is not already shed-tracked");
        self.shed_order.insert(pos, idx);
    }

    /// Removes a task from the revocable indexes: it is starting for the
    /// first time, or being revoked.
    fn untrack_revocable(&mut self, idx: usize) {
        self.revocable_work -= self.runtimes[idx].estimated;
        let steal = self.steal_key(idx);
        let pos = self
            .steal_order
            .binary_search_by(|&i| self.steal_key(i).cmp(&steal))
            .expect("task is steal-tracked");
        self.steal_order.remove(pos);
        let shed = self.shed_key(idx);
        let pos = self
            .shed_order
            .binary_search_by(|&i| self.shed_key(i).cmp(&shed))
            .expect("task is shed-tracked");
        self.shed_order.remove(pos);
    }

    /// The plan-cursor remaining cycles of runtime `idx`.
    fn plan_remaining(&self, idx: usize) -> Cycles {
        let runtime = &self.runtimes[idx];
        runtime.cursor.remaining(&runtime.prepared.plan)
    }

    /// Adds a non-running resident to the static-remaining index. Must be
    /// called when the task's cursor is at the position it will keep while
    /// off the NPU.
    fn static_insert(&mut self, idx: usize) {
        let key = (self.plan_remaining(idx), self.runtimes[idx].id());
        let pos = self
            .static_remaining
            .binary_search(&key)
            .expect_err("task is not already static-tracked");
        self.static_remaining.insert(pos, key);
    }

    /// Removes a resident from the static-remaining index (it is starting
    /// to run, completing while resident, or leaving the session).
    fn static_remove(&mut self, idx: usize) {
        let key = (self.plan_remaining(idx), self.runtimes[idx].id());
        let pos = self
            .static_remaining
            .binary_search(&key)
            .expect("task is static-tracked");
        self.static_remaining.remove(pos);
    }

    /// Advances `idx`'s progress cursor by at most `budget` cycles, keeping
    /// the predicted-work totals in sync with the task's live progress.
    /// Returns the cycles actually consumed.
    fn advance_cursor(&mut self, idx: usize, budget: Cycles) -> Cycles {
        let runtime = &mut self.runtimes[idx];
        // Split borrows: the cursor advances against the plan in place, no
        // Arc refcount round-trip on this per-event hot path.
        let Runtime {
            cursor,
            prepared,
            estimated,
            ..
        } = runtime;
        let before = *estimated - cursor.executed();
        let consumed = cursor.advance(&prepared.plan, budget);
        let freed = before - (*estimated - cursor.executed());
        let priority = prepared.request.priority;
        self.remaining_work -= freed;
        self.remaining_by_priority[priority.index()] -= freed;
        consumed
    }

    /// Resets `idx`'s progress cursor (KILL preemption), restoring the
    /// discarded progress to the predicted-work totals.
    fn reset_cursor(&mut self, idx: usize) {
        let runtime = &mut self.runtimes[idx];
        let regained = runtime.estimated - runtime.remaining_estimate();
        runtime.cursor.reset();
        let priority = runtime.prepared.request.priority;
        self.remaining_work += regained;
        self.remaining_by_priority[priority.index()] += regained;
    }

    fn len(&self) -> usize {
        self.runtimes.len()
    }

    /// Resolves a task id to its runtime index.
    fn index_of(&self, id: TaskId) -> usize {
        self.id_index
            .binary_search_by_key(&id, |&(id, _)| id)
            .map(|pos| self.id_index[pos].1)
            .expect("policy returned an unknown task id")
    }

    /// Charges `dt` of waiting time to every currently waiting task.
    fn accrue(&mut self, dt: Cycles) {
        self.total_wait += dt;
    }

    /// Adds `idx` to the waiting set. Must be called *after* the runtime's
    /// state satisfies `is_waiting`.
    fn enter_waiting(&mut self, idx: usize) {
        debug_assert!(self.runtimes[idx].is_waiting());
        self.state_version += 1;
        self.runtimes[idx].wait_baseline = self.total_wait;
        let id = self.runtimes[idx].id();
        let pos = self
            .waiting
            .binary_search_by_key(&id, |&i| self.runtimes[i].id())
            .expect_err("task is not already waiting");
        self.waiting.insert(pos, idx);
    }

    /// Removes `idx` from the waiting set, materializing its accrued
    /// waiting time. Must be called *before* the runtime's state changes.
    fn leave_waiting(&mut self, idx: usize) {
        debug_assert!(self.runtimes[idx].is_waiting());
        self.state_version += 1;
        let id = self.runtimes[idx].id();
        let pos = self
            .waiting
            .binary_search_by_key(&id, |&i| self.runtimes[i].id())
            .expect("task is in the waiting set");
        self.waiting.remove(pos);
        let runtime = &mut self.runtimes[idx];
        runtime.waited += self.total_wait - runtime.wait_baseline;
    }

    /// Marks the running task `idx` complete at `now`, dropping any leftover
    /// estimate (a predictor overestimate) from the predicted-work totals.
    fn complete(&mut self, idx: usize, now: Cycles) {
        self.state_version += 1;
        let runtime = &mut self.runtimes[idx];
        debug_assert!(runtime.completion.is_none());
        runtime.completion = Some(now);
        runtime.state = TaskState::Completed;
        let leftover = runtime.remaining_estimate();
        let priority = runtime.prepared.request.priority;
        self.remaining_work -= leftover;
        self.remaining_by_priority[priority.index()] -= leftover;
        self.finished += 1;
    }

    /// Grants additional tokens to every waiting task, proportional to its
    /// priority and the normalized slowdown it accumulated since the last
    /// grant (Algorithm 2, line 7; the formula lives in
    /// [`crate::policy::period_token_grant`]).
    fn grant_tokens(&mut self, token_scale: f64) {
        let total_wait = self.total_wait;
        for &idx in &self.waiting {
            let runtime = &mut self.runtimes[idx];
            let effective = runtime.effective_waited(total_wait);
            let newly_waited = effective - runtime.waited_at_last_grant;
            if newly_waited.is_zero() {
                continue;
            }
            runtime.tokens += crate::policy::period_token_grant(
                runtime.prepared.request.priority,
                token_scale,
                newly_waited,
                runtime.estimated,
            );
            runtime.waited_at_last_grant = effective;
        }
    }

    /// Replays the token grants of `periods` consecutive scheduling-period
    /// wakeups in one call. The last `periods - 1` wakeups each grant a full
    /// `quantum` of newly-waited time; the first wakeup grants whatever each
    /// task accumulated since its previous grant (derived per task from its
    /// own `waited_at_last_grant`, so no alignment assumption is needed).
    ///
    /// Bit-identity with stepping: a task's token count depends only on the
    /// sequence of its *own* grant additions, and this performs the same
    /// per-period additions (same `f64` values, same order) per task as
    /// `periods` separate [`EngineState::grant_tokens`] calls would — it
    /// merely iterates per task instead of per period. Must be called
    /// *after* the skipped periods' waiting time has been accrued into
    /// `total_wait` (i.e. with `total_wait` as of the last skipped wakeup).
    fn grant_tokens_batch(&mut self, token_scale: f64, quantum: Cycles, periods: u64) {
        debug_assert!(periods >= 1);
        let total_wait = self.total_wait;
        let tail = quantum * (periods - 1);
        for &idx in &self.waiting {
            let runtime = &mut self.runtimes[idx];
            let priority = runtime.prepared.request.priority;
            let effective = runtime.effective_waited(total_wait);
            // What the first skipped wakeup would have seen as newly waited.
            let first_newly = effective - runtime.waited_at_last_grant - tail;
            if !first_newly.is_zero() {
                runtime.tokens += crate::policy::period_token_grant(
                    priority,
                    token_scale,
                    first_newly,
                    runtime.estimated,
                );
            }
            if periods > 1 {
                let per_period = crate::policy::period_token_grant(
                    priority,
                    token_scale,
                    quantum,
                    runtime.estimated,
                );
                for _ in 1..periods {
                    runtime.tokens += per_period;
                }
            }
            runtime.waited_at_last_grant = effective;
        }
    }

    /// Rebuilds the policy's view buffer: every waiting task plus (if any)
    /// the running task, in ascending task-id order. Reuses the scratch
    /// buffer, so this allocates nothing in steady state.
    fn build_views(&mut self, running: Option<usize>) -> &[TaskView] {
        self.views.clear();
        let total_wait = self.total_wait;
        let running_id = running.map(|idx| self.runtimes[idx].id());
        let mut running_placed = running.is_none();
        for &idx in &self.waiting {
            if let (false, Some(run_idx)) = (running_placed, running) {
                if self.runtimes[run_idx].id() < self.runtimes[idx].id() {
                    self.views
                        .push(self.runtimes[run_idx].view(true, total_wait));
                    running_placed = true;
                }
            }
            debug_assert_ne!(Some(self.runtimes[idx].id()), running_id);
            self.views.push(self.runtimes[idx].view(false, total_wait));
        }
        if let (false, Some(run_idx)) = (running_placed, running) {
            self.views
                .push(self.runtimes[run_idx].view(true, total_wait));
        }
        &self.views
    }
}

/// The first quantum boundary strictly after `now`.
///
/// Replaces the former `while next_quantum <= now { next_quantum += quantum }`
/// bump loops — O(quanta skipped) — with one arithmetic step that lands on
/// exactly the same boundary (the boundaries are the fixed lattice
/// `next_quantum + i * quantum`).
fn realign_quantum(next_quantum: Cycles, now: Cycles, quantum: Cycles) -> Cycles {
    if next_quantum > now {
        return next_quantum;
    }
    let behind = (now.get() - next_quantum.get()) / quantum.get();
    next_quantum + quantum * (behind + 1)
}

/// Result of one [`SimSession::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The horizon was reached with tasks still outstanding. Resume with a
    /// later horizon (or inject more work first).
    Paused,
    /// Every admitted task has completed (or been revoked). More tasks may
    /// still be injected, or the session can be [`SimSession::finish`]ed.
    Drained,
}

/// Typed misuse errors for the closed-loop session surface
/// ([`SimSession::inject`] / [`SimSession::revoke`] and the salvage path).
///
/// A cluster fault handler drives these calls from retry loops where a task
/// may race a node failure; a panic there would take the whole chaos run
/// down, so misuse is reported as a value. Internal invariants (index
/// consistency, tracked-set membership) remain debug assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// An `inject` id is still *live* (not revoked, not completed) in the
    /// session.
    DuplicateTaskId(TaskId),
    /// The session has never seen the task id.
    UnknownTask(TaskId),
    /// The task already started executing (it holds node-resident context),
    /// so it can no longer be revoked.
    TaskAlreadyStarted(TaskId),
    /// The task already ran to completion on this session.
    TaskCompleted(TaskId),
    /// The task was already revoked (or salvaged) from this session.
    TaskRevoked(TaskId),
    /// The task has not started executing, so it has no checkpoint to
    /// extract — revoke it instead ([`SimSession::checkpoint_out`]).
    TaskNotStarted(TaskId),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateTaskId(id) => {
                write!(f, "task {id:?} is still live in the session")
            }
            EngineError::UnknownTask(id) => write!(f, "task {id:?} is unknown to the session"),
            EngineError::TaskAlreadyStarted(id) => {
                write!(f, "task {id:?} has already started executing")
            }
            EngineError::TaskCompleted(id) => write!(f, "task {id:?} has already completed"),
            EngineError::TaskRevoked(id) => write!(f, "task {id:?} was already revoked"),
            EngineError::TaskNotStarted(id) => {
                write!(
                    f,
                    "task {id:?} has not started executing (revoke it instead)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The salvage manifest of one resident task drained off a failed node by
/// [`SimSession::fail`].
///
/// Recovery re-injects the manifest into a surviving node via
/// [`SimSession::inject_salvaged`]: a never-started task verbatim, a started
/// task from its last checkpoint boundary (`resume_executed` /
/// `checkpoint_bytes` — the commit-point recovery model), carrying the
/// bookkeeping the final [`TaskRecord`] must not lose across hops.
#[derive(Debug, Clone)]
pub struct SalvagedTask {
    /// The task (original request + compiled plan).
    pub prepared: PreparedTask,
    /// Execution progress preserved across the failure: the cursor position
    /// of the task's last checkpoint (`GEMM_OP` commit) boundary. Zero for
    /// never-started tasks and KILL-reset tasks.
    pub resume_executed: Cycles,
    /// The context bytes the recovering node must restore to resume from
    /// `resume_executed` (prices the recovery restore DMA).
    pub checkpoint_bytes: u64,
    /// When the task first started executing, on any node, if ever.
    pub first_start: Option<Cycles>,
    /// Preemptions suffered so far (carried into the final record).
    pub preemption_count: u64,
    /// KILL restarts suffered so far.
    pub kill_restarts: u64,
    /// Checkpoint DMA cycles charged so far.
    pub checkpoint_overhead: Cycles,
    /// Restore DMA cycles charged so far.
    pub restore_overhead: Cycles,
    /// Largest context ever checkpointed, in bytes.
    pub max_checkpoint_bytes: u64,
}

impl SalvagedTask {
    /// Whether the manifest resumes mid-plan (vs. restarting from scratch).
    pub fn resumes_from_checkpoint(&self) -> bool {
        !self.resume_executed.is_zero()
    }

    /// A restart-from-zero copy of this manifest: all execution progress is
    /// discarded, the failure/preemption bookkeeping is kept. This is the
    /// recovery baseline the checkpoint-priced path is compared against.
    pub fn restarted_from_zero(&self) -> SalvagedTask {
        SalvagedTask {
            resume_executed: Cycles::ZERO,
            checkpoint_bytes: 0,
            ..self.clone()
        }
    }
}

/// A point-in-time view of one resident (incomplete) task of a paused
/// [`SimSession`] — what a cluster front-end could observe about a real
/// node's queue: identity, priority, the predictor's estimate and the true
/// progress made so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidentTask {
    /// Task identifier.
    pub id: TaskId,
    /// User-defined priority.
    pub priority: Priority,
    /// The task's dispatch time.
    pub arrival: Cycles,
    /// The scheduler's estimate of the task's isolated execution time.
    pub estimated_total: Cycles,
    /// Cycles of real execution progress so far.
    pub executed: Cycles,
    /// Whether the task has ever started executing on the node.
    pub started: bool,
    /// Whether [`SimSession::revoke`] could still hand the task back (it has
    /// made no progress and holds no node-resident context).
    pub revocable: bool,
}

impl ResidentTask {
    /// The predictor's estimate of the task's remaining execution time.
    pub fn estimated_remaining(&self) -> Cycles {
        self.estimated_total - self.executed
    }
}

/// Exact integer-rational clock stretching: while a node is degraded to
/// speed `num / den` (`0 < num <= den`), every elapsed *wall* cycle yields
/// `num / den` cycles of plan progress (*work*), tracked without rounding
/// drift through a fractional-work accumulator.
///
/// The representation keeps `acc` (work numerator carry, `0 <= acc < den`):
/// advancing `t` wall cycles yields `(acc + t * num) / den` whole work
/// cycles with the remainder carried forward. The carry makes conversion
/// *additive-exact* — converting a wall span in any number of pieces yields
/// the same total work as converting it at once — which is what lets the
/// event-horizon fast-forward, the step-every-quantum reference and any
/// `run_until` horizon sequence stay bit-identical under degradation.
///
/// Dually, `wall_needed(w)` is the *minimal* wall span after which exactly
/// `w` more work cycles have accrued: running exactly that span consumes
/// exactly `w` work with no overshoot, so completion instants computed from
/// it are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClockScale {
    num: u32,
    den: u32,
    acc: u64,
}

impl ClockScale {
    /// Full speed: 1 work cycle per wall cycle, zero carry.
    fn unit() -> Self {
        ClockScale {
            num: 1,
            den: 1,
            acc: 0,
        }
    }

    fn new(num: u32, den: u32) -> Self {
        debug_assert!(num > 0 && num <= den, "validated by set_clock_scale");
        ClockScale { num, den, acc: 0 }
    }

    fn is_unit(&self) -> bool {
        self.num == self.den
    }

    /// Work cycles accrued over `wall` elapsed wall cycles, carrying the
    /// fractional remainder.
    fn work_in(&mut self, wall: Cycles) -> Cycles {
        if self.is_unit() {
            debug_assert_eq!(self.acc, 0, "unit scale never carries");
            return wall;
        }
        let total = self.acc as u128 + wall.get() as u128 * self.num as u128;
        let work = total / self.den as u128;
        self.acc = (total % self.den as u128) as u64;
        Cycles::new(u64::try_from(work).unwrap_or(u64::MAX))
    }

    /// Minimal wall span after which exactly `work` more work cycles have
    /// accrued from the current carry. Non-mutating (a completion-time
    /// peek).
    fn wall_needed(&self, work: Cycles) -> Cycles {
        if self.is_unit() || work.is_zero() {
            return work;
        }
        // Minimal t with acc + t*num >= work*den; acc < den <= work*den.
        let need = work.get() as u128 * self.den as u128 - self.acc as u128;
        let wall = need.div_ceil(self.num as u128);
        Cycles::new(u64::try_from(wall).unwrap_or(u64::MAX))
    }

    /// Advances the wall clock by exactly [`ClockScale::wall_needed`]`(work)`
    /// cycles, consuming exactly `work` work cycles; returns that wall span.
    fn consume_work(&mut self, work: Cycles) -> Cycles {
        if self.is_unit() {
            return work;
        }
        if work.is_zero() {
            return Cycles::ZERO;
        }
        let need = work.get() as u128 * self.den as u128 - self.acc as u128;
        let wall = need.div_ceil(self.num as u128);
        // Residue of the final partially-used wall cycle: in [0, num).
        let residue = wall * self.num as u128 - need;
        debug_assert!(residue < self.num as u128, "wall_needed is minimal");
        self.acc = residue as u64;
        Cycles::new(u64::try_from(wall).unwrap_or(u64::MAX))
    }
}

/// Where a paused [`SimSession`] resumes.
///
/// `Execute` exists because a horizon can clamp an execution step short of
/// the next true event: resuming must *not* re-run the scheduler wakeup for
/// that step (the invocation was already counted), only keep executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Top of the event loop: admit due arrivals, then wake the scheduler.
    Wakeup,
    /// Mid execution step: keep executing the running task towards the next
    /// event without recounting the wakeup.
    Execute,
}

/// The multi-task NPU simulator.
#[derive(Debug, Clone)]
pub struct NpuSimulator {
    npu: NpuConfig,
    sched: SchedulerConfig,
}

impl NpuSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if either configuration fails validation.
    pub fn new(npu: NpuConfig, sched: SchedulerConfig) -> Self {
        if let Err(msg) = npu.validate() {
            panic!("invalid NpuConfig: {msg}");
        }
        if let Err(msg) = sched.validate() {
            panic!("invalid SchedulerConfig: {msg}");
        }
        NpuSimulator { npu, sched }
    }

    /// The NPU configuration.
    pub fn npu_config(&self) -> &NpuConfig {
        &self.npu
    }

    /// The scheduler configuration.
    pub fn scheduler_config(&self) -> &SchedulerConfig {
        &self.sched
    }

    /// Prepares (compiles) a set of requests for this simulator's NPU.
    pub fn prepare(&self, requests: &[TaskRequest]) -> Vec<PreparedTask> {
        requests
            .iter()
            .map(|r| PreparedTask::prepare(*r, &self.npu))
            .collect()
    }

    /// Runs the multi-task simulation to completion.
    ///
    /// Each scheduling event works against the incrementally maintained
    /// `EngineState` — completion counter, id-sorted waiting set, O(1)
    /// global wait accrual and a reused view buffer — so a wakeup costs
    /// O(w log n) in the number of waiting tasks instead of rescanning all
    /// tasks several times, and allocates nothing in steady state. On top
    /// of that, the event-horizon fast path (see the module docs) jumps
    /// over every quantum wakeup that provably cannot change the schedule,
    /// batching the skipped quanta's token grants and invocation counts so
    /// the outcome is bit-identical to [`NpuSimulator::run_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or contains duplicate task IDs.
    pub fn run(&self, tasks: &[PreparedTask]) -> SimOutcome {
        assert!(!tasks.is_empty(), "at least one task is required");
        self.run_impl(tasks, true)
    }

    /// The step-every-quantum reference engine: identical to
    /// [`NpuSimulator::run`] with the event-horizon fast-forward disabled,
    /// so the scheduler is actually woken at every expired quantum.
    ///
    /// This is the semantic oracle the determinism regression tests compare
    /// the fast path against (per-task records, makespan and invocation
    /// counts must match bit-for-bit); it is not used on any production
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or contains duplicate task IDs.
    pub fn run_reference(&self, tasks: &[PreparedTask]) -> SimOutcome {
        assert!(!tasks.is_empty(), "at least one task is required");
        self.run_impl(tasks, false)
    }

    fn run_impl(&self, tasks: &[PreparedTask], fast_forward: bool) -> SimOutcome {
        let mut session = self.session_impl(tasks, fast_forward, NullSink);
        match session.run_until(Cycles::MAX) {
            StepOutcome::Drained => session.finish(),
            StepOutcome::Paused => unreachable!("an unbounded horizon cannot pause"),
        }
    }

    /// Like [`NpuSimulator::run`] with a [`TraceSink`] attached: every
    /// scheduling decision is streamed to `sink`, which is returned
    /// alongside the outcome. Tracing never perturbs the simulation — the
    /// outcome is bit-identical to [`NpuSimulator::run`] (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or contains duplicate task IDs.
    pub fn run_traced<S: TraceSink>(&self, tasks: &[PreparedTask], sink: S) -> (SimOutcome, S) {
        assert!(!tasks.is_empty(), "at least one task is required");
        let mut session = self.session_impl(tasks, true, sink);
        match session.run_until(Cycles::MAX) {
            StepOutcome::Drained => session.finish_with_sink(),
            StepOutcome::Paused => unreachable!("an unbounded horizon cannot pause"),
        }
    }

    /// Opens a resumable simulation session over `tasks` (which may be
    /// empty: a closed-loop driver injects work as it arrives). Driving the
    /// session with [`SimSession::run_until`] over any ascending horizon
    /// sequence and then [`SimSession::finish`]ing it is bit-identical to
    /// [`NpuSimulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `tasks` contains duplicate task IDs.
    pub fn session(&self, tasks: &[PreparedTask]) -> SimSession {
        self.session_impl(tasks, true, NullSink)
    }

    /// Like [`NpuSimulator::session`] with the event-horizon fast-forward
    /// disabled (the step-every-quantum reference engine).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` contains duplicate task IDs.
    pub fn session_reference(&self, tasks: &[PreparedTask]) -> SimSession {
        self.session_impl(tasks, false, NullSink)
    }

    /// Like [`NpuSimulator::session`] with a [`TraceSink`] attached. The
    /// sink observes every decision and never perturbs the run; retrieve it
    /// with [`SimSession::finish_with_sink`] or [`SimSession::sink_mut`].
    ///
    /// # Panics
    ///
    /// Panics if `tasks` contains duplicate task IDs.
    pub fn session_with_sink<S: TraceSink>(
        &self,
        tasks: &[PreparedTask],
        sink: S,
    ) -> SimSession<S> {
        self.session_impl(tasks, true, sink)
    }

    /// Like [`NpuSimulator::session_reference`] with a [`TraceSink`]
    /// attached.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` contains duplicate task IDs.
    pub fn session_reference_with_sink<S: TraceSink>(
        &self,
        tasks: &[PreparedTask],
        sink: S,
    ) -> SimSession<S> {
        self.session_impl(tasks, false, sink)
    }

    fn session_impl<S: TraceSink>(
        &self,
        tasks: &[PreparedTask],
        fast_forward: bool,
        sink: S,
    ) -> SimSession<S> {
        let mut ids: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len(), "task IDs must be unique");

        let state = EngineState::new(tasks);
        // Arrival cursor: indices sorted by admission time, admitted in
        // order (admission time == arrival for every task built here).
        let mut arrival_order: Vec<usize> = (0..state.len()).collect();
        arrival_order.sort_by_key(|&i| (state.runtimes[i].admit_at, state.runtimes[i].id()));

        let quantum = self.sched.quantum_cycles(&self.npu);
        SimSession {
            sched: self.sched.clone(),
            policy: make_policy(self.sched.policy, self.sched.token_scale),
            checkpoint_model: CheckpointModel::new(&self.npu),
            quantum,
            fast_forward,
            state,
            arrival_order,
            next_arrival_idx: 0,
            now: Cycles::ZERO,
            next_quantum: quantum,
            stall_until: Cycles::ZERO,
            clock: ClockScale::unit(),
            running: None,
            phase: Phase::Wakeup,
            scheduler_invocations: 0,
            checkpoint_preemptions: 0,
            kill_preemptions: 0,
            drain_decisions: 0,
            quanta_skipped: 0,
            replayed_token_grants: 0,
            sink,
        }
    }
}

/// A suspended-and-resumable multi-task simulation: the
/// [`NpuSimulator::run`] event loop factored into an explicit state machine.
///
/// Created by [`NpuSimulator::session`]. Drive it with
/// [`SimSession::run_until`]; between calls the session is *paused* and
/// exposes the node state a cluster front-end could observe (queue depth,
/// predicted remaining work, next completion bound), accepts newly arrived
/// work via [`SimSession::inject`], and can hand never-started tasks back
/// via [`SimSession::revoke`] (work stealing, load shedding). Once drained,
/// [`SimSession::finish`] produces the [`SimOutcome`].
///
/// The `S` parameter is the session's [`TraceSink`]. The default
/// [`NullSink`] disables tracing and compiles every emission site away
/// (`S::ENABLED` is an associated constant, so the guard folds at
/// monomorphization); [`NpuSimulator::session_with_sink`] attaches a real
/// sink. A sink only observes — attaching one never changes the outcome.
#[derive(Debug)]
pub struct SimSession<S: TraceSink = NullSink> {
    sched: SchedulerConfig,
    policy: Box<dyn crate::policy::SchedulingPolicy>,
    checkpoint_model: CheckpointModel,
    quantum: Cycles,
    fast_forward: bool,
    state: EngineState,
    arrival_order: Vec<usize>,
    next_arrival_idx: usize,
    now: Cycles,
    next_quantum: Cycles,
    /// The node makes no forward progress before this instant (a fault
    /// window: crash downtime or a freeze/straggler stall). While stalled
    /// the scheduler is frozen — no wakeups, no dispatches, no execution —
    /// and resident tasks simply accrue waiting time. `ZERO` = not stalled.
    stall_until: Cycles,
    /// Degraded-node clock stretching (see [`ClockScale`]): wall cycles map
    /// to plan-progress cycles at `num / den`. Unit unless the cluster's
    /// fault driver put the node in a degrade window.
    clock: ClockScale,
    running: Option<usize>,
    phase: Phase,
    scheduler_invocations: u64,
    checkpoint_preemptions: u64,
    kill_preemptions: u64,
    drain_decisions: u64,
    /// Quantum wakeups elided by the event-horizon fast path.
    quanta_skipped: u64,
    /// Per-task token grants replayed in fast-forward batches.
    replayed_token_grants: u64,
    sink: S,
}

impl<S: TraceSink> SimSession<S> {
    /// Safety valve against scheduler livelock. The one known pathological
    /// configuration is Static(KILL) combined with round-robin ordering:
    /// two tasks can keep discarding each other's progress forever. Real
    /// workloads finish with a few thousand wakeups, so this limit only
    /// trips on genuine livelock.
    const MAX_SCHEDULER_INVOCATIONS: u64 = 5_000_000;

    /// Advances the simulation until the clock reaches `horizon` (then
    /// [`StepOutcome::Paused`]) or every admitted task has finished
    /// ([`StepOutcome::Drained`]).
    ///
    /// Pausing is pure suspension: composing `run_until` over any ascending
    /// horizon sequence performs exactly the state transitions of the
    /// one-shot run, so the eventual [`SimOutcome`] is bit-identical —
    /// including the scheduler-invocation count. Scheduler events due
    /// exactly *at* the horizon are processed before pausing, so a paused
    /// session is always either executing a running task or idle — never
    /// holding an admitted task it has not reacted to — and the clock stops
    /// at the horizon, except that a wakeup's own side effects (restore /
    /// checkpoint DMA) may carry it slightly past.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler livelocks (see the engine docs).
    pub fn run_until(&mut self, horizon: Cycles) -> StepOutcome {
        loop {
            if self.state.finished == self.state.len() {
                return StepOutcome::Drained;
            }
            if self.now < self.stall_until {
                // The node is inside a fault window: jump the clock to the
                // stall's end (or the horizon), charging the dead time as
                // waiting to every waiting task. The scheduler is frozen —
                // no invocations are counted and the phase is preserved, so
                // a stall that interrupts an execution step resumes that
                // exact step.
                let resume = self.stall_until.min(horizon);
                let dt = resume - self.now;
                self.state.accrue(dt);
                self.now = resume;
                self.next_quantum = realign_quantum(self.next_quantum, self.now, self.quantum);
                if self.stall_until > horizon {
                    return StepOutcome::Paused;
                }
            }
            match self.phase {
                Phase::Wakeup => {
                    if self.now > horizon {
                        return StepOutcome::Paused;
                    }
                    self.admit_due_arrivals();

                    if self.running.is_none() && self.state.waiting.is_empty() {
                        // Idle: jump to the next arrival (or the horizon,
                        // whichever comes first — the jump has no side
                        // effects, so clamping composes exactly).
                        let next = self
                            .arrival_order
                            .get(self.next_arrival_idx)
                            .map(|&i| self.state.runtimes[i].admit_at)
                            .expect("tasks remain, so an arrival must be pending");
                        if next > horizon {
                            self.now = self.now.max(horizon);
                            self.next_quantum =
                                realign_quantum(self.next_quantum, self.now, self.quantum);
                            return StepOutcome::Paused;
                        }
                        self.now = self.now.max(next);
                        self.next_quantum =
                            realign_quantum(self.next_quantum, self.now, self.quantum);
                        continue;
                    }

                    self.wakeup();
                    self.phase = Phase::Execute;
                }
                Phase::Execute => {
                    let Some(run_idx) = self.running else {
                        self.phase = Phase::Wakeup;
                        continue;
                    };
                    if self.now >= horizon {
                        // Pause — unless the running task has zero remaining
                        // cycles (its plan ends in zero-cycle intervals the
                        // cursor has not walked yet). Such a task completes
                        // *at* `now`, so pausing would freeze the session
                        // with `next_completion_time() == now` forever — a
                        // livelock for completion-driven drivers like the
                        // cluster's work-stealing loop, which advance to
                        // exactly that bound and expect the task set to
                        // shrink. Falling through performs the same
                        // zero-budget completion step a later, larger
                        // horizon would perform, at the same simulated time.
                        let runtime = &self.state.runtimes[run_idx];
                        let zero_remaining =
                            runtime.cursor.remaining(&runtime.prepared.plan).is_zero();
                        if self.now > horizon || !zero_remaining {
                            return StepOutcome::Paused;
                        }
                    }
                    let reached_event = self.execute_step(run_idx, horizon);
                    if reached_event {
                        self.phase = Phase::Wakeup;
                    }
                    // Otherwise the horizon clamped the step; the loop pauses
                    // at the top of the next Execute iteration.
                }
            }
        }
    }

    /// Admits every pending arrival whose time has come.
    fn admit_due_arrivals(&mut self) {
        while self.next_arrival_idx < self.arrival_order.len()
            && self.state.runtimes[self.arrival_order[self.next_arrival_idx]].admit_at <= self.now
        {
            let idx = self.arrival_order[self.next_arrival_idx];
            self.state.runtimes[idx].arrived = true;
            self.state.enter_waiting(idx);
            self.next_arrival_idx += 1;
        }
    }

    /// One scheduler wakeup: grant tokens, then select / dispatch / preempt.
    fn wakeup(&mut self) {
        assert!(
            self.scheduler_invocations < Self::MAX_SCHEDULER_INVOCATIONS,
            "scheduler livelock detected after {} wakeups (policy {:?}, preemption {:?})",
            Self::MAX_SCHEDULER_INVOCATIONS,
            self.sched.policy,
            self.sched.preemption
        );
        self.scheduler_invocations += 1;
        self.state.grant_tokens(self.sched.token_scale);

        if self.running.is_none() {
            if !self.state.waiting.is_empty() {
                let chosen = self.policy.select(self.now, self.state.build_views(None));
                if S::ENABLED {
                    let candidates = CandidateSet::capture(&self.state.views);
                    self.sink.record(
                        self.now,
                        TraceEvent::Wakeup {
                            invocation: self.scheduler_invocations,
                            chosen,
                            candidates,
                        },
                    );
                }
                let idx = self.state.index_of(chosen);
                self.now = self.dispatch(idx);
                self.running = Some(idx);
            }
        } else if self.sched.preemption.is_preemptive() {
            let run_idx = self.running.expect("checked above");
            let chosen = self
                .policy
                .select(self.now, self.state.build_views(self.running));
            if S::ENABLED {
                let candidates = CandidateSet::capture(&self.state.views);
                self.sink.record(
                    self.now,
                    TraceEvent::Wakeup {
                        invocation: self.scheduler_invocations,
                        chosen,
                        candidates,
                    },
                );
            }
            if chosen != self.state.runtimes[run_idx].id() {
                let running_id = self.state.runtimes[run_idx].id();
                let cand_idx = self.state.index_of(chosen);
                let mechanism = self.pick_mechanism(run_idx, cand_idx);
                if S::ENABLED && mechanism != PreemptionMechanism::Drain {
                    self.sink.record(
                        self.now,
                        TraceEvent::PreemptBegin {
                            task: running_id,
                            by: chosen,
                            mechanism,
                        },
                    );
                }
                match mechanism {
                    PreemptionMechanism::Drain => {
                        self.drain_decisions += 1;
                        if S::ENABLED {
                            self.sink.record(
                                self.now,
                                TraceEvent::DrainDecision {
                                    running: running_id,
                                    contender: chosen,
                                },
                            );
                        }
                    }
                    PreemptionMechanism::Checkpoint => {
                        self.checkpoint_preemptions += 1;
                        self.now = self.preempt_checkpoint(run_idx);
                        if S::ENABLED {
                            let bytes = self.state.runtimes[run_idx].checkpointed_bytes;
                            self.sink.record(
                                self.now,
                                TraceEvent::PreemptEnd {
                                    task: running_id,
                                    checkpoint_bytes: bytes,
                                    checkpoint_cycles: self
                                        .checkpoint_model
                                        .checkpoint_cycles(bytes),
                                },
                            );
                        }
                        self.now = self.dispatch(cand_idx);
                        self.running = Some(cand_idx);
                    }
                    PreemptionMechanism::Kill => {
                        self.kill_preemptions += 1;
                        self.preempt_kill(run_idx);
                        if S::ENABLED {
                            self.sink.record(
                                self.now,
                                TraceEvent::PreemptEnd {
                                    task: running_id,
                                    checkpoint_bytes: 0,
                                    checkpoint_cycles: Cycles::ZERO,
                                },
                            );
                        }
                        self.now = self.dispatch(cand_idx);
                        self.running = Some(cand_idx);
                    }
                }
            }
        }
    }

    /// Executes the running task towards the next event, clamped at
    /// `horizon`. Returns whether the step reached a true event (so the
    /// next iteration is a wakeup) rather than being cut short.
    fn execute_step(&mut self, run_idx: usize, horizon: Cycles) -> bool {
        self.next_quantum = realign_quantum(self.next_quantum, self.now, self.quantum);
        let next_arrival = self
            .arrival_order
            .get(self.next_arrival_idx)
            .map(|&i| self.state.runtimes[i].admit_at);
        let remaining = {
            let runtime = &self.state.runtimes[run_idx];
            runtime.cursor.remaining(&runtime.prepared.plan)
        };
        // `remaining` is plan-progress (work); the completion instant is a
        // wall time, exact under the current clock scale and carry.
        let completion_time = self.now + self.clock.wall_needed(remaining);

        // ---- Event-horizon fast-forward (see the module docs) -----------------
        //
        // The next true event is the running task's completion or the
        // next arrival, whichever comes first. Every quantum wakeup
        // strictly before that horizon is provably inert when (a) no
        // other task is waiting — the policies are pure functions of
        // the views, so a one-candidate selection is a foregone
        // conclusion — or (b) the mode is non-preemptive, where the
        // scheduler is never consulted while a task runs. Jump straight
        // to the last such wakeup, crediting the skipped quanta's
        // invocations and token grants in one batch. The pause horizon
        // clamps the jump; the remaining inert wakeups are batched on
        // resume, with the same per-task grant sequence (the split
        // batches perform identical `f64` additions in identical order).
        if self.fast_forward {
            let event_horizon = match next_arrival {
                Some(arrival) => completion_time.min(arrival.max(self.now)),
                None => completion_time,
            };
            let ff_horizon = event_horizon.min(horizon);
            let inert = self.state.waiting.is_empty() || !self.sched.preemption.is_preemptive();
            if inert && self.next_quantum < ff_horizon {
                let span = ff_horizon - self.next_quantum;
                let periods = span.get().div_ceil(self.quantum.get());
                let last_boundary = self.next_quantum + self.quantum * (periods - 1);
                let skip_budget = last_boundary - self.now;
                // Wall budget → work: `work_in` carries the fractional
                // remainder, so fast-forwarding one long span performs
                // exactly the conversions of stepping every quantum.
                let skip_work = self.clock.work_in(skip_budget);
                let consumed = self.state.advance_cursor(run_idx, skip_work);
                debug_assert_eq!(consumed, skip_work, "horizon is before completion");
                self.state.accrue(skip_budget);
                let skipped_from = self.now;
                self.now = last_boundary;
                self.next_quantum = last_boundary + self.quantum;
                self.scheduler_invocations += periods;
                let grants = periods * self.state.waiting.len() as u64;
                self.quanta_skipped += periods;
                self.replayed_token_grants += grants;
                if S::ENABLED {
                    self.sink.record(
                        skipped_from,
                        TraceEvent::QuantumSkip {
                            from: skipped_from,
                            to: last_boundary,
                            quanta: periods,
                            grants,
                        },
                    );
                }
                self.state
                    .grant_tokens_batch(self.sched.token_scale, self.quantum, periods);
            }
        }

        let mut t_next = completion_time.min(self.next_quantum);
        if let Some(arrival) = next_arrival {
            t_next = t_next.min(arrival.max(self.now));
        }
        let t_exec = t_next.min(horizon);
        let budget = t_exec - self.now;

        // The wall budget never reaches past `completion_time`, so the
        // converted work budget never exceeds the cursor's remaining cycles
        // (`wall_needed` is minimal: strictly less wall yields strictly
        // less work).
        let work_budget = self.clock.work_in(budget);
        let consumed = self.state.advance_cursor(run_idx, work_budget);
        debug_assert_eq!(consumed, work_budget, "work budget is within the plan");
        self.state.accrue(budget);
        self.now += budget;

        let finished = {
            let runtime = &self.state.runtimes[run_idx];
            runtime.cursor.is_complete(&runtime.prepared.plan)
        };
        if finished {
            if S::ENABLED {
                let task = self.state.runtimes[run_idx].id();
                self.sink.record(self.now, TraceEvent::Complete { task });
            }
            self.state.complete(run_idx, self.now);
            self.running = None;
            return true;
        }
        if consumed.is_zero()
            && budget.is_zero()
            && t_exec == t_next
            && next_arrival.is_none_or(|arrival| arrival > self.now)
        {
            // Degenerate safety net: a task with zero remaining cycles (a
            // zero-length plan, or a plan whose trailing zero-cycle
            // intervals the cursor has not walked) completes instantly. A
            // *due* arrival (<= now) still takes precedence — it must be
            // admitted by the next wakeup before the completion is recorded
            // — but a strictly future arrival cannot: without this the
            // wakeup/execute cycle would spin without advancing the clock
            // until the livelock valve trips.
            if S::ENABLED {
                let task = self.state.runtimes[run_idx].id();
                self.sink.record(self.now, TraceEvent::Complete { task });
            }
            self.state.complete(run_idx, self.now);
            self.running = None;
            return true;
        }
        t_exec == t_next
    }

    /// Starts (or resumes) `idx` on the NPU, charging a restore latency if
    /// its context was previously checkpointed. Returns the time at which
    /// useful execution begins.
    fn dispatch(&mut self, idx: usize) -> Cycles {
        let state = &mut self.state;
        state.static_remove(idx);
        if state.runtimes[idx].first_start.is_none() {
            // The task is starting for the first time: it can no longer be
            // revoked (stolen or shed) by a cluster front-end.
            state.untrack_revocable(idx);
        }
        // Leave the waiting set first: the dispatched task does not wait
        // through its own restore DMA, but everyone else does.
        state.leave_waiting(idx);
        let mut start = self.now;
        let mut restore_charged = Cycles::ZERO;
        if state.runtimes[idx].needs_restore && self.sched.charge_restore {
            let restore = self
                .checkpoint_model
                .restore_cycles(state.runtimes[idx].checkpointed_bytes);
            state.runtimes[idx].restore_overhead += restore;
            state.accrue(restore);
            start += restore;
            restore_charged = restore;
        }
        if S::ENABLED {
            let task = state.runtimes[idx].id();
            self.sink.record(
                start,
                TraceEvent::Dispatch {
                    task,
                    restore: restore_charged,
                },
            );
        }
        let state = &mut self.state;
        let runtime = &mut state.runtimes[idx];
        runtime.needs_restore = false;
        runtime.state = TaskState::Running;
        runtime.first_start = runtime.first_start.or(Some(start));
        runtime.last_scheduled = Some(start);
        start
    }

    /// Preempts the running task with CHECKPOINT: finishes the current
    /// `GEMM_OP` interval, spills the live context, and returns the new time.
    fn preempt_checkpoint(&mut self, run_idx: usize) -> Cycles {
        let state = &mut self.state;
        // Run to the next legal preemption point. The preempted task is
        // still Running here, so the boundary cycles charge waiting time to
        // everyone else only.
        let (boundary, live_bytes) = {
            let runtime = &state.runtimes[run_idx];
            let plan = Arc::clone(&runtime.prepared.plan);
            let boundary = runtime.cursor.cycles_to_boundary(&plan);
            state.advance_cursor(run_idx, boundary);
            let live_bytes = state.runtimes[run_idx].cursor.live_checkpoint_bytes(&plan);
            (boundary, live_bytes)
        };
        // The boundary drain is plan progress, so a degraded clock
        // stretches it; the checkpoint DMA below is *not* stretched — the
        // DMA engine runs at full speed even when the compute clock is
        // throttled.
        let wall_drain = self.clock.consume_work(boundary);
        state.accrue(wall_drain);
        let mut time = self.now + wall_drain;

        let checkpoint = self.checkpoint_model.checkpoint_cycles(live_bytes);
        {
            let runtime = &mut state.runtimes[run_idx];
            runtime.checkpoint_overhead += checkpoint;
            runtime.checkpointed_bytes = live_bytes;
            runtime.max_checkpoint_bytes = runtime.max_checkpoint_bytes.max(live_bytes);
            runtime.needs_restore = true;
            runtime.preemption_count += 1;
            runtime.state = TaskState::Checkpointed;
        }
        // During the checkpoint DMA nobody makes forward progress; everyone
        // waiting (including the just-preempted task) accrues wait time.
        state.static_insert(run_idx);
        state.enter_waiting(run_idx);
        state.accrue(checkpoint);
        time += checkpoint;
        time
    }

    /// Preempts the running task with KILL: all progress is discarded and the
    /// task restarts from scratch when it is next scheduled.
    fn preempt_kill(&mut self, run_idx: usize) {
        let state = &mut self.state;
        state.reset_cursor(run_idx);
        {
            let runtime = &mut state.runtimes[run_idx];
            runtime.preemption_count += 1;
            runtime.kill_restarts += 1;
            runtime.checkpointed_bytes = 0;
            runtime.needs_restore = false;
            runtime.state = TaskState::Ready;
        }
        state.static_insert(run_idx);
        state.enter_waiting(run_idx);
    }

    /// Chooses the preemption mechanism for displacing `run_idx` in favour of
    /// `cand_idx` under the configured preemption mode.
    fn pick_mechanism(&self, run_idx: usize, cand_idx: usize) -> PreemptionMechanism {
        let runtimes = &self.state.runtimes;
        match self.sched.preemption {
            PreemptionMode::NonPreemptive => PreemptionMechanism::Drain,
            PreemptionMode::Static(mechanism) => mechanism,
            PreemptionMode::Dynamic | PreemptionMode::DynamicKill => {
                let inputs = MechanismDecisionInputs {
                    current_estimated: runtimes[run_idx].estimated,
                    current_executed: runtimes[run_idx].cursor.executed(),
                    candidate_estimated: runtimes[cand_idx].estimated,
                    candidate_executed: runtimes[cand_idx].cursor.executed(),
                };
                match select_mechanism(inputs) {
                    PreemptionMechanism::Drain => PreemptionMechanism::Drain,
                    _ if self.sched.preemption == PreemptionMode::DynamicKill => {
                        PreemptionMechanism::Kill
                    }
                    other => other,
                }
            }
        }
    }

    // ---- Closed-loop surface ---------------------------------------------

    /// The session's current simulation clock.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Whether every admitted task has completed (or been revoked).
    pub fn is_drained(&self) -> bool {
        self.state.finished == self.state.len()
    }

    /// Number of resident (incomplete, not revoked) tasks: the node's live
    /// queue depth, counting the running task and not-yet-admitted
    /// injections.
    pub fn queue_depth(&self) -> usize {
        self.state.len() - self.state.finished
    }

    /// Scheduler wakeups performed so far.
    pub fn scheduler_invocations(&self) -> u64 {
        self.scheduler_invocations
    }

    /// Runtime indices of every resident (incomplete, not revoked) task:
    /// the waiting set, the running task, and the not-yet-admitted pending
    /// arrivals — disjoint by construction. Iterating these keeps the
    /// closed-loop observation surface proportional to the *live* queue,
    /// not to every task the session ever served.
    fn resident_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.state
            .waiting
            .iter()
            .copied()
            .chain(self.running)
            .chain(self.arrival_order[self.next_arrival_idx..].iter().copied())
    }

    /// Builds the [`ResidentTask`] snapshot of runtime `idx`.
    fn resident_view(&self, idx: usize) -> ResidentTask {
        let r = &self.state.runtimes[idx];
        ResidentTask {
            id: r.id(),
            priority: r.prepared.request.priority,
            arrival: r.prepared.request.arrival,
            estimated_total: r.estimated,
            executed: r.cursor.executed(),
            started: r.first_start.is_some(),
            revocable: r.first_start.is_none() && Some(idx) != self.running,
        }
    }

    /// A snapshot of every resident task (see [`ResidentTask`]): the
    /// waiting set (task-id order), then the running task, then pending
    /// arrivals (arrival order) — deterministic across calls.
    pub fn resident_tasks(&self) -> Vec<ResidentTask> {
        let mut out = Vec::new();
        self.resident_tasks_into(&mut out);
        out
    }

    /// Like [`SimSession::resident_tasks`], appending into a caller-owned
    /// buffer so tight observation loops can reuse their allocation.
    pub fn resident_tasks_into(&self, out: &mut Vec<ResidentTask>) {
        out.reserve(self.queue_depth());
        for idx in self.resident_indices() {
            out.push(self.resident_view(idx));
        }
    }

    /// The predictor's view of the node's total remaining work: summed
    /// estimated-remaining cycles over every resident task, using each
    /// task's *true* live progress. O(1): the engine maintains the total
    /// incrementally at every progress / membership transition.
    pub fn predicted_remaining_work(&self) -> Cycles {
        debug_assert_eq!(
            self.state.remaining_work,
            self.resident_indices()
                .map(|idx| self.state.runtimes[idx].remaining_estimate())
                .sum(),
            "incremental remaining-work total diverged from the resident scan"
        );
        self.state.remaining_work
    }

    /// Like [`SimSession::predicted_remaining_work`], restricted to resident
    /// tasks of equal-or-higher priority than `priority` — the work a
    /// preemptive node would actually run before an arriving request of that
    /// priority. O(1) via the per-priority running totals.
    pub fn predicted_blocking_work(&self, priority: Priority) -> Cycles {
        debug_assert_eq!(
            self.state
                .remaining_by_priority
                .iter()
                .copied()
                .sum::<Cycles>(),
            self.state.remaining_work,
            "per-priority totals diverged from the overall total"
        );
        self.state.remaining_by_priority[priority.index()..]
            .iter()
            .copied()
            .sum()
    }

    /// The id of the task currently executing on the NPU, if any.
    pub fn running_task(&self) -> Option<TaskId> {
        self.running.map(|idx| self.state.runtimes[idx].id())
    }

    /// Total predicted work of the revocable (never-started) resident
    /// tasks — what a cluster front-end could still steal or shed. O(1).
    pub fn revocable_work(&self) -> Cycles {
        self.state.revocable_work
    }

    /// The revocable task an idle peer would steal: largest remaining
    /// estimate, ties to the lowest id. O(1) peek of the maintained
    /// steal-preference order.
    pub fn best_steal_candidate(&self) -> Option<ResidentTask> {
        self.state
            .steal_order
            .last()
            .map(|&idx| self.resident_view(idx))
    }

    /// The revocable task SLA admission would shed first: lowest priority,
    /// then the largest remaining estimate, then the newest id. O(1) peek
    /// of the maintained shed-preference order.
    pub fn best_shed_candidate(&self) -> Option<ResidentTask> {
        self.state
            .shed_order
            .first()
            .map(|&idx| self.resident_view(idx))
    }

    /// A monotone counter that advances whenever the closed-loop
    /// observation surface can move: waiting-set entries/exits (dispatch,
    /// preemption, admission), completions, injections and revocations.
    /// Between two observations with equal versions a paused session has
    /// either idled or executed exactly one task continuously with no
    /// checkpoint/restore stalls — so derived per-node state (e.g. the
    /// cluster's predicted-turnaround segments) stays exactly reusable.
    pub fn state_version(&self) -> u64 {
        self.state.state_version
    }

    /// The signal bundle an external dispatch index refreshes from — see
    /// [`DispatchSignals`]. One O(1) read per [`SimSession::state_version`]
    /// bump covers everything the cluster's contender structures key on.
    pub fn dispatch_signals(&self) -> DispatchSignals {
        let mut blocking_work = [Cycles::ZERO; Priority::ALL.len()];
        let mut suffix = Cycles::ZERO;
        for level in (0..Priority::ALL.len()).rev() {
            suffix += self.state.remaining_by_priority[level];
            blocking_work[level] = suffix;
        }
        DispatchSignals {
            now: self.now,
            queue_depth: self.queue_depth(),
            remaining_work: self.state.remaining_work,
            blocking_work,
            stalled: self.stalled_until().is_some(),
            scaled: self.clock.num != self.clock.den,
        }
    }

    /// A lower bound on the next time the node's task set can shrink: the
    /// running task's completion time (assuming no further preemption), the
    /// current clock if dispatching is imminent, or the next pending
    /// arrival. `None` once drained.
    pub fn next_completion_time(&self) -> Option<Cycles> {
        if self.is_drained() {
            return None;
        }
        // Nothing happens before a fault stall ends: every term shifts to
        // the resume instant, keeping completion-driven drivers progressing
        // monotonically through fault windows.
        let resume = self.now.max(self.stall_until);
        if let Some(run_idx) = self.running {
            let runtime = &self.state.runtimes[run_idx];
            let remaining = runtime.cursor.remaining(&runtime.prepared.plan);
            // Work → wall under the current clock scale (exact carry peek).
            return Some(resume + self.clock.wall_needed(remaining));
        }
        if !self.state.waiting.is_empty() {
            return Some(resume);
        }
        self.arrival_order
            .get(self.next_arrival_idx)
            .map(|&i| self.state.runtimes[i].admit_at.max(resume))
    }

    /// A *conservative* lower bound on the next time any resident task can
    /// complete: no completion can occur strictly before the returned
    /// instant, no matter how the scheduler interleaves the residents.
    ///
    /// [`SimSession::next_completion_time`] reports when the *currently
    /// running* task would finish if it kept the NPU — an optimistic
    /// figure: a preemptive switch to a shorter task can produce an
    /// earlier completion. This bound instead takes the minimum of
    ///
    /// * the running task's true (plan-cursor) remaining time, and
    /// * the earliest instant any *other* resident could finish: the first
    ///   wakeup that could dispatch it (the next scheduling-period expiry
    ///   or the next pending arrival, both strictly in the future of a
    ///   paused session — only relevant under preemptive modes) plus the
    ///   smallest plan remaining over non-running residents.
    ///
    /// A lazy cluster driver uses this as a certificate: while the bound
    /// exceeds `t`, the node's queue depth is constant through `t`, its
    /// predicted-work totals shrink at most one cycle per cycle, and no
    /// completion-time estimate error can be released — which is what
    /// makes branch-and-bound dispatch on unadvanced nodes exact.
    /// `None` once drained.
    pub fn completion_lower_bound(&self) -> Option<Cycles> {
        if self.is_drained() {
            return None;
        }
        // A stalled node performs no work and no wakeups before the stall
        // ends, so every term is floored at the resume instant — the bound
        // stays sound (nothing completes during the stall) and makes strict
        // progress for drivers paused inside the fault window.
        let resume = self.now.max(self.stall_until);
        let pending_wakeup = self
            .arrival_order
            .get(self.next_arrival_idx)
            .map(|&i| self.state.runtimes[i].admit_at.max(resume));
        if let Some(run_idx) = self.running {
            let run_completion =
                resume + self.clock.wall_needed(self.state.plan_remaining(run_idx));
            if !self.sched.preemption.is_preemptive() {
                // Non-preemptive: nothing can displace the runner, so the
                // first possible completion is the runner's own.
                return Some(run_completion);
            }
            let mut bound = run_completion;
            if let Some(&(min_static, _)) = self.state.static_remaining.first() {
                // Both wakeup sources are strictly after `now` for a paused
                // session, so the bound always makes strict progress.
                // `min_static` is *work* left deliberately unscaled: work
                // cycles never exceed the wall cycles they take (the scale
                // is slowdown-only), so the bound stays sound without
                // guessing the carry at a future dispatch instant.
                let wakeup = self
                    .next_quantum
                    .max(resume)
                    .min(pending_wakeup.unwrap_or(Cycles::MAX));
                bound = bound.min(wakeup + min_static);
            }
            return Some(bound);
        }
        if !self.state.waiting.is_empty() {
            return Some(resume);
        }
        pending_wakeup
    }

    /// Injects a newly arrived task into the paused session. The task is
    /// admitted at the first wakeup at or after its arrival time; an arrival
    /// in the session's past is admitted immediately at the current clock
    /// (its record still carries the true arrival, so queueing-delay metrics
    /// see the dispatch latency).
    ///
    /// Re-injecting an id this session previously [`SimSession::revoke`]d
    /// is allowed and revives the task from scratch — multi-hop work
    /// stealing can route a request back through an earlier owner.
    ///
    /// # Errors
    ///
    /// [`EngineError::DuplicateTaskId`] if a task with the same ID is
    /// already *live* (not revoked) in the session; the session is
    /// unchanged.
    pub fn inject(&mut self, task: PreparedTask) -> Result<(), EngineError> {
        let id = task.request.id;
        let idx = self.admit_runtime(Runtime::new(task))?;
        // A freshly injected task is never-started: a cluster front-end can
        // still steal or shed it.
        self.state.track_revocable(idx);
        if S::ENABLED {
            self.sink.record(
                self.now,
                TraceEvent::Inject {
                    task: id,
                    salvaged: false,
                    resume_executed: Cycles::ZERO,
                },
            );
        }
        Ok(())
    }

    /// Re-injects a [`SalvagedTask`] recovered from a failed node, resuming
    /// from its checkpoint cursor. Admission is gated on `admit_at` — the
    /// cluster's recovery instant — so a node whose local clock lags cannot
    /// causally run the task before it was re-admitted; the task's record
    /// still carries its original arrival (recovery latency is turnaround,
    /// not a new arrival) and the bookkeeping accumulated on earlier hops.
    ///
    /// A manifest with progress re-enters in the checkpointed state: its
    /// first dispatch charges the restore DMA for `checkpoint_bytes` — the
    /// checkpoint-priced cost of recovery. Started tasks are *not*
    /// revocable on their new home (their context is node-resident, exactly
    /// as if they had started there).
    ///
    /// # Errors
    ///
    /// [`EngineError::DuplicateTaskId`] if the task id is still live in the
    /// session; the session is unchanged.
    pub fn inject_salvaged(
        &mut self,
        salvage: SalvagedTask,
        admit_at: Cycles,
    ) -> Result<(), EngineError> {
        let mut runtime = Runtime::new(salvage.prepared);
        runtime.admit_at = admit_at.max(runtime.prepared.request.arrival);
        if !salvage.resume_executed.is_zero() {
            let consumed = runtime
                .cursor
                .advance(&runtime.prepared.plan, salvage.resume_executed);
            debug_assert_eq!(consumed, salvage.resume_executed, "resume point is in-plan");
            runtime.state = TaskState::Checkpointed;
            runtime.needs_restore = true;
            runtime.checkpointed_bytes = salvage.checkpoint_bytes;
        }
        runtime.first_start = salvage.first_start;
        runtime.preemption_count = salvage.preemption_count;
        runtime.kill_restarts = salvage.kill_restarts;
        runtime.checkpoint_overhead = salvage.checkpoint_overhead;
        runtime.restore_overhead = salvage.restore_overhead;
        runtime.max_checkpoint_bytes = salvage.max_checkpoint_bytes.max(salvage.checkpoint_bytes);
        let started = runtime.first_start.is_some();
        let id = runtime.id();
        let resume_executed = salvage.resume_executed;
        let idx = self.admit_runtime(runtime)?;
        if !started {
            self.state.track_revocable(idx);
        }
        if S::ENABLED {
            self.sink.record(
                self.now,
                TraceEvent::Inject {
                    task: id,
                    salvaged: true,
                    resume_executed,
                },
            );
        }
        Ok(())
    }

    /// Shared admission path of [`SimSession::inject`] /
    /// [`SimSession::inject_salvaged`]: places the runtime in the id index,
    /// the predicted-work totals, the static-remaining index and the
    /// pending-arrival queue. Does *not* touch the revocable indexes — the
    /// callers decide stealability.
    fn admit_runtime(&mut self, runtime: Runtime) -> Result<usize, EngineError> {
        let id = runtime.id();
        let admit_at = runtime.admit_at;
        let idx = match self.state.id_index.binary_search_by_key(&id, |&(id, _)| id) {
            Err(pos) => {
                let idx = self.state.runtimes.len();
                self.state.runtimes.push(runtime);
                self.state.id_index.insert(pos, (id, idx));
                idx
            }
            Ok(pos) => {
                // The id exists: only a previously revoked slot may be
                // revived (the task bounced back via work stealing, or is
                // being recovered after a node failure).
                let idx = self.state.id_index[pos].1;
                if !self.state.runtimes[idx].revoked {
                    return Err(EngineError::DuplicateTaskId(id));
                }
                self.state.runtimes[idx] = runtime;
                self.state.finished -= 1;
                idx
            }
        };
        self.state.state_version += 1;
        {
            let state = &mut self.state;
            let remaining = state.runtimes[idx].remaining_estimate();
            let priority = state.runtimes[idx].prepared.request.priority;
            state.remaining_work += remaining;
            state.remaining_by_priority[priority.index()] += remaining;
            state.static_insert(idx);
        }
        // Keep the unadmitted tail of the arrival queue (admit_at, id)-sorted
        // so admission order stays deterministic.
        let tail_start = self.next_arrival_idx;
        let insert_at = self.arrival_order[tail_start..].partition_point(|&i| {
            let runtime = &self.state.runtimes[i];
            (runtime.admit_at, runtime.id()) <= (admit_at, id)
        });
        self.arrival_order.insert(tail_start + insert_at, idx);
        Ok(idx)
    }

    /// Hands a task back, if it has not started executing: the task is
    /// removed from the node (no record will be produced) and returned for
    /// re-injection elsewhere — the primitive behind work stealing and load
    /// shedding.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTask`] / [`EngineError::TaskRevoked`] /
    /// [`EngineError::TaskCompleted`] / [`EngineError::TaskAlreadyStarted`]
    /// describe why the task cannot be handed back; the session is
    /// unchanged.
    pub fn revoke(&mut self, id: TaskId) -> Result<PreparedTask, EngineError> {
        let pos = self
            .state
            .id_index
            .binary_search_by_key(&id, |&(id, _)| id)
            .map_err(|_| EngineError::UnknownTask(id))?;
        let idx = self.state.id_index[pos].1;
        let runtime = &self.state.runtimes[idx];
        if runtime.revoked {
            return Err(EngineError::TaskRevoked(id));
        }
        if runtime.completion.is_some() {
            return Err(EngineError::TaskCompleted(id));
        }
        if runtime.first_start.is_some() || Some(idx) == self.running {
            return Err(EngineError::TaskAlreadyStarted(id));
        }
        if runtime.arrived {
            debug_assert!(runtime.is_waiting(), "never-started admitted task waits");
            self.state.leave_waiting(idx);
        } else {
            let tail = &self.arrival_order[self.next_arrival_idx..];
            let offset = tail
                .iter()
                .position(|&i| i == idx)
                .expect("unadmitted task is in the pending arrival queue");
            self.arrival_order.remove(self.next_arrival_idx + offset);
        }
        self.state.state_version += 1;
        self.state.untrack_revocable(idx);
        self.state.static_remove(idx);
        {
            let state = &mut self.state;
            let removed = state.runtimes[idx].remaining_estimate();
            debug_assert_eq!(removed, state.runtimes[idx].estimated, "never started");
            let priority = state.runtimes[idx].prepared.request.priority;
            state.remaining_work -= removed;
            state.remaining_by_priority[priority.index()] -= removed;
        }
        let runtime = &mut self.state.runtimes[idx];
        runtime.revoked = true;
        let prepared = runtime.prepared.clone();
        self.state.finished += 1;
        if S::ENABLED {
            self.sink.record(self.now, TraceEvent::Revoke { task: id });
        }
        Ok(prepared)
    }

    // ---- Fault injection -------------------------------------------------

    /// Freezes the node until `until`: no execution progress, no scheduler
    /// wakeups, no admissions before that instant. Models both a
    /// freeze/straggler window and the downtime after a crash. Stalls
    /// compose by taking the later end; a stall entirely in the past is a
    /// no-op.
    ///
    /// Bumps the state version even though no task state changes: a stall
    /// breaks the time-invariance that external predicted-turnaround caches
    /// (keyed on the version) rely on, so they must observe it.
    pub fn stall(&mut self, until: Cycles) {
        self.stall_until = self.stall_until.max(until);
        self.state.state_version += 1;
        if S::ENABLED {
            self.sink.record(
                self.now,
                TraceEvent::Stall {
                    until: self.stall_until,
                },
            );
        }
    }

    /// The instant the current fault stall ends, if the node is stalled.
    pub fn stalled_until(&self) -> Option<Cycles> {
        (self.now < self.stall_until).then_some(self.stall_until)
    }

    /// Sets the node's clock scale: from now on, every elapsed wall cycle
    /// yields `num / den` cycles of plan progress — the degraded-node
    /// (thermal throttle / contention straggler) model. `(1, 1)` restores
    /// full speed. The fractional-progress carry resets, so call this only
    /// at the globally synchronized instants the cluster's fault driver
    /// uses (degrade window edges), where both simulation loops observe the
    /// same session state.
    ///
    /// Scaling stretches *execution* only. Checkpoint and restore DMA, the
    /// scheduling-quantum lattice and fault stalls stay on the wall clock:
    /// the DMA engine and the scheduler's timer tick at full speed even
    /// when the compute clock is throttled.
    ///
    /// Bumps the state version: external predicted-turnaround caches rely
    /// on time-invariance that holds only at unit scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < num <= den` (slowdown only — a speed-up would
    /// break the conservative completion bounds the cluster loops rely on).
    pub fn set_clock_scale(&mut self, num: u32, den: u32) {
        assert!(
            num > 0 && num <= den,
            "clock scale must satisfy 0 < num <= den (slowdown only), got {num}/{den}"
        );
        self.clock = ClockScale::new(num, den);
        self.state.state_version += 1;
        if S::ENABLED {
            self.sink
                .record(self.now, TraceEvent::ClockScale { num, den });
        }
    }

    /// The current clock scale as `(num, den)`; `(1, 1)` when undegraded.
    pub fn clock_scale(&self) -> (u32, u32) {
        (self.clock.num, self.clock.den)
    }

    /// The exact wall cycles the node needs, from this instant, to make
    /// `work` cycles of plan progress under its current clock scale
    /// (including the fractional carry). Equals `work` at unit scale. A
    /// migration arbiter prices "stay on this straggler" with this.
    pub fn scaled_wall_for_work(&self, work: Cycles) -> Cycles {
        self.clock.wall_needed(work)
    }

    /// Crashes the node: every resident task is drained off the session and
    /// returned as a [`SalvagedTask`] manifest, in ascending task-id order.
    ///
    /// Salvage follows the commit-point recovery model: a task that never
    /// started executing is salvaged verbatim; a task with execution
    /// progress (running, checkpointed, or awaiting restore) resumes from
    /// its last `GEMM_OP` interval boundary — the last commit point — with
    /// the checkpoint footprint that was live there, so in-window progress
    /// past the boundary is lost and recovery pays the restore DMA for
    /// exactly the committed context. A KILL-reset task salvages from zero.
    ///
    /// The session itself survives (its clock, records of already-completed
    /// tasks, and counters are intact); pair with [`SimSession::stall`] to
    /// model the crash's downtime window. Salvaged tasks produce no record
    /// here — recovery re-injects them elsewhere via
    /// [`SimSession::inject_salvaged`], or abandons them.
    pub fn fail(&mut self) -> Vec<SalvagedTask> {
        let mut indices: Vec<usize> = self.resident_indices().collect();
        indices.sort_unstable_by_key(|&idx| self.state.runtimes[idx].id());
        let mut salvaged = Vec::with_capacity(indices.len());
        for idx in indices {
            salvaged.push(self.salvage_runtime(idx));
        }
        self.state.state_version += 1;
        self.phase = Phase::Wakeup;
        salvaged
    }

    /// Voluntarily extracts one *started*, resident task at its last
    /// `GEMM_OP` commit point — the migration twin of [`SimSession::fail`]:
    /// same commit-point salvage semantics, but scoped to a single task on
    /// a node that keeps running. The manifest re-injects elsewhere via
    /// [`SimSession::inject_salvaged`] after the cluster has paid the
    /// interconnect transfer; in-window progress past the commit point is
    /// the migration's replay cost.
    ///
    /// Never-started tasks hold no node-resident context — move those with
    /// [`SimSession::revoke`], which is free.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTask`] / [`EngineError::TaskRevoked`] /
    /// [`EngineError::TaskCompleted`] if the task is not resident, and
    /// [`EngineError::TaskNotStarted`] if it has no checkpointable context;
    /// the session is unchanged on error.
    pub fn checkpoint_out(&mut self, id: TaskId) -> Result<SalvagedTask, EngineError> {
        let idx = self.checkpointable_index(id)?;
        let was_running = Some(idx) == self.running;
        let salvage = self.salvage_runtime(idx);
        self.state.state_version += 1;
        if was_running {
            // The NPU lost its running task; the next step must be a fresh
            // scheduler wakeup, exactly as after a crash.
            self.phase = Phase::Wakeup;
        }
        Ok(salvage)
    }

    /// A read-only preview of what [`SimSession::checkpoint_out`] would
    /// salvage for `id` right now: `(resume_executed, checkpoint_bytes)` at
    /// the task's last commit point. The migration arbiter prices the
    /// stay-vs-move comparison with this *before* deciding to extract —
    /// the returned bytes are exactly what the interconnect would carry.
    ///
    /// # Errors
    ///
    /// The same errors as [`SimSession::checkpoint_out`].
    pub fn checkpoint_preview(&self, id: TaskId) -> Result<(Cycles, u64), EngineError> {
        let idx = self.checkpointable_index(id)?;
        let runtime = &self.state.runtimes[idx];
        let plan = &runtime.prepared.plan;
        let resume_executed = runtime.cursor.executed() - runtime.cursor.in_interval(plan);
        let checkpoint_bytes = if resume_executed.is_zero() {
            0
        } else {
            let mut floor = ProgressCursor::start();
            floor.advance(plan, resume_executed);
            floor.live_checkpoint_bytes(plan)
        };
        Ok((resume_executed, checkpoint_bytes))
    }

    /// Validates that `id` names a started, resident task and returns its
    /// runtime index (the shared gate of [`SimSession::checkpoint_out`] and
    /// [`SimSession::checkpoint_preview`]).
    fn checkpointable_index(&self, id: TaskId) -> Result<usize, EngineError> {
        let pos = self
            .state
            .id_index
            .binary_search_by_key(&id, |&(id, _)| id)
            .map_err(|_| EngineError::UnknownTask(id))?;
        let idx = self.state.id_index[pos].1;
        let runtime = &self.state.runtimes[idx];
        if runtime.revoked {
            return Err(EngineError::TaskRevoked(id));
        }
        if runtime.completion.is_some() {
            return Err(EngineError::TaskCompleted(id));
        }
        if runtime.first_start.is_none() {
            return Err(EngineError::TaskNotStarted(id));
        }
        Ok(idx)
    }

    /// Drains resident runtime `idx` off the session as a [`SalvagedTask`]
    /// at its last commit point. Shared by [`SimSession::fail`] (all
    /// residents) and [`SimSession::checkpoint_out`] (one task); callers
    /// bump the state version.
    fn salvage_runtime(&mut self, idx: usize) -> SalvagedTask {
        let was_running = Some(idx) == self.running;
        if was_running {
            self.running = None;
        } else if self.state.runtimes[idx].arrived {
            self.state.leave_waiting(idx);
            self.state.static_remove(idx);
        } else {
            let tail = &self.arrival_order[self.next_arrival_idx..];
            let offset = tail
                .iter()
                .position(|&i| i == idx)
                .expect("unadmitted resident is in the pending arrival queue");
            self.arrival_order.remove(self.next_arrival_idx + offset);
            self.state.static_remove(idx);
        }
        if self.state.runtimes[idx].first_start.is_none() {
            self.state.untrack_revocable(idx);
        }
        {
            let state = &mut self.state;
            let removed = state.runtimes[idx].remaining_estimate();
            let priority = state.runtimes[idx].prepared.request.priority;
            state.remaining_work -= removed;
            state.remaining_by_priority[priority.index()] -= removed;
        }
        let runtime = &mut self.state.runtimes[idx];
        // The last commit point: the start of the interval the cursor
        // is in (everything before it committed at interval
        // boundaries). A cursor already at a boundary keeps all its
        // progress; mid-interval progress is lost.
        let plan = Arc::clone(&runtime.prepared.plan);
        let resume_executed = runtime.cursor.executed() - runtime.cursor.in_interval(&plan);
        let checkpoint_bytes = if resume_executed.is_zero() {
            0
        } else {
            let mut floor = ProgressCursor::start();
            floor.advance(&plan, resume_executed);
            floor.live_checkpoint_bytes(&plan)
        };
        let salvage = SalvagedTask {
            prepared: runtime.prepared.clone(),
            resume_executed,
            checkpoint_bytes,
            first_start: runtime.first_start,
            preemption_count: runtime.preemption_count,
            kill_restarts: runtime.kill_restarts,
            checkpoint_overhead: runtime.checkpoint_overhead,
            restore_overhead: runtime.restore_overhead,
            max_checkpoint_bytes: runtime.max_checkpoint_bytes,
        };
        runtime.revoked = true;
        self.state.finished += 1;
        if S::ENABLED {
            self.sink.record(
                self.now,
                TraceEvent::Salvage {
                    task: salvage.prepared.request.id,
                    resume_executed: salvage.resume_executed,
                    checkpoint_bytes: salvage.checkpoint_bytes,
                },
            );
        }
        salvage
    }

    /// Consumes the drained session and builds the [`SimOutcome`]: the
    /// id-sorted records of every completed task (revoked tasks produce no
    /// record), deriving the makespan in the same pass.
    ///
    /// # Panics
    ///
    /// Panics if tasks are still outstanding (not [`StepOutcome::Drained`]).
    pub fn finish(self) -> SimOutcome {
        self.finish_with_sink().0
    }

    /// [`SimSession::finish`], but also hands the trace sink back so a
    /// caller can inspect what it recorded.
    ///
    /// # Panics
    ///
    /// Panics if tasks are still outstanding (not [`StepOutcome::Drained`]).
    pub fn finish_with_sink(self) -> (SimOutcome, S) {
        assert!(
            self.is_drained(),
            "finish() called with tasks still outstanding"
        );
        let mut makespan = Cycles::ZERO;
        let mut records: Vec<TaskRecord> = self
            .state
            .runtimes
            .iter()
            .filter(|r| !r.revoked)
            .map(|r| {
                let completion = r.completion.expect("all tasks completed");
                makespan = makespan.max(completion);
                TaskRecord {
                    id: r.prepared.request.id,
                    model: r.prepared.request.model,
                    batch: r.prepared.request.batch,
                    priority: r.prepared.request.priority,
                    arrival: r.prepared.request.arrival,
                    first_start: r.first_start.unwrap_or(r.prepared.request.arrival),
                    completion,
                    isolated_cycles: r.prepared.isolated_cycles(),
                    estimated_cycles: r.estimated,
                    preemption_count: r.preemption_count,
                    kill_restarts: r.kill_restarts,
                    checkpoint_overhead: r.checkpoint_overhead,
                    restore_overhead: r.restore_overhead,
                    max_checkpoint_bytes: r.max_checkpoint_bytes,
                }
            })
            .collect();
        records.sort_by_key(|r| r.id);

        let outcome = SimOutcome {
            records,
            makespan,
            scheduler_invocations: self.scheduler_invocations,
            checkpoint_preemptions: self.checkpoint_preemptions,
            kill_preemptions: self.kill_preemptions,
            drain_decisions: self.drain_decisions,
            quanta_skipped: self.quanta_skipped,
            replayed_token_grants: self.replayed_token_grants,
        };
        (outcome, self.sink)
    }

    /// Mutable access to the attached trace sink (e.g. to drain a ring
    /// buffer mid-run).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use dnn_models::SeqSpec;

    fn npu() -> NpuConfig {
        NpuConfig::paper_default()
    }

    fn prepare(requests: Vec<TaskRequest>) -> Vec<PreparedTask> {
        let cfg = npu();
        requests
            .into_iter()
            .map(|r| PreparedTask::prepare(r, &cfg))
            .collect()
    }

    fn simple_requests() -> Vec<TaskRequest> {
        vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnVggNet).with_priority(Priority::Low),
            TaskRequest::new(TaskId(1), ModelKind::CnnAlexNet)
                .with_priority(Priority::High)
                .with_arrival(Cycles::new(200_000)),
            TaskRequest::new(TaskId(2), ModelKind::CnnGoogLeNet)
                .with_priority(Priority::Medium)
                .with_arrival(Cycles::new(400_000)),
        ]
    }

    fn run(
        policy: PolicyKind,
        preemption: PreemptionMode,
        requests: Vec<TaskRequest>,
    ) -> SimOutcome {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::named(policy, preemption));
        let prepared = prepare(requests);
        sim.run(&prepared)
    }

    #[test]
    fn single_task_runs_in_isolated_time() {
        let outcome = run(
            PolicyKind::Fcfs,
            PreemptionMode::NonPreemptive,
            vec![TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet)],
        );
        let record = &outcome.records[0];
        assert_eq!(record.turnaround(), record.isolated_cycles);
        assert!((record.ntt() - 1.0).abs() < 1e-9);
        assert_eq!(record.preemption_count, 0);
        assert_eq!(outcome.makespan, record.completion);
    }

    #[test]
    fn all_tasks_complete_under_every_policy_and_mode() {
        for policy in PolicyKind::ALL {
            for preemption in [
                PreemptionMode::NonPreemptive,
                PreemptionMode::Static(PreemptionMechanism::Checkpoint),
                PreemptionMode::Static(PreemptionMechanism::Kill),
                PreemptionMode::Dynamic,
                PreemptionMode::DynamicKill,
            ] {
                // Static(KILL) + round-robin livelocks by construction (each
                // task keeps discarding the other's progress every quantum);
                // the paper never evaluates that combination and the engine
                // reports it via its livelock safety valve, so skip it here.
                if policy == PolicyKind::RoundRobin
                    && preemption == PreemptionMode::Static(PreemptionMechanism::Kill)
                {
                    continue;
                }
                let outcome = run(policy, preemption, simple_requests());
                assert_eq!(outcome.records.len(), 3, "{policy:?}/{preemption:?}");
                for record in &outcome.records {
                    assert!(record.completion >= record.arrival);
                    assert!(
                        record.ntt() >= 0.999,
                        "{policy:?}/{preemption:?}: NTT {}",
                        record.ntt()
                    );
                }
            }
        }
    }

    #[test]
    fn np_fcfs_makes_later_tasks_wait_for_earlier_ones() {
        let outcome = run(
            PolicyKind::Fcfs,
            PreemptionMode::NonPreemptive,
            simple_requests(),
        );
        // Task 1 (AlexNet, high priority) arrives while VGG runs; under
        // NP-FCFS it cannot start until VGG finishes.
        let vgg = outcome.record(TaskId(0)).unwrap();
        let alexnet = outcome.record(TaskId(1)).unwrap();
        assert!(alexnet.first_start >= vgg.completion);
        assert!(alexnet.ntt() > 2.0);
    }

    #[test]
    fn preemptive_hpf_lets_the_high_priority_task_jump_the_queue() {
        let np = run(
            PolicyKind::Hpf,
            PreemptionMode::NonPreemptive,
            simple_requests(),
        );
        let preemptive = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let np_high = np.record(TaskId(1)).unwrap();
        let p_high = preemptive.record(TaskId(1)).unwrap();
        assert!(
            p_high.turnaround() < np_high.turnaround(),
            "preemption should shorten the high-priority task's turnaround ({} vs {})",
            p_high.turnaround(),
            np_high.turnaround()
        );
        assert!(preemptive.checkpoint_preemptions > 0);
        // The preempted VGG task records checkpoint overhead.
        let vgg = preemptive.record(TaskId(0)).unwrap();
        assert!(vgg.preemption_count > 0);
        assert!(vgg.checkpoint_overhead > Cycles::ZERO);
        assert!(vgg.max_checkpoint_bytes > 0);
    }

    #[test]
    fn kill_wastes_work_and_hurts_the_preempted_task() {
        let checkpoint = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let kill = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Kill),
            simple_requests(),
        );
        let vgg_ckpt = checkpoint.record(TaskId(0)).unwrap();
        let vgg_kill = kill.record(TaskId(0)).unwrap();
        assert!(vgg_kill.kill_restarts > 0);
        assert_eq!(vgg_ckpt.kill_restarts, 0);
        assert!(
            vgg_kill.turnaround() > vgg_ckpt.turnaround(),
            "KILL should waste the preempted task's progress"
        );
        // KILL has no checkpoint latency.
        assert_eq!(vgg_kill.checkpoint_overhead, Cycles::ZERO);
    }

    #[test]
    fn checkpoint_overhead_is_microseconds_not_milliseconds() {
        let outcome = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let cfg = npu();
        for record in &outcome.records {
            if let Some(latency) = record.mean_preemption_latency() {
                let us = cfg.cycles_to_micros(latency);
                assert!(us < 100.0, "preemption latency {us} us is too large");
            }
        }
    }

    #[test]
    fn dynamic_mode_sometimes_drains() {
        // A long task that is nearly finished when a long candidate arrives
        // should be drained rather than preempted.
        let requests = vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet).with_priority(Priority::Low),
            TaskRequest::new(TaskId(1), ModelKind::CnnVggNet)
                .with_priority(Priority::High)
                // Arrives when AlexNet is ~90% done.
                .with_arrival(Cycles::new(1_400_000)),
        ];
        let outcome = run(PolicyKind::Hpf, PreemptionMode::Dynamic, requests);
        assert!(outcome.drain_decisions > 0);
        assert_eq!(outcome.checkpoint_preemptions, 0);
    }

    #[test]
    fn prema_improves_high_priority_latency_over_np_fcfs() {
        let baseline = run(
            PolicyKind::Fcfs,
            PreemptionMode::NonPreemptive,
            simple_requests(),
        );
        let prema = run(
            PolicyKind::Prema,
            PreemptionMode::Dynamic,
            simple_requests(),
        );
        let base_high = baseline.record(TaskId(1)).unwrap();
        let prema_high = prema.record(TaskId(1)).unwrap();
        assert!(
            prema_high.turnaround() < base_high.turnaround(),
            "PREMA should improve the high-priority task's turnaround"
        );
        assert!(prema.antt() <= baseline.antt() + 1e-9);
    }

    #[test]
    fn restore_overhead_is_charged_when_a_checkpointed_task_resumes() {
        let outcome = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let preempted: Vec<_> = outcome
            .records
            .iter()
            .filter(|r| r.preemption_count > 0)
            .collect();
        assert!(!preempted.is_empty());
        assert!(preempted.iter().any(|r| r.restore_overhead > Cycles::ZERO));
    }

    #[test]
    fn simulator_accessors_and_prepare() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        assert_eq!(sim.npu_config(), &npu());
        assert_eq!(sim.scheduler_config(), &SchedulerConfig::paper_default());
        let prepared = sim.prepare(&[TaskRequest::new(TaskId(0), ModelKind::CnnMobileNet)]);
        assert_eq!(prepared.len(), 1);
        assert!(prepared[0].isolated_cycles() > Cycles::ZERO);
        assert_eq!(
            prepared[0].estimated_cycles(),
            prepared[0].isolated_cycles()
        );
    }

    #[test]
    fn estimates_override_plan_length() {
        let cfg = npu();
        let request =
            TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet).with_estimate(Cycles::new(42));
        let prepared = PreparedTask::prepare(request, &cfg);
        assert_eq!(prepared.estimated_cycles(), Cycles::new(42));
        assert!(prepared.isolated_cycles() > Cycles::new(42));
    }

    #[test]
    fn rnn_tasks_also_run_to_completion() {
        let requests = vec![
            TaskRequest::new(TaskId(0), ModelKind::RnnSentiment)
                .with_seq(SeqSpec::new(20, 20))
                .with_priority(Priority::Low),
            TaskRequest::new(TaskId(1), ModelKind::RnnTranslation1)
                .with_seq(SeqSpec::new(15, 18))
                .with_priority(Priority::High)
                .with_arrival(Cycles::new(100_000)),
        ];
        let outcome = run(PolicyKind::Prema, PreemptionMode::Dynamic, requests);
        assert_eq!(outcome.records.len(), 2);
        for record in &outcome.records {
            assert!(record.ntt() >= 0.999);
        }
    }

    #[test]
    fn realign_quantum_matches_the_bump_loop() {
        for (next_quantum, now, quantum) in [
            (175_000u64, 0u64, 175_000u64),
            (175_000, 175_000, 175_000),
            (175_000, 175_001, 175_000),
            (175_000, 10_000_000, 175_000),
            (350_000, 349_999, 175_000),
            (1, 1_000_000_007, 3),
        ] {
            let mut looped = Cycles::new(next_quantum);
            let now = Cycles::new(now);
            let quantum = Cycles::new(quantum);
            while looped <= now {
                looped += quantum;
            }
            assert_eq!(
                realign_quantum(Cycles::new(next_quantum), now, quantum),
                looped,
                "next_quantum {next_quantum:?} now {now:?} quantum {quantum:?}"
            );
        }
    }

    #[test]
    fn summary_matches_the_two_pass_accessors() {
        let outcome = run(
            PolicyKind::Prema,
            PreemptionMode::Dynamic,
            simple_requests(),
        );
        let summary = outcome.summary();
        assert_eq!(summary.task_count, outcome.records.len());
        // Bit-identical: summary accumulates in the same record order.
        assert_eq!(summary.antt, outcome.antt());
        assert_eq!(summary.stp, outcome.stp());
        let preemptions: u64 = outcome.records.iter().map(|r| r.preemption_count).sum();
        let kills: u64 = outcome.records.iter().map(|r| r.kill_restarts).sum();
        assert_eq!(summary.preemptions, preemptions);
        assert_eq!(summary.kill_restarts, kills);

        let empty = SimOutcome {
            records: Vec::new(),
            makespan: Cycles::ZERO,
            scheduler_invocations: 0,
            checkpoint_preemptions: 0,
            kill_preemptions: 0,
            drain_decisions: 0,
            quanta_skipped: 0,
            replayed_token_grants: 0,
        };
        assert_eq!(empty.summary(), OutcomeSummary::default());
        assert_eq!(empty.antt(), 0.0);
    }

    #[test]
    fn fast_forward_is_bit_identical_to_the_stepped_reference() {
        for policy in [PolicyKind::Fcfs, PolicyKind::Prema, PolicyKind::RoundRobin] {
            for preemption in [
                PreemptionMode::NonPreemptive,
                PreemptionMode::Dynamic,
                PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            ] {
                let sim = NpuSimulator::new(npu(), SchedulerConfig::named(policy, preemption));
                let prepared = prepare(simple_requests());
                let fast = sim.run(&prepared);
                let stepped = sim.run_reference(&prepared);
                assert_eq!(fast, stepped, "{policy:?}/{preemption:?}");
                // The skipped quanta are still accounted for: the single
                // isolated-task tail alone spans several quanta.
                assert!(fast.scheduler_invocations > 3);
            }
        }
    }

    #[test]
    fn resident_tasks_cover_exactly_the_incomplete_tasks_while_paused() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(simple_requests());
        let mut session = sim.session(&prepared);
        let mut horizon = Cycles::ZERO;
        loop {
            let outcome = session.run_until(horizon);
            let residents = session.resident_tasks();
            // The index-set walk (waiting + running + pending arrivals) must
            // agree with the brute-force definition: every incomplete task,
            // exactly once.
            assert_eq!(residents.len(), session.queue_depth());
            let mut ids: Vec<TaskId> = residents.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), residents.len(), "no duplicates");
            for resident in &residents {
                assert!(
                    resident.estimated_remaining() <= resident.estimated_total,
                    "progress never exceeds the estimate's frame"
                );
            }
            if outcome == StepOutcome::Drained {
                assert!(residents.is_empty());
                break;
            }
            horizon += Cycles::new(250_000);
        }
    }

    #[test]
    fn revoked_task_can_be_reinjected_into_the_same_session() {
        // Multi-hop work stealing can hand a task back to a node that
        // previously revoked it; the session revives the slot.
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnVggNet),
            TaskRequest::new(TaskId(1), ModelKind::CnnAlexNet).with_arrival(Cycles::new(500_000)),
        ]);
        let mut session = sim.session(&prepared);
        assert_eq!(session.run_until(Cycles::new(100_000)), StepOutcome::Paused);
        let handed_back = session.revoke(TaskId(1)).expect("never started");
        assert_eq!(session.queue_depth(), 1);
        session.inject(handed_back).expect("id was revoked");
        assert_eq!(session.queue_depth(), 2);
        assert_eq!(session.run_until(Cycles::MAX), StepOutcome::Drained);
        let outcome = session.finish();
        assert_eq!(outcome.records.len(), 2, "revived task completes once");
        assert!(outcome.record(TaskId(1)).is_some());
    }

    #[test]
    fn session_misuse_returns_typed_errors_and_leaves_the_session_intact() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet),
            TaskRequest::new(TaskId(1), ModelKind::CnnMobileNet)
                .with_arrival(Cycles::new(10 * prepared_alexnet_cycles().get())),
        ]);
        let mut session = sim.session(&prepared);
        // Injecting a live duplicate is refused as a value.
        assert_eq!(
            session.inject(prepared[0].clone()),
            Err(EngineError::DuplicateTaskId(TaskId(0))),
        );
        let version = session.state_version();
        assert_eq!(
            session.revoke(TaskId(99)).unwrap_err(),
            EngineError::UnknownTask(TaskId(99))
        );
        assert_eq!(
            session.state_version(),
            version,
            "failed calls mutate nothing"
        );
        // Run task 0 to completion (task 1 arrives much later).
        let _ = session.run_until(Cycles::new(1));
        assert_eq!(
            session.revoke(TaskId(0)).unwrap_err(),
            EngineError::TaskAlreadyStarted(TaskId(0))
        );
        while session.running_task() == Some(TaskId(0)) {
            let bound = session.next_completion_time().unwrap();
            let _ = session.run_until(bound);
        }
        assert_eq!(
            session.revoke(TaskId(0)).unwrap_err(),
            EngineError::TaskCompleted(TaskId(0))
        );
        let handed = session.revoke(TaskId(1)).expect("never started");
        assert_eq!(
            session.revoke(TaskId(1)).unwrap_err(),
            EngineError::TaskRevoked(TaskId(1))
        );
        // Errors carry a human-readable description.
        let err = session.inject(prepared[0].clone()).unwrap_err();
        assert!(err.to_string().contains("TaskId(0)"), "{err}");
        session.inject(handed).expect("revoked slot revives");
        assert_eq!(session.run_until(Cycles::MAX), StepOutcome::Drained);
        assert_eq!(session.finish().records.len(), 2);
    }

    fn prepared_alexnet_cycles() -> Cycles {
        PreparedTask::prepare(TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet), &npu())
            .isolated_cycles()
    }

    #[test]
    fn fail_salvages_residents_at_their_last_commit_point() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(simple_requests());
        let mut session = sim.session(&prepared);
        // Pause mid-flight: task 0 is running, the others are queued or
        // pending.
        assert_eq!(session.run_until(Cycles::new(500_000)), StepOutcome::Paused);
        let depth = session.queue_depth();
        assert!(depth > 0);
        let salvaged = session.fail();
        assert_eq!(salvaged.len(), depth);
        assert_eq!(session.queue_depth(), 0);
        assert!(session.is_drained());
        // Manifests come back in ascending id order, and a started task
        // resumes from an interval boundary with its progress floored, not
        // zeroed.
        for pair in salvaged.windows(2) {
            assert!(pair[0].prepared.request.id < pair[1].prepared.request.id);
        }
        for s in &salvaged {
            assert!(s.resume_executed <= s.prepared.isolated_cycles());
            if s.first_start.is_none() {
                assert!(
                    s.resume_executed.is_zero(),
                    "never started salvages verbatim"
                );
                assert_eq!(s.checkpoint_bytes, 0);
            }
            // The commit point sits exactly on an interval boundary.
            let mut floor = ProgressCursor::start();
            floor.advance(&s.prepared.plan, s.resume_executed);
            assert_eq!(floor.cycles_to_boundary(&s.prepared.plan), Cycles::ZERO);
            assert_eq!(floor.in_interval(&s.prepared.plan), Cycles::ZERO);
        }
        let started = salvaged.iter().find(|s| s.first_start.is_some());
        let started = started.expect("the running task had started");
        assert!(!started.resume_executed.is_zero(), "progress was preserved");
    }

    #[test]
    fn salvaged_task_resumes_on_a_new_session_and_pays_the_restore_dma() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(vec![TaskRequest::new(TaskId(0), ModelKind::CnnVggNet)]);
        let mut session = sim.session(&prepared);
        assert_eq!(session.run_until(Cycles::new(600_000)), StepOutcome::Paused);
        let salvaged = session.fail().remove(0);
        assert!(salvaged.resumes_from_checkpoint());
        assert!(salvaged.checkpoint_bytes > 0);

        // Checkpoint-priced recovery on a fresh node at t = 1_000_000.
        let recover_at = Cycles::new(1_000_000);
        let mut node = sim.session(&[]);
        node.inject_salvaged(salvaged.clone(), recover_at)
            .expect("fresh node");
        assert_eq!(node.run_until(Cycles::MAX), StepOutcome::Drained);
        let resumed = node.finish();
        let record = &resumed.records[0];
        assert!(
            record.restore_overhead > Cycles::ZERO,
            "recovery pays the restore DMA for the checkpointed context"
        );
        assert!(
            record.first_start < recover_at,
            "the original first start survives the hop"
        );
        // The resumed run only executes the remaining cycles: completion is
        // admission + restore + remaining, well short of a from-zero rerun.
        let remaining = record.isolated_cycles - salvaged.resume_executed;
        assert_eq!(
            record.completion,
            recover_at + record.restore_overhead + remaining
        );

        // Restart-from-zero recovery re-executes the whole plan.
        let mut zero_node = sim.session(&[]);
        zero_node
            .inject_salvaged(salvaged.restarted_from_zero(), recover_at)
            .expect("fresh node");
        assert_eq!(zero_node.run_until(Cycles::MAX), StepOutcome::Drained);
        let zero = zero_node.finish();
        assert!(
            zero.records[0].completion > record.completion,
            "checkpoint recovery beats restart-from-zero"
        );
    }

    #[test]
    fn stall_freezes_the_clock_and_shifts_completion_bounds() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(vec![TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet)]);
        let mut session = sim.session(&prepared);
        assert_eq!(session.run_until(Cycles::new(100_000)), StepOutcome::Paused);
        let before = session.next_completion_time().unwrap();
        let stall_end = Cycles::new(5_000_000);
        session.stall(stall_end);
        assert_eq!(session.stalled_until(), Some(stall_end));
        let shifted = session.next_completion_time().unwrap();
        assert_eq!(shifted, before - Cycles::new(100_000) + stall_end);
        assert!(session.completion_lower_bound().unwrap() >= stall_end);
        // Pausing inside the stall makes clock progress but no execution.
        assert_eq!(session.run_until(Cycles::new(200_000)), StepOutcome::Paused);
        assert_eq!(session.now(), Cycles::new(200_000));
        assert_eq!(session.stalled_until(), Some(stall_end));
        assert_eq!(session.run_until(Cycles::MAX), StepOutcome::Drained);
        let outcome = session.finish();
        assert_eq!(
            outcome.records[0].completion,
            stall_end + before - Cycles::new(100_000),
            "the frozen window pushes completion out one-for-one"
        );
    }

    #[test]
    fn zero_remaining_running_task_completes_at_the_pause_horizon() {
        // Regression: a running task whose plan ends in zero-cycle
        // intervals can reach remaining == 0 exactly at a pause horizon
        // without being complete. `run_until(now)` must then finish it
        // rather than pausing forever — the cluster's completion-driven
        // loops advance sessions to exactly `next_completion_time()` and
        // rely on the task set shrinking there. Drive a session to every
        // reported completion bound and require global progress.
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(simple_requests());
        let mut session = sim.session(&prepared);
        let mut guard = 0u64;
        while let Some(bound) = session.next_completion_time() {
            let _ = session.run_until(bound);
            guard += 1;
            // Pre-fix, a zero-remaining runner paused at `now == bound`
            // repeats this state forever; post-fix the loop drains.
            assert!(guard < 100_000, "completion-bound driving livelocked");
        }
        assert!(session.is_drained());
        let outcome = session.finish();
        assert_eq!(outcome.records.len(), 3);
    }

    #[test]
    fn completion_lower_bound_never_exceeds_an_actual_completion() {
        // The certificate contract: advancing to any horizon strictly below
        // the reported lower bound never shrinks the task set.
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(simple_requests());
        let mut session = sim.session(&prepared);
        let mut guard = 0u64;
        while let Some(bound) = session.completion_lower_bound() {
            let depth_before = session.queue_depth();
            if bound > session.now() {
                // One cycle short of the certificate: nothing may complete.
                let _ = session.run_until(bound - Cycles::new(1));
                assert_eq!(
                    session.queue_depth(),
                    depth_before,
                    "a completion occurred strictly before the certificate"
                );
            }
            let _ = session.run_until(bound);
            guard += 1;
            assert!(guard < 100_000, "certificate driving livelocked");
        }
        assert!(session.is_drained());
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_task_list_rejected() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let _ = sim.run(&[]);
    }

    #[test]
    #[should_panic(expected = "task IDs must be unique")]
    fn duplicate_ids_rejected() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet),
            TaskRequest::new(TaskId(0), ModelKind::CnnMobileNet),
        ]);
        let _ = sim.run(&prepared);
    }

    #[test]
    fn clock_scale_conversions_are_exact_and_partition_invariant() {
        // work_in over any partition of a wall span equals work_in of the
        // whole span, and consume_work's wall span converts back to exactly
        // the requested work — the two invariants the bit-identity contract
        // under degradation stands on.
        for &(num, den) in &[(1u32, 2u32), (2, 3), (3, 7), (1, 1), (5, 5)] {
            let mut whole = ClockScale::new(num, den);
            let total_work = whole.work_in(Cycles::new(10_007));
            let mut split = ClockScale::new(num, den);
            let mut split_work = Cycles::ZERO;
            let mut left = 10_007u64;
            for piece in [1u64, 2, 3, 500, 4_999] {
                split_work += split.work_in(Cycles::new(piece));
                left -= piece;
            }
            split_work += split.work_in(Cycles::new(left));
            assert_eq!(split_work, total_work, "{num}/{den}");
            assert_eq!(split.acc, whole.acc, "{num}/{den}: carries agree");

            for work in [0u64, 1, 2, 97, 1_000] {
                let mut scale = ClockScale::new(num, den);
                scale.work_in(Cycles::new(13)); // arbitrary non-zero carry
                let peek = scale.wall_needed(Cycles::new(work));
                let mut consumer = scale;
                let wall = consumer.consume_work(Cycles::new(work));
                assert_eq!(wall, peek, "peek matches consumption");
                // Replaying that wall span yields exactly the work back.
                let mut replay = scale;
                assert_eq!(replay.work_in(wall), Cycles::new(work));
                assert_eq!(replay.acc, consumer.acc, "residues agree");
            }
        }
    }

    #[test]
    fn degraded_sessions_stay_bit_identical_across_engines_and_horizons() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(simple_requests());

        let run_scaled = |mut session: SimSession, chop: Option<u64>| {
            session.set_clock_scale(2, 7);
            if let Some(step) = chop {
                let mut horizon = Cycles::new(step);
                while session.run_until(horizon) == StepOutcome::Paused {
                    horizon += Cycles::new(step);
                }
            } else {
                assert_eq!(session.run_until(Cycles::MAX), StepOutcome::Drained);
            }
            session.finish()
        };

        let fast = run_scaled(sim.session(&prepared), None);
        let reference = run_scaled(sim.session_reference(&prepared), None);
        let chopped = run_scaled(sim.session(&prepared), Some(77_773));
        assert_eq!(fast, reference, "fast-forward == step-every-quantum");
        assert_eq!(fast, chopped, "suspension is pure under scaling");

        // 2/7 speed stretches the makespan strictly (and roughly 7/2x).
        let unscaled = sim.run(&prepared);
        assert!(fast.makespan > unscaled.makespan * 3);
        assert!(fast.makespan < unscaled.makespan * 4);
    }

    #[test]
    fn scaled_completion_bounds_are_exact_for_a_lone_runner() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(vec![TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet)]);
        let mut session = sim.session(&prepared);
        session.set_clock_scale(1, 3);
        assert_eq!(session.clock_scale(), (1, 3));
        assert_eq!(session.run_until(Cycles::new(100_000)), StepOutcome::Paused);
        let bound = session.next_completion_time().expect("running");
        assert!(session.completion_lower_bound().expect("running") <= bound);
        let wall = session.scaled_wall_for_work(Cycles::new(100));
        assert!(
            wall >= Cycles::new(298) && wall <= Cycles::new(300),
            "100 work cycles at 1/3 speed cost 300 wall cycles minus the carry, got {wall:?}"
        );
        // The bound is exact: one cycle earlier the task is still live.
        assert_eq!(
            session.run_until(bound - Cycles::new(1)),
            StepOutcome::Paused
        );
        assert!(!session.is_drained());
        assert_eq!(session.run_until(bound), StepOutcome::Drained);
        let record = session.finish();
        assert_eq!(record.records[0].completion, bound);
    }

    #[test]
    fn checkpoint_out_is_the_voluntary_twin_of_fail() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(simple_requests());
        let mut session = sim.session(&prepared);
        assert_eq!(session.run_until(Cycles::new(500_000)), StepOutcome::Paused);
        let running = session.running_task().expect("mid-flight");

        // Misuse surfaces as typed errors, mutating nothing.
        let version = session.state_version();
        assert_eq!(
            session.checkpoint_out(TaskId(99)).unwrap_err(),
            EngineError::UnknownTask(TaskId(99))
        );
        let never_started = session
            .resident_tasks()
            .iter()
            .find(|r| !r.started)
            .map(|r| r.id)
            .expect("a lower-priority resident has not started at 500k cycles");
        assert_eq!(
            session.checkpoint_out(never_started).unwrap_err(),
            EngineError::TaskNotStarted(never_started),
            "a never-started resident has no checkpoint"
        );
        assert_eq!(session.state_version(), version, "errors mutate nothing");

        // Extracting the runner salvages its last commit point, exactly
        // like fail() reports for the same task at the same instant on an
        // identically driven twin session.
        let mut twin = sim.session(&prepared);
        assert_eq!(twin.run_until(Cycles::new(500_000)), StepOutcome::Paused);
        let expected = twin
            .fail()
            .into_iter()
            .find(|s| s.prepared.request.id == running)
            .expect("runner is resident on the twin");
        let depth = session.queue_depth();
        let preview = session
            .checkpoint_preview(running)
            .expect("started resident");
        let salvage = session.checkpoint_out(running).expect("started resident");
        assert_eq!(
            preview,
            (salvage.resume_executed, salvage.checkpoint_bytes),
            "the preview prices exactly what extraction salvages"
        );
        assert_eq!(session.queue_depth(), depth - 1);
        assert!(session.running_task().is_none());
        assert_eq!(salvage.resume_executed, expected.resume_executed);
        assert_eq!(salvage.checkpoint_bytes, expected.checkpoint_bytes);
        assert!(salvage.resume_executed > Cycles::ZERO);
        assert!(salvage.checkpoint_bytes > 0);
        assert_eq!(
            session.checkpoint_out(running).unwrap_err(),
            EngineError::TaskRevoked(running)
        );

        // The manifest resumes elsewhere and the task completes exactly
        // once across the two sessions.
        let mut target = sim.session(&[]);
        target
            .inject_salvaged(salvage, Cycles::new(600_000))
            .expect("fresh session");
        assert_eq!(target.run_until(Cycles::MAX), StepOutcome::Drained);
        assert_eq!(session.run_until(Cycles::MAX), StepOutcome::Drained);
        let moved = target.finish();
        let stayed = session.finish();
        assert_eq!(moved.records.len(), 1);
        assert_eq!(moved.records[0].id, running);
        assert!(moved.records[0].restore_overhead > Cycles::ZERO);
        assert_eq!(stayed.records.len(), 2);
        assert!(stayed.records.iter().all(|r| r.id != running));
    }
}
