//! The multi-task NPU simulation engine.
//!
//! [`NpuSimulator`] drives a set of prepared inference tasks through one NPU
//! under a [`SchedulerConfig`]: it admits arrivals, wakes the scheduler on
//! the three events of Section V-C (task arrival, task completion, expiry of
//! the scheduling period), asks the configured policy for the next task,
//! applies the configured preemption mode (including the Algorithm 3 dynamic
//! mechanism selection), and charges checkpoint / restore latencies through
//! the `npu-sim` DMA model.
//!
//! The engine works at preemption-interval granularity: a running task's
//! progress is tracked with a [`ProgressCursor`] over its [`ExecutionPlan`],
//! and CHECKPOINT preemptions take effect at the next interval boundary, as
//! on the real hardware (`GEMM_OP` commit points).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dnn_models::ModelKind;
use npu_sim::{CheckpointModel, Cycles, NpuConfig};

use crate::config::{PreemptionMode, SchedulerConfig};
use crate::plan::{ExecutionPlan, ProgressCursor};
use crate::policy::{make_policy, TaskView};
use crate::preemption::{select_mechanism, MechanismDecisionInputs, PreemptionMechanism};
use crate::task::{Priority, TaskId, TaskRequest, TaskState};

/// A request whose execution plan has been compiled for a specific NPU
/// configuration. Plans are shared via [`Arc`] so the same workload can be
/// replayed under many scheduler configurations without recompiling.
#[derive(Debug, Clone)]
pub struct PreparedTask {
    /// The original request.
    pub request: TaskRequest,
    /// The compiled execution plan (at the request's *actual* sequence
    /// lengths).
    pub plan: Arc<ExecutionPlan>,
}

impl PreparedTask {
    /// Compiles the request's plan for the given NPU configuration.
    pub fn prepare(request: TaskRequest, npu: &NpuConfig) -> Self {
        let plan = ExecutionPlan::compile_shared(request.model, request.batch, request.seq, npu);
        PreparedTask { request, plan }
    }

    /// The task's isolated (uninterrupted) execution time.
    pub fn isolated_cycles(&self) -> Cycles {
        self.plan.total_cycles()
    }

    /// The estimate the scheduler will use: the predictor-provided estimate
    /// if present, otherwise the exact plan length (oracle estimates).
    pub fn estimated_cycles(&self) -> Cycles {
        self.request
            .estimated_cycles
            .unwrap_or_else(|| self.plan.total_cycles())
    }
}

/// Per-task results of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task identifier.
    pub id: TaskId,
    /// The model the task ran.
    pub model: ModelKind,
    /// Batch size.
    pub batch: u64,
    /// Priority level.
    pub priority: Priority,
    /// Dispatch time.
    pub arrival: Cycles,
    /// When the task first started executing on the NPU.
    pub first_start: Cycles,
    /// When the task completed.
    pub completion: Cycles,
    /// The task's isolated execution time (`C_single`).
    pub isolated_cycles: Cycles,
    /// The estimate the scheduler used.
    pub estimated_cycles: Cycles,
    /// Number of times the task was preempted (CHECKPOINT or KILL).
    pub preemption_count: u64,
    /// Number of KILL restarts the task suffered.
    pub kill_restarts: u64,
    /// Total cycles spent checkpointing this task's context.
    pub checkpoint_overhead: Cycles,
    /// Total cycles spent restoring this task's context.
    pub restore_overhead: Cycles,
    /// The largest context state this task ever checkpointed, in bytes.
    pub max_checkpoint_bytes: u64,
}

impl TaskRecord {
    /// Turnaround time under multi-tasking (`C_multi`): dispatch to
    /// completion.
    pub fn turnaround(&self) -> Cycles {
        self.completion - self.arrival
    }

    /// Time the task waited before first receiving the NPU.
    pub fn waiting(&self) -> Cycles {
        self.first_start - self.arrival
    }

    /// Normalized turnaround time (Equation 1).
    pub fn ntt(&self) -> f64 {
        self.turnaround().ratio(self.isolated_cycles)
    }

    /// The task's progress relative to isolated execution (`C_single/C_multi`).
    pub fn progress(&self) -> f64 {
        self.isolated_cycles.ratio(self.turnaround())
    }

    /// Average preemption latency experienced per preemption, if any.
    pub fn mean_preemption_latency(&self) -> Option<Cycles> {
        if self.preemption_count == 0 {
            None
        } else {
            Some(self.checkpoint_overhead / self.preemption_count)
        }
    }
}

/// Aggregate results of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Per-task records, in task-ID order.
    pub records: Vec<TaskRecord>,
    /// Completion time of the last task.
    pub makespan: Cycles,
    /// Number of scheduler wakeups.
    pub scheduler_invocations: u64,
    /// Number of preemptions performed with CHECKPOINT.
    pub checkpoint_preemptions: u64,
    /// Number of preemptions performed with KILL.
    pub kill_preemptions: u64,
    /// Number of times the dynamic mechanism selection chose DRAIN.
    pub drain_decisions: u64,
}

impl SimOutcome {
    /// The record for `id`, if the task was part of the run.
    pub fn record(&self, id: TaskId) -> Option<&TaskRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Average normalized turnaround time across all tasks.
    pub fn antt(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(TaskRecord::ntt).sum::<f64>() / self.records.len() as f64
    }

    /// System throughput: sum of per-task progress.
    pub fn stp(&self) -> f64 {
        self.records.iter().map(TaskRecord::progress).sum()
    }
}

/// The per-task state the engine tracks while simulating.
#[derive(Debug)]
struct Runtime {
    prepared: PreparedTask,
    cursor: ProgressCursor,
    state: TaskState,
    arrived: bool,
    tokens: f64,
    waited: Cycles,
    waited_at_last_grant: Cycles,
    estimated: Cycles,
    first_start: Option<Cycles>,
    completion: Option<Cycles>,
    last_scheduled: Option<Cycles>,
    checkpointed_bytes: u64,
    needs_restore: bool,
    preemption_count: u64,
    kill_restarts: u64,
    checkpoint_overhead: Cycles,
    restore_overhead: Cycles,
    max_checkpoint_bytes: u64,
}

impl Runtime {
    fn new(prepared: PreparedTask) -> Self {
        let estimated = prepared.estimated_cycles();
        let tokens = prepared.request.priority.token_grant();
        Runtime {
            prepared,
            cursor: ProgressCursor::start(),
            state: TaskState::Ready,
            arrived: false,
            tokens,
            waited: Cycles::ZERO,
            waited_at_last_grant: Cycles::ZERO,
            estimated,
            first_start: None,
            completion: None,
            last_scheduled: None,
            checkpointed_bytes: 0,
            needs_restore: false,
            preemption_count: 0,
            kill_restarts: 0,
            checkpoint_overhead: Cycles::ZERO,
            restore_overhead: Cycles::ZERO,
            max_checkpoint_bytes: 0,
        }
    }

    fn is_waiting(&self) -> bool {
        self.arrived
            && matches!(self.state, TaskState::Ready | TaskState::Checkpointed)
            && self.completion.is_none()
    }

    fn view(&self, is_running: bool) -> TaskView {
        TaskView {
            id: self.prepared.request.id,
            priority: self.prepared.request.priority,
            arrival: self.prepared.request.arrival,
            tokens: self.tokens,
            estimated_total: self.estimated,
            executed: self.cursor.executed(),
            waited: self.waited,
            last_scheduled: self.last_scheduled,
            is_running,
        }
    }
}

/// The multi-task NPU simulator.
#[derive(Debug, Clone)]
pub struct NpuSimulator {
    npu: NpuConfig,
    sched: SchedulerConfig,
}

impl NpuSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if either configuration fails validation.
    pub fn new(npu: NpuConfig, sched: SchedulerConfig) -> Self {
        if let Err(msg) = npu.validate() {
            panic!("invalid NpuConfig: {msg}");
        }
        if let Err(msg) = sched.validate() {
            panic!("invalid SchedulerConfig: {msg}");
        }
        NpuSimulator { npu, sched }
    }

    /// The NPU configuration.
    pub fn npu_config(&self) -> &NpuConfig {
        &self.npu
    }

    /// The scheduler configuration.
    pub fn scheduler_config(&self) -> &SchedulerConfig {
        &self.sched
    }

    /// Prepares (compiles) a set of requests for this simulator's NPU.
    pub fn prepare(&self, requests: &[TaskRequest]) -> Vec<PreparedTask> {
        requests
            .iter()
            .map(|r| PreparedTask::prepare(*r, &self.npu))
            .collect()
    }

    /// Runs the multi-task simulation to completion.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or contains duplicate task IDs.
    pub fn run(&self, tasks: &[PreparedTask]) -> SimOutcome {
        assert!(!tasks.is_empty(), "at least one task is required");
        let mut ids: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len(), "task IDs must be unique");

        let mut policy = make_policy(self.sched.policy, self.sched.token_scale);
        let checkpoint_model = CheckpointModel::new(&self.npu);
        let quantum = self.sched.quantum_cycles(&self.npu);

        let mut runtimes: Vec<Runtime> = tasks.iter().cloned().map(Runtime::new).collect();
        // Arrival order: indices sorted by arrival time.
        let mut arrival_order: Vec<usize> = (0..runtimes.len()).collect();
        arrival_order.sort_by_key(|&i| (runtimes[i].prepared.request.arrival, runtimes[i].prepared.request.id));
        let mut next_arrival_idx = 0usize;

        let mut now = Cycles::ZERO;
        let mut next_quantum = quantum;
        let mut running: Option<usize> = None;

        let mut scheduler_invocations = 0u64;
        let mut checkpoint_preemptions = 0u64;
        let mut kill_preemptions = 0u64;
        let mut drain_decisions = 0u64;

        let completed = |runtimes: &[Runtime]| runtimes.iter().filter(|r| r.completion.is_some()).count();

        // Safety valve against scheduler livelock. The one known pathological
        // configuration is Static(KILL) combined with round-robin ordering:
        // two tasks can keep discarding each other's progress forever. Real
        // workloads finish with a few thousand wakeups, so this limit only
        // trips on genuine livelock.
        const MAX_SCHEDULER_INVOCATIONS: u64 = 5_000_000;

        while completed(&runtimes) < runtimes.len() {
            assert!(
                scheduler_invocations < MAX_SCHEDULER_INVOCATIONS,
                "scheduler livelock detected after {MAX_SCHEDULER_INVOCATIONS} wakeups \
                 (policy {:?}, preemption {:?})",
                self.sched.policy,
                self.sched.preemption
            );
            // Admit arrivals that have happened.
            while next_arrival_idx < arrival_order.len()
                && runtimes[arrival_order[next_arrival_idx]].prepared.request.arrival <= now
            {
                runtimes[arrival_order[next_arrival_idx]].arrived = true;
                next_arrival_idx += 1;
            }

            let any_waiting = runtimes.iter().any(Runtime::is_waiting);
            if running.is_none() && !any_waiting {
                // Idle: jump to the next arrival.
                let next = arrival_order
                    .get(next_arrival_idx)
                    .map(|&i| runtimes[i].prepared.request.arrival)
                    .expect("tasks remain, so an arrival must be pending");
                now = now.max(next);
                while next_quantum <= now {
                    next_quantum += quantum;
                }
                continue;
            }

            // ---- Scheduler wakeup -------------------------------------------------
            scheduler_invocations += 1;
            self.grant_tokens(&mut runtimes);

            if running.is_none() {
                let views: Vec<TaskView> = runtimes
                    .iter()
                    .filter(|r| r.is_waiting())
                    .map(|r| r.view(false))
                    .collect();
                if !views.is_empty() {
                    let chosen = policy.select(now, &views);
                    let idx = self.index_of(&runtimes, chosen);
                    now = self.dispatch(&mut runtimes, idx, now, &checkpoint_model);
                    running = Some(idx);
                }
            } else if self.sched.preemption.is_preemptive() {
                let run_idx = running.expect("checked above");
                let mut views: Vec<TaskView> = runtimes
                    .iter()
                    .enumerate()
                    .filter(|(i, r)| r.is_waiting() || *i == run_idx)
                    .map(|(i, r)| r.view(i == run_idx))
                    .collect();
                views.sort_by_key(|v| v.id);
                let chosen = policy.select(now, &views);
                if chosen != runtimes[run_idx].prepared.request.id {
                    let cand_idx = self.index_of(&runtimes, chosen);
                    let mechanism = self.pick_mechanism(&runtimes, run_idx, cand_idx);
                    match mechanism {
                        PreemptionMechanism::Drain => {
                            drain_decisions += 1;
                        }
                        PreemptionMechanism::Checkpoint => {
                            checkpoint_preemptions += 1;
                            now = self.preempt_checkpoint(
                                &mut runtimes,
                                run_idx,
                                now,
                                &checkpoint_model,
                            );
                            now = self.dispatch(&mut runtimes, cand_idx, now, &checkpoint_model);
                            running = Some(cand_idx);
                        }
                        PreemptionMechanism::Kill => {
                            kill_preemptions += 1;
                            self.preempt_kill(&mut runtimes, run_idx);
                            now = self.dispatch(&mut runtimes, cand_idx, now, &checkpoint_model);
                            running = Some(cand_idx);
                        }
                    }
                }
            }

            // ---- Execute until the next event -------------------------------------
            let Some(run_idx) = running else {
                continue;
            };
            while next_quantum <= now {
                next_quantum += quantum;
            }
            let next_arrival = arrival_order
                .get(next_arrival_idx)
                .map(|&i| runtimes[i].prepared.request.arrival);
            let remaining = runtimes[run_idx].cursor.remaining(&runtimes[run_idx].prepared.plan);
            let completion_time = now + remaining;
            let mut t_next = completion_time.min(next_quantum);
            if let Some(arrival) = next_arrival {
                t_next = t_next.min(arrival.max(now));
            }
            let budget = t_next - now;

            let consumed = {
                let runtime = &mut runtimes[run_idx];
                let plan = Arc::clone(&runtime.prepared.plan);
                runtime.cursor.advance(&plan, budget)
            };
            self.accrue_wait(&mut runtimes, Some(run_idx), consumed);
            now += consumed;

            let finished = {
                let runtime = &runtimes[run_idx];
                runtime.cursor.is_complete(&runtime.prepared.plan)
            };
            if finished {
                let runtime = &mut runtimes[run_idx];
                runtime.completion = Some(now);
                runtime.state = TaskState::Completed;
                running = None;
            } else if consumed.is_zero() && budget.is_zero() && next_arrival.is_none() {
                // Degenerate safety net: a zero-length plan completes instantly.
                let runtime = &mut runtimes[run_idx];
                runtime.completion = Some(now);
                runtime.state = TaskState::Completed;
                running = None;
            }
        }

        let mut records: Vec<TaskRecord> = runtimes
            .iter()
            .map(|r| TaskRecord {
                id: r.prepared.request.id,
                model: r.prepared.request.model,
                batch: r.prepared.request.batch,
                priority: r.prepared.request.priority,
                arrival: r.prepared.request.arrival,
                first_start: r.first_start.unwrap_or(r.prepared.request.arrival),
                completion: r.completion.expect("all tasks completed"),
                isolated_cycles: r.prepared.isolated_cycles(),
                estimated_cycles: r.estimated,
                preemption_count: r.preemption_count,
                kill_restarts: r.kill_restarts,
                checkpoint_overhead: r.checkpoint_overhead,
                restore_overhead: r.restore_overhead,
                max_checkpoint_bytes: r.max_checkpoint_bytes,
            })
            .collect();
        records.sort_by_key(|r| r.id);
        let makespan = records.iter().map(|r| r.completion).max().unwrap_or(Cycles::ZERO);

        SimOutcome {
            records,
            makespan,
            scheduler_invocations,
            checkpoint_preemptions,
            kill_preemptions,
            drain_decisions,
        }
    }

    fn index_of(&self, runtimes: &[Runtime], id: TaskId) -> usize {
        runtimes
            .iter()
            .position(|r| r.prepared.request.id == id)
            .expect("policy returned an unknown task id")
    }

    /// Grants additional tokens to every waiting task, proportional to its
    /// priority and the normalized slowdown it accumulated since the last
    /// grant (Algorithm 2, line 7).
    fn grant_tokens(&self, runtimes: &mut [Runtime]) {
        for runtime in runtimes.iter_mut() {
            if !runtime.is_waiting() {
                continue;
            }
            let newly_waited = runtime.waited - runtime.waited_at_last_grant;
            if newly_waited.is_zero() {
                continue;
            }
            let slowdown = newly_waited.get() as f64 / runtime.estimated.get().max(1) as f64;
            runtime.tokens += runtime.prepared.request.priority.token_grant()
                * self.sched.token_scale
                * slowdown;
            runtime.waited_at_last_grant = runtime.waited;
        }
    }

    /// Adds `dt` of waiting time to every admitted, non-running, non-complete
    /// task.
    fn accrue_wait(&self, runtimes: &mut [Runtime], running: Option<usize>, dt: Cycles) {
        if dt.is_zero() {
            return;
        }
        for (i, runtime) in runtimes.iter_mut().enumerate() {
            if Some(i) == running {
                continue;
            }
            if runtime.is_waiting() {
                runtime.waited += dt;
            }
        }
    }

    /// Starts (or resumes) `idx` on the NPU at time `now`, charging a restore
    /// latency if its context was previously checkpointed. Returns the time
    /// at which useful execution begins.
    fn dispatch(
        &self,
        runtimes: &mut [Runtime],
        idx: usize,
        now: Cycles,
        checkpoint_model: &CheckpointModel,
    ) -> Cycles {
        let mut start = now;
        if runtimes[idx].needs_restore && self.sched.charge_restore {
            let restore = checkpoint_model.restore_cycles(runtimes[idx].checkpointed_bytes);
            runtimes[idx].restore_overhead += restore;
            self.accrue_wait(runtimes, Some(idx), restore);
            start += restore;
        }
        let runtime = &mut runtimes[idx];
        runtime.needs_restore = false;
        runtime.state = TaskState::Running;
        runtime.first_start = runtime.first_start.or(Some(start));
        runtime.last_scheduled = Some(start);
        start
    }

    /// Preempts the running task with CHECKPOINT: finishes the current
    /// `GEMM_OP` interval, spills the live context, and returns the new time.
    fn preempt_checkpoint(
        &self,
        runtimes: &mut [Runtime],
        run_idx: usize,
        now: Cycles,
        checkpoint_model: &CheckpointModel,
    ) -> Cycles {
        // Run to the next legal preemption point.
        let (boundary, live_bytes) = {
            let runtime = &mut runtimes[run_idx];
            let plan = Arc::clone(&runtime.prepared.plan);
            let boundary = runtime.cursor.cycles_to_boundary(&plan);
            runtime.cursor.advance(&plan, boundary);
            let live_bytes = runtime.cursor.live_checkpoint_bytes(&plan);
            (boundary, live_bytes)
        };
        self.accrue_wait(runtimes, Some(run_idx), boundary);
        let mut time = now + boundary;

        let checkpoint = checkpoint_model.checkpoint_cycles(live_bytes);
        {
            let runtime = &mut runtimes[run_idx];
            runtime.checkpoint_overhead += checkpoint;
            runtime.checkpointed_bytes = live_bytes;
            runtime.max_checkpoint_bytes = runtime.max_checkpoint_bytes.max(live_bytes);
            runtime.needs_restore = true;
            runtime.preemption_count += 1;
            runtime.state = TaskState::Checkpointed;
        }
        // During the checkpoint DMA nobody makes forward progress; everyone
        // waiting (including the just-preempted task) accrues wait time.
        self.accrue_wait(runtimes, None, checkpoint);
        time += checkpoint;
        time
    }

    /// Preempts the running task with KILL: all progress is discarded and the
    /// task restarts from scratch when it is next scheduled.
    fn preempt_kill(&self, runtimes: &mut [Runtime], run_idx: usize) {
        let runtime = &mut runtimes[run_idx];
        runtime.cursor.reset();
        runtime.preemption_count += 1;
        runtime.kill_restarts += 1;
        runtime.checkpointed_bytes = 0;
        runtime.needs_restore = false;
        runtime.state = TaskState::Ready;
    }

    /// Chooses the preemption mechanism for displacing `run_idx` in favour of
    /// `cand_idx` under the configured preemption mode.
    fn pick_mechanism(
        &self,
        runtimes: &[Runtime],
        run_idx: usize,
        cand_idx: usize,
    ) -> PreemptionMechanism {
        match self.sched.preemption {
            PreemptionMode::NonPreemptive => PreemptionMechanism::Drain,
            PreemptionMode::Static(mechanism) => mechanism,
            PreemptionMode::Dynamic | PreemptionMode::DynamicKill => {
                let inputs = MechanismDecisionInputs {
                    current_estimated: runtimes[run_idx].estimated,
                    current_executed: runtimes[run_idx].cursor.executed(),
                    candidate_estimated: runtimes[cand_idx].estimated,
                    candidate_executed: runtimes[cand_idx].cursor.executed(),
                };
                match select_mechanism(inputs) {
                    PreemptionMechanism::Drain => PreemptionMechanism::Drain,
                    _ if self.sched.preemption == PreemptionMode::DynamicKill => {
                        PreemptionMechanism::Kill
                    }
                    other => other,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use dnn_models::SeqSpec;

    fn npu() -> NpuConfig {
        NpuConfig::paper_default()
    }

    fn prepare(requests: Vec<TaskRequest>) -> Vec<PreparedTask> {
        let cfg = npu();
        requests
            .into_iter()
            .map(|r| PreparedTask::prepare(r, &cfg))
            .collect()
    }

    fn simple_requests() -> Vec<TaskRequest> {
        vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnVggNet).with_priority(Priority::Low),
            TaskRequest::new(TaskId(1), ModelKind::CnnAlexNet)
                .with_priority(Priority::High)
                .with_arrival(Cycles::new(200_000)),
            TaskRequest::new(TaskId(2), ModelKind::CnnGoogLeNet)
                .with_priority(Priority::Medium)
                .with_arrival(Cycles::new(400_000)),
        ]
    }

    fn run(policy: PolicyKind, preemption: PreemptionMode, requests: Vec<TaskRequest>) -> SimOutcome {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::named(policy, preemption));
        let prepared = prepare(requests);
        sim.run(&prepared)
    }

    #[test]
    fn single_task_runs_in_isolated_time() {
        let outcome = run(
            PolicyKind::Fcfs,
            PreemptionMode::NonPreemptive,
            vec![TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet)],
        );
        let record = &outcome.records[0];
        assert_eq!(record.turnaround(), record.isolated_cycles);
        assert!((record.ntt() - 1.0).abs() < 1e-9);
        assert_eq!(record.preemption_count, 0);
        assert_eq!(outcome.makespan, record.completion);
    }

    #[test]
    fn all_tasks_complete_under_every_policy_and_mode() {
        for policy in PolicyKind::ALL {
            for preemption in [
                PreemptionMode::NonPreemptive,
                PreemptionMode::Static(PreemptionMechanism::Checkpoint),
                PreemptionMode::Static(PreemptionMechanism::Kill),
                PreemptionMode::Dynamic,
                PreemptionMode::DynamicKill,
            ] {
                // Static(KILL) + round-robin livelocks by construction (each
                // task keeps discarding the other's progress every quantum);
                // the paper never evaluates that combination and the engine
                // reports it via its livelock safety valve, so skip it here.
                if policy == PolicyKind::RoundRobin
                    && preemption == PreemptionMode::Static(PreemptionMechanism::Kill)
                {
                    continue;
                }
                let outcome = run(policy, preemption, simple_requests());
                assert_eq!(outcome.records.len(), 3, "{policy:?}/{preemption:?}");
                for record in &outcome.records {
                    assert!(record.completion >= record.arrival);
                    assert!(record.ntt() >= 0.999, "{policy:?}/{preemption:?}: NTT {}", record.ntt());
                }
            }
        }
    }

    #[test]
    fn np_fcfs_makes_later_tasks_wait_for_earlier_ones() {
        let outcome = run(PolicyKind::Fcfs, PreemptionMode::NonPreemptive, simple_requests());
        // Task 1 (AlexNet, high priority) arrives while VGG runs; under
        // NP-FCFS it cannot start until VGG finishes.
        let vgg = outcome.record(TaskId(0)).unwrap();
        let alexnet = outcome.record(TaskId(1)).unwrap();
        assert!(alexnet.first_start >= vgg.completion);
        assert!(alexnet.ntt() > 2.0);
    }

    #[test]
    fn preemptive_hpf_lets_the_high_priority_task_jump_the_queue() {
        let np = run(PolicyKind::Hpf, PreemptionMode::NonPreemptive, simple_requests());
        let preemptive = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let np_high = np.record(TaskId(1)).unwrap();
        let p_high = preemptive.record(TaskId(1)).unwrap();
        assert!(
            p_high.turnaround() < np_high.turnaround(),
            "preemption should shorten the high-priority task's turnaround ({} vs {})",
            p_high.turnaround(),
            np_high.turnaround()
        );
        assert!(preemptive.checkpoint_preemptions > 0);
        // The preempted VGG task records checkpoint overhead.
        let vgg = preemptive.record(TaskId(0)).unwrap();
        assert!(vgg.preemption_count > 0);
        assert!(vgg.checkpoint_overhead > Cycles::ZERO);
        assert!(vgg.max_checkpoint_bytes > 0);
    }

    #[test]
    fn kill_wastes_work_and_hurts_the_preempted_task() {
        let checkpoint = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let kill = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Kill),
            simple_requests(),
        );
        let vgg_ckpt = checkpoint.record(TaskId(0)).unwrap();
        let vgg_kill = kill.record(TaskId(0)).unwrap();
        assert!(vgg_kill.kill_restarts > 0);
        assert_eq!(vgg_ckpt.kill_restarts, 0);
        assert!(
            vgg_kill.turnaround() > vgg_ckpt.turnaround(),
            "KILL should waste the preempted task's progress"
        );
        // KILL has no checkpoint latency.
        assert_eq!(vgg_kill.checkpoint_overhead, Cycles::ZERO);
    }

    #[test]
    fn checkpoint_overhead_is_microseconds_not_milliseconds() {
        let outcome = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let cfg = npu();
        for record in &outcome.records {
            if let Some(latency) = record.mean_preemption_latency() {
                let us = cfg.cycles_to_micros(latency);
                assert!(us < 100.0, "preemption latency {us} us is too large");
            }
        }
    }

    #[test]
    fn dynamic_mode_sometimes_drains() {
        // A long task that is nearly finished when a long candidate arrives
        // should be drained rather than preempted.
        let requests = vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet).with_priority(Priority::Low),
            TaskRequest::new(TaskId(1), ModelKind::CnnVggNet)
                .with_priority(Priority::High)
                // Arrives when AlexNet is ~90% done.
                .with_arrival(Cycles::new(1_400_000)),
        ];
        let outcome = run(PolicyKind::Hpf, PreemptionMode::Dynamic, requests);
        assert!(outcome.drain_decisions > 0);
        assert_eq!(outcome.checkpoint_preemptions, 0);
    }

    #[test]
    fn prema_improves_high_priority_latency_over_np_fcfs() {
        let baseline = run(PolicyKind::Fcfs, PreemptionMode::NonPreemptive, simple_requests());
        let prema = run(PolicyKind::Prema, PreemptionMode::Dynamic, simple_requests());
        let base_high = baseline.record(TaskId(1)).unwrap();
        let prema_high = prema.record(TaskId(1)).unwrap();
        assert!(
            prema_high.turnaround() < base_high.turnaround(),
            "PREMA should improve the high-priority task's turnaround"
        );
        assert!(prema.antt() <= baseline.antt() + 1e-9);
    }

    #[test]
    fn restore_overhead_is_charged_when_a_checkpointed_task_resumes() {
        let outcome = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let preempted: Vec<_> = outcome
            .records
            .iter()
            .filter(|r| r.preemption_count > 0)
            .collect();
        assert!(!preempted.is_empty());
        assert!(preempted.iter().any(|r| r.restore_overhead > Cycles::ZERO));
    }

    #[test]
    fn simulator_accessors_and_prepare() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        assert_eq!(sim.npu_config(), &npu());
        assert_eq!(sim.scheduler_config(), &SchedulerConfig::paper_default());
        let prepared = sim.prepare(&[TaskRequest::new(TaskId(0), ModelKind::CnnMobileNet)]);
        assert_eq!(prepared.len(), 1);
        assert!(prepared[0].isolated_cycles() > Cycles::ZERO);
        assert_eq!(prepared[0].estimated_cycles(), prepared[0].isolated_cycles());
    }

    #[test]
    fn estimates_override_plan_length() {
        let cfg = npu();
        let request = TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet)
            .with_estimate(Cycles::new(42));
        let prepared = PreparedTask::prepare(request, &cfg);
        assert_eq!(prepared.estimated_cycles(), Cycles::new(42));
        assert!(prepared.isolated_cycles() > Cycles::new(42));
    }

    #[test]
    fn rnn_tasks_also_run_to_completion() {
        let requests = vec![
            TaskRequest::new(TaskId(0), ModelKind::RnnSentiment)
                .with_seq(SeqSpec::new(20, 20))
                .with_priority(Priority::Low),
            TaskRequest::new(TaskId(1), ModelKind::RnnTranslation1)
                .with_seq(SeqSpec::new(15, 18))
                .with_priority(Priority::High)
                .with_arrival(Cycles::new(100_000)),
        ];
        let outcome = run(PolicyKind::Prema, PreemptionMode::Dynamic, requests);
        assert_eq!(outcome.records.len(), 2);
        for record in &outcome.records {
            assert!(record.ntt() >= 0.999);
        }
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_task_list_rejected() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let _ = sim.run(&[]);
    }

    #[test]
    #[should_panic(expected = "task IDs must be unique")]
    fn duplicate_ids_rejected() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet),
            TaskRequest::new(TaskId(0), ModelKind::CnnMobileNet),
        ]);
        let _ = sim.run(&prepared);
    }
}
