//! The multi-task NPU simulation engine.
//!
//! [`NpuSimulator`] drives a set of prepared inference tasks through one NPU
//! under a [`SchedulerConfig`]: it admits arrivals, wakes the scheduler on
//! the three events of Section V-C (task arrival, task completion, expiry of
//! the scheduling period), asks the configured policy for the next task,
//! applies the configured preemption mode (including the Algorithm 3 dynamic
//! mechanism selection), and charges checkpoint / restore latencies through
//! the `npu-sim` DMA model.
//!
//! The engine works at preemption-interval granularity: a running task's
//! progress is tracked with a [`ProgressCursor`] over its [`ExecutionPlan`],
//! and CHECKPOINT preemptions take effect at the next interval boundary, as
//! on the real hardware (`GEMM_OP` commit points).
//!
//! # The event horizon
//!
//! Waking the scheduler at every expired quantum is faithful but wasteful:
//! most wakeups provably cannot change the schedule. [`NpuSimulator::run`]
//! therefore computes, at every execution step, the *event horizon* — the
//! earliest moment at which a scheduling decision could actually change
//! (the running task's completion or the next task arrival) — and, when
//! every quantum wakeup before that horizon is provably inert, jumps `now`
//! straight to the horizon. Skipped wakeups are fully accounted for: the
//! invocation counter advances by the number of elided quanta and their
//! token grants are replayed in one batched, bit-identical
//! `grant_tokens_batch` call, so the produced [`SimOutcome`] — per-task
//! records, makespan, even the scheduler-invocation count — is exactly what
//! stepping every quantum produces. A wakeup is provably inert when a task
//! is running and either (a) the waiting set is empty, so there is no
//! alternative candidate (and the paper's policies are pure functions of
//! the task views — see [`SchedulingPolicy::select`]'s contract), or (b)
//! the preemption mode is non-preemptive, so the scheduler would not be
//! consulted while a task runs anyway. The step-every-quantum loop stays
//! in-tree as [`NpuSimulator::run_reference`]; `tests/determinism.rs`
//! asserts the two paths are bit-identical across every policy and
//! preemption mode.
//!
//! [`SchedulingPolicy::select`]: crate::policy::SchedulingPolicy::select

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dnn_models::ModelKind;
use npu_sim::{CheckpointModel, Cycles, NpuConfig};

use crate::config::{PreemptionMode, SchedulerConfig};
use crate::plan::{ExecutionPlan, ProgressCursor};
use crate::policy::{make_policy, TaskView};
use crate::preemption::{select_mechanism, MechanismDecisionInputs, PreemptionMechanism};
use crate::task::{Priority, TaskId, TaskRequest, TaskState};

/// A request whose execution plan has been compiled for a specific NPU
/// configuration. Plans are shared via [`Arc`] so the same workload can be
/// replayed under many scheduler configurations without recompiling.
#[derive(Debug, Clone)]
pub struct PreparedTask {
    /// The original request.
    pub request: TaskRequest,
    /// The compiled execution plan (at the request's *actual* sequence
    /// lengths).
    pub plan: Arc<ExecutionPlan>,
}

impl PreparedTask {
    /// Compiles the request's plan for the given NPU configuration,
    /// sharing identical plans through the process-wide
    /// [`plan_cache`](crate::plan::plan_cache).
    pub fn prepare(request: TaskRequest, npu: &NpuConfig) -> Self {
        let plan = ExecutionPlan::compile_cached(request.model, request.batch, request.seq, npu);
        PreparedTask { request, plan }
    }

    /// Compiles the request's plan from scratch, bypassing the plan cache.
    /// The compiled timing is identical to [`PreparedTask::prepare`]; this
    /// exists for baseline measurements and cache-validation tests.
    pub fn prepare_uncached(request: TaskRequest, npu: &NpuConfig) -> Self {
        let plan = ExecutionPlan::compile_shared(request.model, request.batch, request.seq, npu);
        PreparedTask { request, plan }
    }

    /// The task's isolated (uninterrupted) execution time.
    pub fn isolated_cycles(&self) -> Cycles {
        self.plan.total_cycles()
    }

    /// The estimate the scheduler will use: the predictor-provided estimate
    /// if present, otherwise the exact plan length (oracle estimates).
    pub fn estimated_cycles(&self) -> Cycles {
        self.request
            .estimated_cycles
            .unwrap_or_else(|| self.plan.total_cycles())
    }
}

/// Per-task results of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task identifier.
    pub id: TaskId,
    /// The model the task ran.
    pub model: ModelKind,
    /// Batch size.
    pub batch: u64,
    /// Priority level.
    pub priority: Priority,
    /// Dispatch time.
    pub arrival: Cycles,
    /// When the task first started executing on the NPU.
    pub first_start: Cycles,
    /// When the task completed.
    pub completion: Cycles,
    /// The task's isolated execution time (`C_single`).
    pub isolated_cycles: Cycles,
    /// The estimate the scheduler used.
    pub estimated_cycles: Cycles,
    /// Number of times the task was preempted (CHECKPOINT or KILL).
    pub preemption_count: u64,
    /// Number of KILL restarts the task suffered.
    pub kill_restarts: u64,
    /// Total cycles spent checkpointing this task's context.
    pub checkpoint_overhead: Cycles,
    /// Total cycles spent restoring this task's context.
    pub restore_overhead: Cycles,
    /// The largest context state this task ever checkpointed, in bytes.
    pub max_checkpoint_bytes: u64,
}

impl TaskRecord {
    /// Turnaround time under multi-tasking (`C_multi`): dispatch to
    /// completion.
    pub fn turnaround(&self) -> Cycles {
        self.completion - self.arrival
    }

    /// Time the task waited before first receiving the NPU.
    pub fn waiting(&self) -> Cycles {
        self.first_start - self.arrival
    }

    /// Normalized turnaround time (Equation 1).
    pub fn ntt(&self) -> f64 {
        self.turnaround().ratio(self.isolated_cycles)
    }

    /// The task's progress relative to isolated execution (`C_single/C_multi`).
    pub fn progress(&self) -> f64 {
        self.isolated_cycles.ratio(self.turnaround())
    }

    /// Average preemption latency experienced per preemption, if any.
    pub fn mean_preemption_latency(&self) -> Option<Cycles> {
        if self.preemption_count == 0 {
            None
        } else {
            Some(self.checkpoint_overhead / self.preemption_count)
        }
    }
}

/// Aggregate results of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Per-task records, in task-ID order.
    pub records: Vec<TaskRecord>,
    /// Completion time of the last task.
    pub makespan: Cycles,
    /// Number of scheduler wakeups.
    pub scheduler_invocations: u64,
    /// Number of preemptions performed with CHECKPOINT.
    pub checkpoint_preemptions: u64,
    /// Number of preemptions performed with KILL.
    pub kill_preemptions: u64,
    /// Number of times the dynamic mechanism selection chose DRAIN.
    pub drain_decisions: u64,
}

/// One-pass aggregate of a [`SimOutcome`]'s per-task records.
///
/// Computing [`SimOutcome::antt`] and [`SimOutcome::stp`] separately walks
/// `records` twice; callers that need more than one aggregate (the bench
/// figure modules, the suite, the throughput report) take a single
/// [`SimOutcome::summary`] pass instead.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OutcomeSummary {
    /// Number of per-task records aggregated.
    pub task_count: usize,
    /// Average normalized turnaround time (Equation 1 averaged over tasks).
    pub antt: f64,
    /// System throughput: sum of per-task progress.
    pub stp: f64,
    /// Total preemptions suffered across all tasks (CHECKPOINT or KILL).
    pub preemptions: u64,
    /// Total KILL restarts suffered across all tasks.
    pub kill_restarts: u64,
}

impl SimOutcome {
    /// The record for `id`, if the task was part of the run.
    ///
    /// Engine-produced outcomes keep `records` id-sorted, so the lookup is
    /// a binary search. `records` is a public field, though, so an
    /// externally assembled (or re-sorted) outcome falls back to a linear
    /// scan rather than silently missing the record.
    pub fn record(&self, id: TaskId) -> Option<&TaskRecord> {
        match self.records.binary_search_by_key(&id, |r| r.id) {
            Ok(i) => Some(&self.records[i]),
            Err(_) => self.records.iter().find(|r| r.id == id),
        }
    }

    /// Aggregates the per-task records in a single pass.
    ///
    /// `summary().antt` and `summary().stp` accumulate in the same
    /// per-record order as [`SimOutcome::antt`] / [`SimOutcome::stp`], so
    /// the values are bit-identical to the two-pass accessors.
    pub fn summary(&self) -> OutcomeSummary {
        let mut ntt_sum = 0.0f64;
        let mut stp = 0.0f64;
        let mut preemptions = 0u64;
        let mut kill_restarts = 0u64;
        for record in &self.records {
            ntt_sum += record.ntt();
            stp += record.progress();
            preemptions += record.preemption_count;
            kill_restarts += record.kill_restarts;
        }
        let antt = if self.records.is_empty() {
            0.0
        } else {
            ntt_sum / self.records.len() as f64
        };
        OutcomeSummary {
            task_count: self.records.len(),
            antt,
            stp,
            preemptions,
            kill_restarts,
        }
    }

    /// Average normalized turnaround time across all tasks.
    pub fn antt(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(TaskRecord::ntt).sum::<f64>() / self.records.len() as f64
    }

    /// System throughput: sum of per-task progress.
    pub fn stp(&self) -> f64 {
        self.records.iter().map(TaskRecord::progress).sum()
    }
}

/// The per-task state the engine tracks while simulating.
#[derive(Debug)]
struct Runtime {
    prepared: PreparedTask,
    cursor: ProgressCursor,
    state: TaskState,
    arrived: bool,
    tokens: f64,
    /// Waiting time materialized at the task's last transition *out of* the
    /// waiting set. While the task is waiting, its effective waiting time is
    /// `waited + (total_wait - wait_baseline)` — see [`EngineState`].
    waited: Cycles,
    /// The engine's `total_wait` at the moment this task last entered the
    /// waiting set.
    wait_baseline: Cycles,
    waited_at_last_grant: Cycles,
    estimated: Cycles,
    first_start: Option<Cycles>,
    completion: Option<Cycles>,
    last_scheduled: Option<Cycles>,
    checkpointed_bytes: u64,
    needs_restore: bool,
    preemption_count: u64,
    kill_restarts: u64,
    checkpoint_overhead: Cycles,
    restore_overhead: Cycles,
    max_checkpoint_bytes: u64,
}

impl Runtime {
    fn new(prepared: PreparedTask) -> Self {
        let estimated = prepared.estimated_cycles();
        let tokens = prepared.request.priority.token_grant();
        Runtime {
            prepared,
            cursor: ProgressCursor::start(),
            state: TaskState::Ready,
            arrived: false,
            tokens,
            waited: Cycles::ZERO,
            wait_baseline: Cycles::ZERO,
            waited_at_last_grant: Cycles::ZERO,
            estimated,
            first_start: None,
            completion: None,
            last_scheduled: None,
            checkpointed_bytes: 0,
            needs_restore: false,
            preemption_count: 0,
            kill_restarts: 0,
            checkpoint_overhead: Cycles::ZERO,
            restore_overhead: Cycles::ZERO,
            max_checkpoint_bytes: 0,
        }
    }

    fn id(&self) -> TaskId {
        self.prepared.request.id
    }

    fn is_waiting(&self) -> bool {
        self.arrived
            && matches!(self.state, TaskState::Ready | TaskState::Checkpointed)
            && self.completion.is_none()
    }

    /// The task's waiting time as of `total_wait` (see [`EngineState`]).
    fn effective_waited(&self, total_wait: Cycles) -> Cycles {
        if self.is_waiting() {
            self.waited + (total_wait - self.wait_baseline)
        } else {
            self.waited
        }
    }

    fn view(&self, is_running: bool, total_wait: Cycles) -> TaskView {
        TaskView {
            id: self.prepared.request.id,
            priority: self.prepared.request.priority,
            arrival: self.prepared.request.arrival,
            tokens: self.tokens,
            estimated_total: self.estimated,
            executed: self.cursor.executed(),
            waited: self.effective_waited(total_wait),
            last_scheduled: self.last_scheduled,
            is_running,
        }
    }
}

/// Incrementally maintained scheduler state.
///
/// The naive event loop recounted completions, re-probed for waiting tasks
/// and rebuilt + re-sorted the policy's `TaskView` vector on every wakeup —
/// all O(n) scans. This struct keeps that state up to date at each
/// transition instead:
///
/// * `completed` — completion counter, so the loop condition is O(1);
/// * `waiting` — the indices of schedulable tasks, kept sorted by task id,
///   updated by O(log n) binary-search insert/remove at the (rare) state
///   transitions;
/// * `total_wait` — a global waiting-time accumulator. Charging `dt` of
///   waiting to every waiting task is a single add; a task's own waiting
///   time is reconstructed as `waited + (total_wait - wait_baseline)`,
///   making wait accrual O(1) instead of O(n) per event;
/// * `id_index` — id-sorted (id, index) pairs, so resolving the policy's
///   chosen [`TaskId`] back to a runtime is a binary search;
/// * `views` — a reusable scratch buffer for the policy's task views, so
///   steady-state scheduling events allocate nothing.
#[derive(Debug)]
struct EngineState {
    runtimes: Vec<Runtime>,
    waiting: Vec<usize>,
    completed: usize,
    total_wait: Cycles,
    id_index: Vec<(TaskId, usize)>,
    views: Vec<TaskView>,
}

impl EngineState {
    fn new(tasks: &[PreparedTask]) -> Self {
        let runtimes: Vec<Runtime> = tasks.iter().cloned().map(Runtime::new).collect();
        let mut id_index: Vec<(TaskId, usize)> = runtimes
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id(), i))
            .collect();
        id_index.sort_unstable_by_key(|&(id, _)| id);
        let capacity = runtimes.len();
        EngineState {
            runtimes,
            waiting: Vec::with_capacity(capacity),
            completed: 0,
            total_wait: Cycles::ZERO,
            id_index,
            views: Vec::with_capacity(capacity),
        }
    }

    fn len(&self) -> usize {
        self.runtimes.len()
    }

    /// Resolves a task id to its runtime index.
    fn index_of(&self, id: TaskId) -> usize {
        self.id_index
            .binary_search_by_key(&id, |&(id, _)| id)
            .map(|pos| self.id_index[pos].1)
            .expect("policy returned an unknown task id")
    }

    /// Charges `dt` of waiting time to every currently waiting task.
    fn accrue(&mut self, dt: Cycles) {
        self.total_wait += dt;
    }

    /// Adds `idx` to the waiting set. Must be called *after* the runtime's
    /// state satisfies `is_waiting`.
    fn enter_waiting(&mut self, idx: usize) {
        debug_assert!(self.runtimes[idx].is_waiting());
        self.runtimes[idx].wait_baseline = self.total_wait;
        let id = self.runtimes[idx].id();
        let pos = self
            .waiting
            .binary_search_by_key(&id, |&i| self.runtimes[i].id())
            .expect_err("task is not already waiting");
        self.waiting.insert(pos, idx);
    }

    /// Removes `idx` from the waiting set, materializing its accrued
    /// waiting time. Must be called *before* the runtime's state changes.
    fn leave_waiting(&mut self, idx: usize) {
        debug_assert!(self.runtimes[idx].is_waiting());
        let id = self.runtimes[idx].id();
        let pos = self
            .waiting
            .binary_search_by_key(&id, |&i| self.runtimes[i].id())
            .expect("task is in the waiting set");
        self.waiting.remove(pos);
        let runtime = &mut self.runtimes[idx];
        runtime.waited += self.total_wait - runtime.wait_baseline;
    }

    /// Marks the running task `idx` complete at `now`.
    fn complete(&mut self, idx: usize, now: Cycles) {
        let runtime = &mut self.runtimes[idx];
        debug_assert!(runtime.completion.is_none());
        runtime.completion = Some(now);
        runtime.state = TaskState::Completed;
        self.completed += 1;
    }

    /// Grants additional tokens to every waiting task, proportional to its
    /// priority and the normalized slowdown it accumulated since the last
    /// grant (Algorithm 2, line 7; the formula lives in
    /// [`crate::policy::period_token_grant`]).
    fn grant_tokens(&mut self, token_scale: f64) {
        let total_wait = self.total_wait;
        for &idx in &self.waiting {
            let runtime = &mut self.runtimes[idx];
            let effective = runtime.effective_waited(total_wait);
            let newly_waited = effective - runtime.waited_at_last_grant;
            if newly_waited.is_zero() {
                continue;
            }
            runtime.tokens += crate::policy::period_token_grant(
                runtime.prepared.request.priority,
                token_scale,
                newly_waited,
                runtime.estimated,
            );
            runtime.waited_at_last_grant = effective;
        }
    }

    /// Replays the token grants of `periods` consecutive scheduling-period
    /// wakeups in one call. The last `periods - 1` wakeups each grant a full
    /// `quantum` of newly-waited time; the first wakeup grants whatever each
    /// task accumulated since its previous grant (derived per task from its
    /// own `waited_at_last_grant`, so no alignment assumption is needed).
    ///
    /// Bit-identity with stepping: a task's token count depends only on the
    /// sequence of its *own* grant additions, and this performs the same
    /// per-period additions (same `f64` values, same order) per task as
    /// `periods` separate [`EngineState::grant_tokens`] calls would — it
    /// merely iterates per task instead of per period. Must be called
    /// *after* the skipped periods' waiting time has been accrued into
    /// `total_wait` (i.e. with `total_wait` as of the last skipped wakeup).
    fn grant_tokens_batch(&mut self, token_scale: f64, quantum: Cycles, periods: u64) {
        debug_assert!(periods >= 1);
        let total_wait = self.total_wait;
        let tail = quantum * (periods - 1);
        for &idx in &self.waiting {
            let runtime = &mut self.runtimes[idx];
            let priority = runtime.prepared.request.priority;
            let effective = runtime.effective_waited(total_wait);
            // What the first skipped wakeup would have seen as newly waited.
            let first_newly = effective - runtime.waited_at_last_grant - tail;
            if !first_newly.is_zero() {
                runtime.tokens += crate::policy::period_token_grant(
                    priority,
                    token_scale,
                    first_newly,
                    runtime.estimated,
                );
            }
            if periods > 1 {
                let per_period = crate::policy::period_token_grant(
                    priority,
                    token_scale,
                    quantum,
                    runtime.estimated,
                );
                for _ in 1..periods {
                    runtime.tokens += per_period;
                }
            }
            runtime.waited_at_last_grant = effective;
        }
    }

    /// Rebuilds the policy's view buffer: every waiting task plus (if any)
    /// the running task, in ascending task-id order. Reuses the scratch
    /// buffer, so this allocates nothing in steady state.
    fn build_views(&mut self, running: Option<usize>) -> &[TaskView] {
        self.views.clear();
        let total_wait = self.total_wait;
        let running_id = running.map(|idx| self.runtimes[idx].id());
        let mut running_placed = running.is_none();
        for &idx in &self.waiting {
            if let (false, Some(run_idx)) = (running_placed, running) {
                if self.runtimes[run_idx].id() < self.runtimes[idx].id() {
                    self.views
                        .push(self.runtimes[run_idx].view(true, total_wait));
                    running_placed = true;
                }
            }
            debug_assert_ne!(Some(self.runtimes[idx].id()), running_id);
            self.views.push(self.runtimes[idx].view(false, total_wait));
        }
        if let (false, Some(run_idx)) = (running_placed, running) {
            self.views
                .push(self.runtimes[run_idx].view(true, total_wait));
        }
        &self.views
    }
}

/// The first quantum boundary strictly after `now`.
///
/// Replaces the former `while next_quantum <= now { next_quantum += quantum }`
/// bump loops — O(quanta skipped) — with one arithmetic step that lands on
/// exactly the same boundary (the boundaries are the fixed lattice
/// `next_quantum + i * quantum`).
fn realign_quantum(next_quantum: Cycles, now: Cycles, quantum: Cycles) -> Cycles {
    if next_quantum > now {
        return next_quantum;
    }
    let behind = (now.get() - next_quantum.get()) / quantum.get();
    next_quantum + quantum * (behind + 1)
}

/// The multi-task NPU simulator.
#[derive(Debug, Clone)]
pub struct NpuSimulator {
    npu: NpuConfig,
    sched: SchedulerConfig,
}

impl NpuSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if either configuration fails validation.
    pub fn new(npu: NpuConfig, sched: SchedulerConfig) -> Self {
        if let Err(msg) = npu.validate() {
            panic!("invalid NpuConfig: {msg}");
        }
        if let Err(msg) = sched.validate() {
            panic!("invalid SchedulerConfig: {msg}");
        }
        NpuSimulator { npu, sched }
    }

    /// The NPU configuration.
    pub fn npu_config(&self) -> &NpuConfig {
        &self.npu
    }

    /// The scheduler configuration.
    pub fn scheduler_config(&self) -> &SchedulerConfig {
        &self.sched
    }

    /// Prepares (compiles) a set of requests for this simulator's NPU.
    pub fn prepare(&self, requests: &[TaskRequest]) -> Vec<PreparedTask> {
        requests
            .iter()
            .map(|r| PreparedTask::prepare(*r, &self.npu))
            .collect()
    }

    /// Runs the multi-task simulation to completion.
    ///
    /// Each scheduling event works against the incrementally maintained
    /// [`EngineState`] — completion counter, id-sorted waiting set, O(1)
    /// global wait accrual and a reused view buffer — so a wakeup costs
    /// O(w log n) in the number of waiting tasks instead of rescanning all
    /// tasks several times, and allocates nothing in steady state. On top
    /// of that, the event-horizon fast path (see the module docs) jumps
    /// over every quantum wakeup that provably cannot change the schedule,
    /// batching the skipped quanta's token grants and invocation counts so
    /// the outcome is bit-identical to [`NpuSimulator::run_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or contains duplicate task IDs.
    pub fn run(&self, tasks: &[PreparedTask]) -> SimOutcome {
        self.run_impl(tasks, true)
    }

    /// The step-every-quantum reference engine: identical to
    /// [`NpuSimulator::run`] with the event-horizon fast-forward disabled,
    /// so the scheduler is actually woken at every expired quantum.
    ///
    /// This is the semantic oracle the determinism regression tests compare
    /// the fast path against (per-task records, makespan and invocation
    /// counts must match bit-for-bit); it is not used on any production
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or contains duplicate task IDs.
    pub fn run_reference(&self, tasks: &[PreparedTask]) -> SimOutcome {
        self.run_impl(tasks, false)
    }

    fn run_impl(&self, tasks: &[PreparedTask], fast_forward: bool) -> SimOutcome {
        assert!(!tasks.is_empty(), "at least one task is required");
        let mut ids: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len(), "task IDs must be unique");

        let mut policy = make_policy(self.sched.policy, self.sched.token_scale);
        let checkpoint_model = CheckpointModel::new(&self.npu);
        let quantum = self.sched.quantum_cycles(&self.npu);

        let mut state = EngineState::new(tasks);
        // Arrival cursor: indices sorted by arrival time, admitted in order.
        let mut arrival_order: Vec<usize> = (0..state.len()).collect();
        arrival_order.sort_by_key(|&i| {
            (
                state.runtimes[i].prepared.request.arrival,
                state.runtimes[i].id(),
            )
        });
        let mut next_arrival_idx = 0usize;

        let mut now = Cycles::ZERO;
        let mut next_quantum = quantum;
        let mut running: Option<usize> = None;

        let mut scheduler_invocations = 0u64;
        let mut checkpoint_preemptions = 0u64;
        let mut kill_preemptions = 0u64;
        let mut drain_decisions = 0u64;

        // Safety valve against scheduler livelock. The one known pathological
        // configuration is Static(KILL) combined with round-robin ordering:
        // two tasks can keep discarding each other's progress forever. Real
        // workloads finish with a few thousand wakeups, so this limit only
        // trips on genuine livelock.
        const MAX_SCHEDULER_INVOCATIONS: u64 = 5_000_000;

        while state.completed < state.len() {
            assert!(
                scheduler_invocations < MAX_SCHEDULER_INVOCATIONS,
                "scheduler livelock detected after {MAX_SCHEDULER_INVOCATIONS} wakeups \
                 (policy {:?}, preemption {:?})",
                self.sched.policy,
                self.sched.preemption
            );
            // Admit arrivals that have happened.
            while next_arrival_idx < arrival_order.len()
                && state.runtimes[arrival_order[next_arrival_idx]]
                    .prepared
                    .request
                    .arrival
                    <= now
            {
                let idx = arrival_order[next_arrival_idx];
                state.runtimes[idx].arrived = true;
                state.enter_waiting(idx);
                next_arrival_idx += 1;
            }

            if running.is_none() && state.waiting.is_empty() {
                // Idle: jump to the next arrival.
                let next = arrival_order
                    .get(next_arrival_idx)
                    .map(|&i| state.runtimes[i].prepared.request.arrival)
                    .expect("tasks remain, so an arrival must be pending");
                now = now.max(next);
                next_quantum = realign_quantum(next_quantum, now, quantum);
                continue;
            }

            // ---- Scheduler wakeup -------------------------------------------------
            scheduler_invocations += 1;
            state.grant_tokens(self.sched.token_scale);

            if running.is_none() {
                if !state.waiting.is_empty() {
                    let chosen = policy.select(now, state.build_views(None));
                    let idx = state.index_of(chosen);
                    now = self.dispatch(&mut state, idx, now, &checkpoint_model);
                    running = Some(idx);
                }
            } else if self.sched.preemption.is_preemptive() {
                let run_idx = running.expect("checked above");
                let chosen = policy.select(now, state.build_views(running));
                if chosen != state.runtimes[run_idx].id() {
                    let cand_idx = state.index_of(chosen);
                    let mechanism = self.pick_mechanism(&state.runtimes, run_idx, cand_idx);
                    match mechanism {
                        PreemptionMechanism::Drain => {
                            drain_decisions += 1;
                        }
                        PreemptionMechanism::Checkpoint => {
                            checkpoint_preemptions += 1;
                            now = self.preempt_checkpoint(
                                &mut state,
                                run_idx,
                                now,
                                &checkpoint_model,
                            );
                            now = self.dispatch(&mut state, cand_idx, now, &checkpoint_model);
                            running = Some(cand_idx);
                        }
                        PreemptionMechanism::Kill => {
                            kill_preemptions += 1;
                            self.preempt_kill(&mut state, run_idx);
                            now = self.dispatch(&mut state, cand_idx, now, &checkpoint_model);
                            running = Some(cand_idx);
                        }
                    }
                }
            }

            // ---- Execute until the next event -------------------------------------
            let Some(run_idx) = running else {
                continue;
            };
            next_quantum = realign_quantum(next_quantum, now, quantum);
            let next_arrival = arrival_order
                .get(next_arrival_idx)
                .map(|&i| state.runtimes[i].prepared.request.arrival);
            let remaining = {
                let runtime = &state.runtimes[run_idx];
                runtime.cursor.remaining(&runtime.prepared.plan)
            };
            let completion_time = now + remaining;

            // ---- Event-horizon fast-forward (see the module docs) -----------------
            //
            // The next true event is the running task's completion or the
            // next arrival, whichever comes first. Every quantum wakeup
            // strictly before that horizon is provably inert when (a) no
            // other task is waiting — the policies are pure functions of
            // the views, so a one-candidate selection is a foregone
            // conclusion — or (b) the mode is non-preemptive, where the
            // scheduler is never consulted while a task runs. Jump straight
            // to the last such wakeup, crediting the skipped quanta's
            // invocations and token grants in one batch.
            if fast_forward {
                let horizon = match next_arrival {
                    Some(arrival) => completion_time.min(arrival.max(now)),
                    None => completion_time,
                };
                let inert = state.waiting.is_empty() || !self.sched.preemption.is_preemptive();
                if inert && next_quantum < horizon {
                    let span = horizon - next_quantum;
                    let periods = span.get().div_ceil(quantum.get());
                    let last_boundary = next_quantum + quantum * (periods - 1);
                    let skip_budget = last_boundary - now;
                    let consumed = {
                        let runtime = &mut state.runtimes[run_idx];
                        let plan = Arc::clone(&runtime.prepared.plan);
                        runtime.cursor.advance(&plan, skip_budget)
                    };
                    debug_assert_eq!(consumed, skip_budget, "horizon is before completion");
                    state.accrue(consumed);
                    now = last_boundary;
                    next_quantum = last_boundary + quantum;
                    scheduler_invocations += periods;
                    state.grant_tokens_batch(self.sched.token_scale, quantum, periods);
                }
            }

            let mut t_next = completion_time.min(next_quantum);
            if let Some(arrival) = next_arrival {
                t_next = t_next.min(arrival.max(now));
            }
            let budget = t_next - now;

            let consumed = {
                let runtime = &mut state.runtimes[run_idx];
                let plan = Arc::clone(&runtime.prepared.plan);
                runtime.cursor.advance(&plan, budget)
            };
            state.accrue(consumed);
            now += consumed;

            let finished = {
                let runtime = &state.runtimes[run_idx];
                runtime.cursor.is_complete(&runtime.prepared.plan)
            };
            if finished {
                state.complete(run_idx, now);
                running = None;
            } else if consumed.is_zero() && budget.is_zero() && next_arrival.is_none() {
                // Degenerate safety net: a zero-length plan completes instantly.
                state.complete(run_idx, now);
                running = None;
            }
        }

        // Build the id-sorted records, deriving the makespan in the same
        // pass instead of re-scanning afterwards.
        let mut makespan = Cycles::ZERO;
        let mut records: Vec<TaskRecord> = state
            .runtimes
            .iter()
            .map(|r| {
                let completion = r.completion.expect("all tasks completed");
                makespan = makespan.max(completion);
                TaskRecord {
                    id: r.prepared.request.id,
                    model: r.prepared.request.model,
                    batch: r.prepared.request.batch,
                    priority: r.prepared.request.priority,
                    arrival: r.prepared.request.arrival,
                    first_start: r.first_start.unwrap_or(r.prepared.request.arrival),
                    completion,
                    isolated_cycles: r.prepared.isolated_cycles(),
                    estimated_cycles: r.estimated,
                    preemption_count: r.preemption_count,
                    kill_restarts: r.kill_restarts,
                    checkpoint_overhead: r.checkpoint_overhead,
                    restore_overhead: r.restore_overhead,
                    max_checkpoint_bytes: r.max_checkpoint_bytes,
                }
            })
            .collect();
        records.sort_by_key(|r| r.id);

        SimOutcome {
            records,
            makespan,
            scheduler_invocations,
            checkpoint_preemptions,
            kill_preemptions,
            drain_decisions,
        }
    }

    /// Starts (or resumes) `idx` on the NPU at time `now`, charging a restore
    /// latency if its context was previously checkpointed. Returns the time
    /// at which useful execution begins.
    fn dispatch(
        &self,
        state: &mut EngineState,
        idx: usize,
        now: Cycles,
        checkpoint_model: &CheckpointModel,
    ) -> Cycles {
        // Leave the waiting set first: the dispatched task does not wait
        // through its own restore DMA, but everyone else does.
        state.leave_waiting(idx);
        let mut start = now;
        if state.runtimes[idx].needs_restore && self.sched.charge_restore {
            let restore = checkpoint_model.restore_cycles(state.runtimes[idx].checkpointed_bytes);
            state.runtimes[idx].restore_overhead += restore;
            state.accrue(restore);
            start += restore;
        }
        let runtime = &mut state.runtimes[idx];
        runtime.needs_restore = false;
        runtime.state = TaskState::Running;
        runtime.first_start = runtime.first_start.or(Some(start));
        runtime.last_scheduled = Some(start);
        start
    }

    /// Preempts the running task with CHECKPOINT: finishes the current
    /// `GEMM_OP` interval, spills the live context, and returns the new time.
    fn preempt_checkpoint(
        &self,
        state: &mut EngineState,
        run_idx: usize,
        now: Cycles,
        checkpoint_model: &CheckpointModel,
    ) -> Cycles {
        // Run to the next legal preemption point. The preempted task is
        // still Running here, so the boundary cycles charge waiting time to
        // everyone else only.
        let (boundary, live_bytes) = {
            let runtime = &mut state.runtimes[run_idx];
            let plan = Arc::clone(&runtime.prepared.plan);
            let boundary = runtime.cursor.cycles_to_boundary(&plan);
            runtime.cursor.advance(&plan, boundary);
            let live_bytes = runtime.cursor.live_checkpoint_bytes(&plan);
            (boundary, live_bytes)
        };
        state.accrue(boundary);
        let mut time = now + boundary;

        let checkpoint = checkpoint_model.checkpoint_cycles(live_bytes);
        {
            let runtime = &mut state.runtimes[run_idx];
            runtime.checkpoint_overhead += checkpoint;
            runtime.checkpointed_bytes = live_bytes;
            runtime.max_checkpoint_bytes = runtime.max_checkpoint_bytes.max(live_bytes);
            runtime.needs_restore = true;
            runtime.preemption_count += 1;
            runtime.state = TaskState::Checkpointed;
        }
        // During the checkpoint DMA nobody makes forward progress; everyone
        // waiting (including the just-preempted task) accrues wait time.
        state.enter_waiting(run_idx);
        state.accrue(checkpoint);
        time += checkpoint;
        time
    }

    /// Preempts the running task with KILL: all progress is discarded and the
    /// task restarts from scratch when it is next scheduled.
    fn preempt_kill(&self, state: &mut EngineState, run_idx: usize) {
        {
            let runtime = &mut state.runtimes[run_idx];
            runtime.cursor.reset();
            runtime.preemption_count += 1;
            runtime.kill_restarts += 1;
            runtime.checkpointed_bytes = 0;
            runtime.needs_restore = false;
            runtime.state = TaskState::Ready;
        }
        state.enter_waiting(run_idx);
    }

    /// Chooses the preemption mechanism for displacing `run_idx` in favour of
    /// `cand_idx` under the configured preemption mode.
    fn pick_mechanism(
        &self,
        runtimes: &[Runtime],
        run_idx: usize,
        cand_idx: usize,
    ) -> PreemptionMechanism {
        match self.sched.preemption {
            PreemptionMode::NonPreemptive => PreemptionMechanism::Drain,
            PreemptionMode::Static(mechanism) => mechanism,
            PreemptionMode::Dynamic | PreemptionMode::DynamicKill => {
                let inputs = MechanismDecisionInputs {
                    current_estimated: runtimes[run_idx].estimated,
                    current_executed: runtimes[run_idx].cursor.executed(),
                    candidate_estimated: runtimes[cand_idx].estimated,
                    candidate_executed: runtimes[cand_idx].cursor.executed(),
                };
                match select_mechanism(inputs) {
                    PreemptionMechanism::Drain => PreemptionMechanism::Drain,
                    _ if self.sched.preemption == PreemptionMode::DynamicKill => {
                        PreemptionMechanism::Kill
                    }
                    other => other,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use dnn_models::SeqSpec;

    fn npu() -> NpuConfig {
        NpuConfig::paper_default()
    }

    fn prepare(requests: Vec<TaskRequest>) -> Vec<PreparedTask> {
        let cfg = npu();
        requests
            .into_iter()
            .map(|r| PreparedTask::prepare(r, &cfg))
            .collect()
    }

    fn simple_requests() -> Vec<TaskRequest> {
        vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnVggNet).with_priority(Priority::Low),
            TaskRequest::new(TaskId(1), ModelKind::CnnAlexNet)
                .with_priority(Priority::High)
                .with_arrival(Cycles::new(200_000)),
            TaskRequest::new(TaskId(2), ModelKind::CnnGoogLeNet)
                .with_priority(Priority::Medium)
                .with_arrival(Cycles::new(400_000)),
        ]
    }

    fn run(
        policy: PolicyKind,
        preemption: PreemptionMode,
        requests: Vec<TaskRequest>,
    ) -> SimOutcome {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::named(policy, preemption));
        let prepared = prepare(requests);
        sim.run(&prepared)
    }

    #[test]
    fn single_task_runs_in_isolated_time() {
        let outcome = run(
            PolicyKind::Fcfs,
            PreemptionMode::NonPreemptive,
            vec![TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet)],
        );
        let record = &outcome.records[0];
        assert_eq!(record.turnaround(), record.isolated_cycles);
        assert!((record.ntt() - 1.0).abs() < 1e-9);
        assert_eq!(record.preemption_count, 0);
        assert_eq!(outcome.makespan, record.completion);
    }

    #[test]
    fn all_tasks_complete_under_every_policy_and_mode() {
        for policy in PolicyKind::ALL {
            for preemption in [
                PreemptionMode::NonPreemptive,
                PreemptionMode::Static(PreemptionMechanism::Checkpoint),
                PreemptionMode::Static(PreemptionMechanism::Kill),
                PreemptionMode::Dynamic,
                PreemptionMode::DynamicKill,
            ] {
                // Static(KILL) + round-robin livelocks by construction (each
                // task keeps discarding the other's progress every quantum);
                // the paper never evaluates that combination and the engine
                // reports it via its livelock safety valve, so skip it here.
                if policy == PolicyKind::RoundRobin
                    && preemption == PreemptionMode::Static(PreemptionMechanism::Kill)
                {
                    continue;
                }
                let outcome = run(policy, preemption, simple_requests());
                assert_eq!(outcome.records.len(), 3, "{policy:?}/{preemption:?}");
                for record in &outcome.records {
                    assert!(record.completion >= record.arrival);
                    assert!(
                        record.ntt() >= 0.999,
                        "{policy:?}/{preemption:?}: NTT {}",
                        record.ntt()
                    );
                }
            }
        }
    }

    #[test]
    fn np_fcfs_makes_later_tasks_wait_for_earlier_ones() {
        let outcome = run(
            PolicyKind::Fcfs,
            PreemptionMode::NonPreemptive,
            simple_requests(),
        );
        // Task 1 (AlexNet, high priority) arrives while VGG runs; under
        // NP-FCFS it cannot start until VGG finishes.
        let vgg = outcome.record(TaskId(0)).unwrap();
        let alexnet = outcome.record(TaskId(1)).unwrap();
        assert!(alexnet.first_start >= vgg.completion);
        assert!(alexnet.ntt() > 2.0);
    }

    #[test]
    fn preemptive_hpf_lets_the_high_priority_task_jump_the_queue() {
        let np = run(
            PolicyKind::Hpf,
            PreemptionMode::NonPreemptive,
            simple_requests(),
        );
        let preemptive = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let np_high = np.record(TaskId(1)).unwrap();
        let p_high = preemptive.record(TaskId(1)).unwrap();
        assert!(
            p_high.turnaround() < np_high.turnaround(),
            "preemption should shorten the high-priority task's turnaround ({} vs {})",
            p_high.turnaround(),
            np_high.turnaround()
        );
        assert!(preemptive.checkpoint_preemptions > 0);
        // The preempted VGG task records checkpoint overhead.
        let vgg = preemptive.record(TaskId(0)).unwrap();
        assert!(vgg.preemption_count > 0);
        assert!(vgg.checkpoint_overhead > Cycles::ZERO);
        assert!(vgg.max_checkpoint_bytes > 0);
    }

    #[test]
    fn kill_wastes_work_and_hurts_the_preempted_task() {
        let checkpoint = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let kill = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Kill),
            simple_requests(),
        );
        let vgg_ckpt = checkpoint.record(TaskId(0)).unwrap();
        let vgg_kill = kill.record(TaskId(0)).unwrap();
        assert!(vgg_kill.kill_restarts > 0);
        assert_eq!(vgg_ckpt.kill_restarts, 0);
        assert!(
            vgg_kill.turnaround() > vgg_ckpt.turnaround(),
            "KILL should waste the preempted task's progress"
        );
        // KILL has no checkpoint latency.
        assert_eq!(vgg_kill.checkpoint_overhead, Cycles::ZERO);
    }

    #[test]
    fn checkpoint_overhead_is_microseconds_not_milliseconds() {
        let outcome = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let cfg = npu();
        for record in &outcome.records {
            if let Some(latency) = record.mean_preemption_latency() {
                let us = cfg.cycles_to_micros(latency);
                assert!(us < 100.0, "preemption latency {us} us is too large");
            }
        }
    }

    #[test]
    fn dynamic_mode_sometimes_drains() {
        // A long task that is nearly finished when a long candidate arrives
        // should be drained rather than preempted.
        let requests = vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet).with_priority(Priority::Low),
            TaskRequest::new(TaskId(1), ModelKind::CnnVggNet)
                .with_priority(Priority::High)
                // Arrives when AlexNet is ~90% done.
                .with_arrival(Cycles::new(1_400_000)),
        ];
        let outcome = run(PolicyKind::Hpf, PreemptionMode::Dynamic, requests);
        assert!(outcome.drain_decisions > 0);
        assert_eq!(outcome.checkpoint_preemptions, 0);
    }

    #[test]
    fn prema_improves_high_priority_latency_over_np_fcfs() {
        let baseline = run(
            PolicyKind::Fcfs,
            PreemptionMode::NonPreemptive,
            simple_requests(),
        );
        let prema = run(
            PolicyKind::Prema,
            PreemptionMode::Dynamic,
            simple_requests(),
        );
        let base_high = baseline.record(TaskId(1)).unwrap();
        let prema_high = prema.record(TaskId(1)).unwrap();
        assert!(
            prema_high.turnaround() < base_high.turnaround(),
            "PREMA should improve the high-priority task's turnaround"
        );
        assert!(prema.antt() <= baseline.antt() + 1e-9);
    }

    #[test]
    fn restore_overhead_is_charged_when_a_checkpointed_task_resumes() {
        let outcome = run(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            simple_requests(),
        );
        let preempted: Vec<_> = outcome
            .records
            .iter()
            .filter(|r| r.preemption_count > 0)
            .collect();
        assert!(!preempted.is_empty());
        assert!(preempted.iter().any(|r| r.restore_overhead > Cycles::ZERO));
    }

    #[test]
    fn simulator_accessors_and_prepare() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        assert_eq!(sim.npu_config(), &npu());
        assert_eq!(sim.scheduler_config(), &SchedulerConfig::paper_default());
        let prepared = sim.prepare(&[TaskRequest::new(TaskId(0), ModelKind::CnnMobileNet)]);
        assert_eq!(prepared.len(), 1);
        assert!(prepared[0].isolated_cycles() > Cycles::ZERO);
        assert_eq!(
            prepared[0].estimated_cycles(),
            prepared[0].isolated_cycles()
        );
    }

    #[test]
    fn estimates_override_plan_length() {
        let cfg = npu();
        let request =
            TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet).with_estimate(Cycles::new(42));
        let prepared = PreparedTask::prepare(request, &cfg);
        assert_eq!(prepared.estimated_cycles(), Cycles::new(42));
        assert!(prepared.isolated_cycles() > Cycles::new(42));
    }

    #[test]
    fn rnn_tasks_also_run_to_completion() {
        let requests = vec![
            TaskRequest::new(TaskId(0), ModelKind::RnnSentiment)
                .with_seq(SeqSpec::new(20, 20))
                .with_priority(Priority::Low),
            TaskRequest::new(TaskId(1), ModelKind::RnnTranslation1)
                .with_seq(SeqSpec::new(15, 18))
                .with_priority(Priority::High)
                .with_arrival(Cycles::new(100_000)),
        ];
        let outcome = run(PolicyKind::Prema, PreemptionMode::Dynamic, requests);
        assert_eq!(outcome.records.len(), 2);
        for record in &outcome.records {
            assert!(record.ntt() >= 0.999);
        }
    }

    #[test]
    fn realign_quantum_matches_the_bump_loop() {
        for (next_quantum, now, quantum) in [
            (175_000u64, 0u64, 175_000u64),
            (175_000, 175_000, 175_000),
            (175_000, 175_001, 175_000),
            (175_000, 10_000_000, 175_000),
            (350_000, 349_999, 175_000),
            (1, 1_000_000_007, 3),
        ] {
            let mut looped = Cycles::new(next_quantum);
            let now = Cycles::new(now);
            let quantum = Cycles::new(quantum);
            while looped <= now {
                looped += quantum;
            }
            assert_eq!(
                realign_quantum(Cycles::new(next_quantum), now, quantum),
                looped,
                "next_quantum {next_quantum:?} now {now:?} quantum {quantum:?}"
            );
        }
    }

    #[test]
    fn summary_matches_the_two_pass_accessors() {
        let outcome = run(
            PolicyKind::Prema,
            PreemptionMode::Dynamic,
            simple_requests(),
        );
        let summary = outcome.summary();
        assert_eq!(summary.task_count, outcome.records.len());
        // Bit-identical: summary accumulates in the same record order.
        assert_eq!(summary.antt, outcome.antt());
        assert_eq!(summary.stp, outcome.stp());
        let preemptions: u64 = outcome.records.iter().map(|r| r.preemption_count).sum();
        let kills: u64 = outcome.records.iter().map(|r| r.kill_restarts).sum();
        assert_eq!(summary.preemptions, preemptions);
        assert_eq!(summary.kill_restarts, kills);

        let empty = SimOutcome {
            records: Vec::new(),
            makespan: Cycles::ZERO,
            scheduler_invocations: 0,
            checkpoint_preemptions: 0,
            kill_preemptions: 0,
            drain_decisions: 0,
        };
        assert_eq!(empty.summary(), OutcomeSummary::default());
        assert_eq!(empty.antt(), 0.0);
    }

    #[test]
    fn fast_forward_is_bit_identical_to_the_stepped_reference() {
        for policy in [PolicyKind::Fcfs, PolicyKind::Prema, PolicyKind::RoundRobin] {
            for preemption in [
                PreemptionMode::NonPreemptive,
                PreemptionMode::Dynamic,
                PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            ] {
                let sim = NpuSimulator::new(npu(), SchedulerConfig::named(policy, preemption));
                let prepared = prepare(simple_requests());
                let fast = sim.run(&prepared);
                let stepped = sim.run_reference(&prepared);
                assert_eq!(fast, stepped, "{policy:?}/{preemption:?}");
                // The skipped quanta are still accounted for: the single
                // isolated-task tail alone spans several quanta.
                assert!(fast.scheduler_invocations > 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_task_list_rejected() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let _ = sim.run(&[]);
    }

    #[test]
    #[should_panic(expected = "task IDs must be unique")]
    fn duplicate_ids_rejected() {
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let prepared = prepare(vec![
            TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet),
            TaskRequest::new(TaskId(0), ModelKind::CnnMobileNet),
        ]);
        let _ = sim.run(&prepared);
    }
}
