//! Scheduler configuration (Table II of the PREMA paper) and the
//! policy / preemption-mode taxonomy of the evaluation.

use serde::{Deserialize, Serialize};

use npu_sim::{Cycles, NpuConfig};

use crate::preemption::PreemptionMechanism;

/// Which scheduling policy picks the next task (Section VI-A/VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First-come first-serve — the TensorRT-Inference-Server-style baseline.
    Fcfs,
    /// Round-robin among the co-scheduled tasks.
    RoundRobin,
    /// High-priority first.
    Hpf,
    /// Token-based candidate selection, FCFS among the candidates.
    Token,
    /// Shortest-estimated-job first (priority-unaware).
    Sjf,
    /// PREMA: token-based candidate selection plus shortest-estimated-job
    /// selection among the candidates (Algorithm 2).
    Prema,
}

impl PolicyKind {
    /// All policies evaluated in Figure 11.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Fcfs,
        PolicyKind::RoundRobin,
        PolicyKind::Hpf,
        PolicyKind::Token,
        PolicyKind::Sjf,
        PolicyKind::Prema,
    ];

    /// The name used in the paper's figures.
    pub fn paper_name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::RoundRobin => "RRB",
            PolicyKind::Hpf => "HPF",
            PolicyKind::Token => "TOKEN",
            PolicyKind::Sjf => "SJF",
            PolicyKind::Prema => "PREMA",
        }
    }

    /// Whether the policy needs the task-length predictor (TOKEN, SJF and
    /// PREMA do; FCFS, RRB and HPF do not — Figure 11's caption).
    pub fn uses_predictor(self) -> bool {
        matches!(
            self,
            PolicyKind::Token | PolicyKind::Sjf | PolicyKind::Prema
        )
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// How the scheduler is allowed to take the NPU away from a running task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PreemptionMode {
    /// Never preempt: a selected candidate waits for the running task to
    /// finish (all "NP-" configurations).
    NonPreemptive,
    /// Always preempt with the given mechanism when the policy prefers a
    /// different task ("Static" configurations; the mechanism is
    /// CHECKPOINT or KILL).
    Static(PreemptionMechanism),
    /// Choose between CHECKPOINT and DRAIN per preemption using Algorithm 3
    /// ("Dynamic" configurations).
    Dynamic,
    /// Like [`PreemptionMode::Dynamic`] but uses KILL instead of CHECKPOINT
    /// when Algorithm 3 decides to preempt (the Figure 15 sensitivity study).
    DynamicKill,
}

impl PreemptionMode {
    /// Whether this mode ever preempts a running task.
    pub fn is_preemptive(self) -> bool {
        !matches!(self, PreemptionMode::NonPreemptive)
    }
}

/// Full scheduler configuration.
///
/// [`SchedulerConfig::paper_default`] reproduces Table II: a 0.25 ms
/// scheduling period and 1/3/9 tokens granted per low/medium/high priority
/// (the token grants themselves live on [`crate::task::Priority`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// The scheduling policy.
    pub policy: PolicyKind,
    /// The preemption mode.
    pub preemption: PreemptionMode,
    /// Scheduling period time-quota in milliseconds (Table II: 0.25 ms).
    pub quantum_ms: f64,
    /// Whether a checkpointed task pays a restore latency when it is next
    /// scheduled (enabled by default; disable to model free restores).
    pub charge_restore: bool,
    /// Multiplier applied to the token grants of Table II (1.0 by default);
    /// exposed for the sensitivity study of Section VI-E.
    pub token_scale: f64,
}

impl SchedulerConfig {
    /// The PREMA configuration of Table II: dynamic preemption, 0.25 ms
    /// scheduling period, 1/3/9 token grants.
    pub fn paper_default() -> Self {
        SchedulerConfig {
            policy: PolicyKind::Prema,
            preemption: PreemptionMode::Dynamic,
            quantum_ms: 0.25,
            charge_restore: true,
            token_scale: 1.0,
        }
    }

    /// A named configuration in the paper's nomenclature: `NP-<policy>`,
    /// `Static-<policy>` (CHECKPOINT) or `Dynamic-<policy>`.
    pub fn named(policy: PolicyKind, preemption: PreemptionMode) -> Self {
        SchedulerConfig {
            policy,
            preemption,
            ..SchedulerConfig::paper_default()
        }
    }

    /// The baseline NP-FCFS configuration every figure normalizes against.
    pub fn np_fcfs() -> Self {
        SchedulerConfig::named(PolicyKind::Fcfs, PreemptionMode::NonPreemptive)
    }

    /// The scheduling quantum in cycles for a given NPU configuration.
    pub fn quantum_cycles(&self, npu: &NpuConfig) -> Cycles {
        npu.millis_to_cycles(self.quantum_ms)
    }

    /// The paper-style label of this configuration (e.g. "Dynamic-PREMA").
    pub fn label(&self) -> String {
        let prefix = match self.preemption {
            PreemptionMode::NonPreemptive => "NP",
            PreemptionMode::Static(PreemptionMechanism::Kill) => "Static(KILL)",
            PreemptionMode::Static(_) => "Static",
            PreemptionMode::Dynamic => "Dynamic",
            PreemptionMode::DynamicKill => "Dynamic(KILL)",
        };
        format!("{}-{}", prefix, self.policy.paper_name())
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error string if the quantum or token scale is not positive,
    /// or if a static preemption mode names DRAIN (DRAIN is not a standalone
    /// preemption mechanism; use [`PreemptionMode::NonPreemptive`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.quantum_ms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("scheduling quantum must be positive".into());
        }
        if self.token_scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("token scale must be positive".into());
        }
        if self.preemption == PreemptionMode::Static(PreemptionMechanism::Drain) {
            return Err(
                "Static(DRAIN) is equivalent to non-preemptive scheduling; use NonPreemptive"
                    .into(),
            );
        }
        Ok(())
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_two() {
        let cfg = SchedulerConfig::paper_default();
        assert_eq!(cfg.policy, PolicyKind::Prema);
        assert_eq!(cfg.preemption, PreemptionMode::Dynamic);
        assert_eq!(cfg.quantum_ms, 0.25);
        assert!(cfg.validate().is_ok());
        assert_eq!(SchedulerConfig::default(), cfg);
    }

    #[test]
    fn quantum_is_quarter_millisecond_in_cycles() {
        let cfg = SchedulerConfig::paper_default();
        let npu = NpuConfig::paper_default();
        assert_eq!(cfg.quantum_cycles(&npu), Cycles::new(175_000));
    }

    #[test]
    fn all_policies_have_unique_names() {
        let mut names: Vec<_> = PolicyKind::ALL.iter().map(|p| p.paper_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), PolicyKind::ALL.len());
    }

    #[test]
    fn predictor_usage_matches_figure_eleven_caption() {
        assert!(!PolicyKind::Fcfs.uses_predictor());
        assert!(!PolicyKind::RoundRobin.uses_predictor());
        assert!(!PolicyKind::Hpf.uses_predictor());
        assert!(PolicyKind::Token.uses_predictor());
        assert!(PolicyKind::Sjf.uses_predictor());
        assert!(PolicyKind::Prema.uses_predictor());
    }

    #[test]
    fn labels_follow_paper_nomenclature() {
        assert_eq!(SchedulerConfig::np_fcfs().label(), "NP-FCFS");
        let static_prema = SchedulerConfig::named(
            PolicyKind::Prema,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
        );
        assert_eq!(static_prema.label(), "Static-PREMA");
        let dyn_sjf = SchedulerConfig::named(PolicyKind::Sjf, PreemptionMode::Dynamic);
        assert_eq!(dyn_sjf.label(), "Dynamic-SJF");
        let kill = SchedulerConfig::named(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Kill),
        );
        assert_eq!(kill.label(), "Static(KILL)-HPF");
    }

    #[test]
    fn preemptive_modes_are_classified() {
        assert!(!PreemptionMode::NonPreemptive.is_preemptive());
        assert!(PreemptionMode::Dynamic.is_preemptive());
        assert!(PreemptionMode::DynamicKill.is_preemptive());
        assert!(PreemptionMode::Static(PreemptionMechanism::Kill).is_preemptive());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SchedulerConfig::paper_default();
        cfg.quantum_ms = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = SchedulerConfig::paper_default();
        cfg.token_scale = -1.0;
        assert!(cfg.validate().is_err());
        let cfg = SchedulerConfig::named(
            PolicyKind::Prema,
            PreemptionMode::Static(PreemptionMechanism::Drain),
        );
        assert!(cfg.validate().is_err());
    }
}
