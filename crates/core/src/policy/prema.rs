//! The PREMA scheduling policy (Algorithm 2).
//!
//! PREMA combines the token machinery of [`super::TokenPolicy`] with the
//! latency-optimal candidate selection of [`super::ShortestJobFirst`]:
//!
//! 1. Every dispatched task is seeded with tokens equal to its priority grant
//!    (1/3/9, Table II).
//! 2. Each scheduling period, every waiting task earns additional tokens
//!    proportional to its priority and its normalized slowdown (handled by
//!    the engine, which owns the context table).
//! 3. The candidate group is the set of tasks whose tokens reach the dynamic
//!    threshold (the maximum token count rounded down to a grant level).
//! 4. Among the candidates, the task with the shortest *estimated remaining*
//!    execution time is selected (`FindShortestEstimatedJob`).

use npu_sim::Cycles;

use crate::task::TaskId;

use super::{candidate_group, SchedulingPolicy, TaskView};

/// The predictive, token-based PREMA policy.
#[derive(Debug, Clone, Copy)]
pub struct Prema {
    token_scale: f64,
}

impl Prema {
    /// Creates the policy with the given token grant scale (1.0 = Table II).
    pub fn new(token_scale: f64) -> Self {
        assert!(token_scale > 0.0, "token scale must be positive");
        Prema { token_scale }
    }
}

impl Default for Prema {
    fn default() -> Self {
        Prema::new(1.0)
    }
}

impl SchedulingPolicy for Prema {
    fn name(&self) -> &'static str {
        "PREMA"
    }

    fn select(&mut self, _now: Cycles, tasks: &[TaskView]) -> TaskId {
        let candidates = candidate_group(tasks, self.token_scale);
        candidates
            .iter()
            .min_by_key(|t| (t.estimated_remaining(), t.arrival, t.id))
            .expect("candidate group is never empty")
            .id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::view;
    use crate::task::Priority;

    #[test]
    fn shortest_job_among_candidates_wins() {
        let mut policy = Prema::new(1.0);
        let mut long_high = view(1, Priority::High, 0);
        long_high.tokens = 9.0;
        long_high.estimated_total = Cycles::new(10_000_000);
        let mut short_high = view(2, Priority::High, 100);
        short_high.tokens = 9.0;
        short_high.estimated_total = Cycles::new(500_000);
        assert_eq!(
            policy.select(Cycles::ZERO, &[long_high, short_high]),
            TaskId(2)
        );
    }

    #[test]
    fn short_job_outside_the_candidate_group_does_not_win() {
        let mut policy = Prema::new(1.0);
        // The shortest task has too few tokens to be a candidate; PREMA picks
        // the shortest job *within* the candidate group.
        let mut short_low = view(1, Priority::Low, 0);
        short_low.tokens = 1.0;
        short_low.estimated_total = Cycles::new(100_000);
        let mut long_high = view(2, Priority::High, 100);
        long_high.tokens = 9.0;
        long_high.estimated_total = Cycles::new(5_000_000);
        assert_eq!(
            policy.select(Cycles::ZERO, &[short_low, long_high]),
            TaskId(2)
        );
    }

    #[test]
    fn starved_low_priority_task_eventually_becomes_a_candidate() {
        let mut policy = Prema::new(1.0);
        // After waiting, the low-priority task accumulated 9.3 tokens: the
        // threshold stays at 9 and both tasks are candidates; the shorter
        // low-priority task now wins — the Figure 2(d) behaviour.
        let mut waited_low = view(1, Priority::Low, 0);
        waited_low.tokens = 9.3;
        waited_low.estimated_total = Cycles::new(200_000);
        let mut fresh_high = view(2, Priority::High, 50_000);
        fresh_high.tokens = 9.0;
        fresh_high.estimated_total = Cycles::new(3_000_000);
        assert_eq!(
            policy.select(Cycles::new(50_000), &[waited_low, fresh_high]),
            TaskId(1)
        );
    }

    #[test]
    fn remaining_not_total_length_is_compared() {
        let mut policy = Prema::new(1.0);
        let mut nearly_done_long = view(1, Priority::Medium, 0);
        nearly_done_long.tokens = 3.0;
        nearly_done_long.estimated_total = Cycles::new(2_000_000);
        nearly_done_long.executed = Cycles::new(1_950_000);
        let mut fresh_short = view(2, Priority::Medium, 100);
        fresh_short.tokens = 3.0;
        fresh_short.estimated_total = Cycles::new(400_000);
        assert_eq!(
            policy.select(Cycles::ZERO, &[nearly_done_long, fresh_short]),
            TaskId(1)
        );
    }

    #[test]
    #[should_panic(expected = "token scale must be positive")]
    fn non_positive_scale_rejected() {
        let _ = Prema::new(-1.0);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(Prema::default().name(), "PREMA");
    }
}
