//! Shortest-estimated-job first (the SJF configuration of Figure 11/12).
//!
//! SJF is the latency-optimal but priority-unaware extreme: it sorts jobs by
//! the predictor's estimate of their remaining length and always serves the
//! shortest. The paper uses it to show that PREMA reaches 92 % of SJF's ANTT
//! while, unlike SJF, not destroying the QoS of high-priority requests
//! (Figure 14).

use npu_sim::Cycles;

use crate::task::TaskId;

use super::{SchedulingPolicy, TaskView};

/// Serve the task with the smallest estimated remaining execution time.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestJobFirst;

impl ShortestJobFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        ShortestJobFirst
    }
}

impl SchedulingPolicy for ShortestJobFirst {
    fn name(&self) -> &'static str {
        "SJF"
    }

    fn select(&mut self, _now: Cycles, tasks: &[TaskView]) -> TaskId {
        tasks
            .iter()
            .min_by_key(|t| (t.estimated_remaining(), t.arrival, t.id))
            .expect("policy select is never called with zero tasks")
            .id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::view;
    use crate::task::Priority;

    #[test]
    fn shortest_estimated_job_wins_regardless_of_priority() {
        let mut policy = ShortestJobFirst::new();
        let mut long_high = view(1, Priority::High, 0);
        long_high.estimated_total = Cycles::new(10_000_000);
        let mut short_low = view(2, Priority::Low, 100);
        short_low.estimated_total = Cycles::new(100_000);
        assert_eq!(
            policy.select(Cycles::ZERO, &[long_high, short_low]),
            TaskId(2)
        );
    }

    #[test]
    fn remaining_time_not_total_time_is_compared() {
        let mut policy = ShortestJobFirst::new();
        // A long task that is nearly done beats a short fresh task.
        let mut nearly_done = view(1, Priority::Low, 0);
        nearly_done.estimated_total = Cycles::new(1_000_000);
        nearly_done.executed = Cycles::new(950_000);
        let mut fresh_short = view(2, Priority::Low, 0);
        fresh_short.estimated_total = Cycles::new(200_000);
        assert_eq!(
            policy.select(Cycles::ZERO, &[nearly_done, fresh_short]),
            TaskId(1)
        );
    }

    #[test]
    fn arrival_breaks_ties() {
        let mut policy = ShortestJobFirst::new();
        let a = view(1, Priority::Low, 500);
        let b = view(2, Priority::Low, 100);
        assert_eq!(policy.select(Cycles::ZERO, &[a, b]), TaskId(2));
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(ShortestJobFirst::new().name(), "SJF");
    }
}
