//! Round-robin among the co-scheduled DNN tasks (the RRB baseline of
//! Figure 11).

use npu_sim::Cycles;

use crate::task::TaskId;

use super::{SchedulingPolicy, TaskView};

/// Rotate the NPU among the schedulable tasks: the task that ran least
/// recently goes next. Under a preemptive configuration this becomes
/// time-slicing at the scheduling quantum.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        RoundRobin
    }
}

impl SchedulingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "RRB"
    }

    fn select(&mut self, _now: Cycles, tasks: &[TaskView]) -> TaskId {
        tasks
            .iter()
            .min_by_key(|t| {
                (
                    // Never-scheduled tasks go first (in arrival order), then
                    // the least recently scheduled.
                    t.last_scheduled.is_some(),
                    t.last_scheduled.unwrap_or(t.arrival),
                    t.arrival,
                    t.id,
                )
            })
            .expect("policy select is never called with zero tasks")
            .id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::view;
    use crate::task::Priority;

    #[test]
    fn never_scheduled_tasks_go_before_recently_scheduled_ones() {
        let mut policy = RoundRobin::new();
        let mut ran_recently = view(1, Priority::High, 0);
        ran_recently.last_scheduled = Some(Cycles::new(10_000));
        ran_recently.is_running = true;
        let fresh = view(2, Priority::Low, 500);
        assert_eq!(
            policy.select(Cycles::new(20_000), &[ran_recently, fresh]),
            TaskId(2)
        );
    }

    #[test]
    fn least_recently_scheduled_wins_among_previously_run_tasks() {
        let mut policy = RoundRobin::new();
        let mut a = view(1, Priority::Low, 0);
        a.last_scheduled = Some(Cycles::new(5_000));
        let mut b = view(2, Priority::Low, 0);
        b.last_scheduled = Some(Cycles::new(1_000));
        assert_eq!(policy.select(Cycles::new(20_000), &[a, b]), TaskId(2));
    }

    #[test]
    fn fresh_tasks_are_ordered_by_arrival() {
        let mut policy = RoundRobin::new();
        let a = view(1, Priority::Low, 300);
        let b = view(2, Priority::Low, 100);
        assert_eq!(policy.select(Cycles::ZERO, &[a, b]), TaskId(2));
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(RoundRobin::new().name(), "RRB");
    }
}
