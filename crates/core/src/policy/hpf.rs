//! High-priority first (the NP-HPF / P-HPF configurations of Figure 2 and
//! Section IV-D).

use npu_sim::Cycles;

use crate::task::TaskId;

use super::{SchedulingPolicy, TaskView};

/// Always serve the highest-priority schedulable task; arrival order breaks
/// ties. Priority-aware but length-unaware: short low-priority tasks can be
/// starved (Section V-A).
#[derive(Debug, Clone, Copy, Default)]
pub struct HighPriorityFirst;

impl HighPriorityFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        HighPriorityFirst
    }
}

impl SchedulingPolicy for HighPriorityFirst {
    fn name(&self) -> &'static str {
        "HPF"
    }

    fn select(&mut self, _now: Cycles, tasks: &[TaskView]) -> TaskId {
        tasks
            .iter()
            .min_by_key(|t| (std::cmp::Reverse(t.priority), t.arrival, t.id))
            .expect("policy select is never called with zero tasks")
            .id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::view;
    use crate::task::Priority;

    #[test]
    fn highest_priority_wins() {
        let mut policy = HighPriorityFirst::new();
        let low = view(1, Priority::Low, 0);
        let medium = view(2, Priority::Medium, 100);
        let high = view(3, Priority::High, 200);
        assert_eq!(policy.select(Cycles::ZERO, &[low, medium, high]), TaskId(3));
    }

    #[test]
    fn arrival_breaks_priority_ties() {
        let mut policy = HighPriorityFirst::new();
        let a = view(1, Priority::Medium, 300);
        let b = view(2, Priority::Medium, 100);
        assert_eq!(policy.select(Cycles::ZERO, &[a, b]), TaskId(2));
    }

    #[test]
    fn a_running_low_priority_task_is_displaced_by_a_high_priority_arrival() {
        let mut policy = HighPriorityFirst::new();
        let mut running_low = view(1, Priority::Low, 0);
        running_low.is_running = true;
        let new_high = view(2, Priority::High, 1_000);
        assert_eq!(
            policy.select(Cycles::new(1_000), &[running_low, new_high]),
            TaskId(2)
        );
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(HighPriorityFirst::new().name(), "HPF");
    }
}
