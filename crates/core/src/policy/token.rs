//! The TOKEN policy: token-based candidate selection with FCFS among the
//! candidates (Figure 11's TOKEN configuration).
//!
//! TOKEN exercises the first half of PREMA's machinery — priority-seeded
//! tokens that grow with each task's normalized slowdown — but, unlike full
//! PREMA, picks among the candidate group in plain arrival order rather than
//! shortest-estimated-job first.

use npu_sim::Cycles;

use crate::task::TaskId;

use super::{candidate_group, earliest_arrival, SchedulingPolicy, TaskView};

/// Token-gated FCFS.
#[derive(Debug, Clone, Copy)]
pub struct TokenPolicy {
    token_scale: f64,
}

impl TokenPolicy {
    /// Creates the policy with the given token grant scale (1.0 = Table II).
    pub fn new(token_scale: f64) -> Self {
        assert!(token_scale > 0.0, "token scale must be positive");
        TokenPolicy { token_scale }
    }
}

impl Default for TokenPolicy {
    fn default() -> Self {
        TokenPolicy::new(1.0)
    }
}

impl SchedulingPolicy for TokenPolicy {
    fn name(&self) -> &'static str {
        "TOKEN"
    }

    fn select(&mut self, _now: Cycles, tasks: &[TaskView]) -> TaskId {
        let candidates = candidate_group(tasks, self.token_scale);
        earliest_arrival(&candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::view;
    use crate::task::Priority;

    #[test]
    fn high_token_tasks_form_the_candidate_group() {
        let mut policy = TokenPolicy::new(1.0);
        // An early low-priority task with few tokens loses to a later
        // high-priority task whose tokens reach the threshold.
        let mut early_low = view(1, Priority::Low, 0);
        early_low.tokens = 1.0;
        let mut late_high = view(2, Priority::High, 100);
        late_high.tokens = 9.0;
        assert_eq!(
            policy.select(Cycles::ZERO, &[early_low, late_high]),
            TaskId(2)
        );
    }

    #[test]
    fn fcfs_among_candidates() {
        let mut policy = TokenPolicy::new(1.0);
        let mut a = view(1, Priority::Medium, 500);
        a.tokens = 9.5;
        let mut b = view(2, Priority::Medium, 100);
        b.tokens = 9.2;
        assert_eq!(policy.select(Cycles::ZERO, &[a, b]), TaskId(2));
    }

    #[test]
    fn low_priority_task_with_accumulated_tokens_can_win() {
        let mut policy = TokenPolicy::new(1.0);
        // The low-priority task waited long enough to accumulate more tokens
        // than a fresh high-priority task's initial grant; both are in the
        // candidate group and the low-priority task arrived earlier.
        let mut starved_low = view(1, Priority::Low, 0);
        starved_low.tokens = 10.0;
        let fresh_high = view(2, Priority::High, 10_000);
        assert_eq!(
            policy.select(Cycles::new(10_000), &[starved_low, fresh_high]),
            TaskId(1)
        );
    }

    #[test]
    #[should_panic(expected = "token scale must be positive")]
    fn zero_token_scale_rejected() {
        let _ = TokenPolicy::new(0.0);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(TokenPolicy::default().name(), "TOKEN");
    }
}
