//! The TOKEN policy: token-based candidate selection with FCFS among the
//! candidates (Figure 11's TOKEN configuration).
//!
//! TOKEN exercises the first half of PREMA's machinery — priority-seeded
//! tokens that grow with each task's normalized slowdown — but, unlike full
//! PREMA, picks among the candidate group in plain arrival order rather than
//! shortest-estimated-job first.

use npu_sim::Cycles;

use crate::task::{Priority, TaskId};

use super::{candidate_group, earliest_arrival, SchedulingPolicy, TaskView};

/// The tokens granted to a waiting task for one scheduling period in which it
/// newly waited `newly_waited` cycles (Algorithm 2, line 7): the task's
/// priority grant, scaled by `token_scale` and by the normalized slowdown it
/// accumulated over the period.
///
/// This is *the* token-accrual formula — the engine charges it both when it
/// steps through a scheduling period and when its event-horizon fast path
/// replays a run of skipped periods in a batch
/// (`grant_tokens_batch`), so both paths produce bit-identical `f64` token
/// state: a batch grant over `n` periods performs the same `n` additions of
/// the same per-period values, in the same per-task order, as stepping.
pub fn period_token_grant(
    priority: Priority,
    token_scale: f64,
    newly_waited: Cycles,
    estimated: Cycles,
) -> f64 {
    let slowdown = newly_waited.get() as f64 / estimated.get().max(1) as f64;
    priority.token_grant() * token_scale * slowdown
}

/// Token-gated FCFS.
#[derive(Debug, Clone, Copy)]
pub struct TokenPolicy {
    token_scale: f64,
}

impl TokenPolicy {
    /// Creates the policy with the given token grant scale (1.0 = Table II).
    pub fn new(token_scale: f64) -> Self {
        assert!(token_scale > 0.0, "token scale must be positive");
        TokenPolicy { token_scale }
    }
}

impl Default for TokenPolicy {
    fn default() -> Self {
        TokenPolicy::new(1.0)
    }
}

impl SchedulingPolicy for TokenPolicy {
    fn name(&self) -> &'static str {
        "TOKEN"
    }

    fn select(&mut self, _now: Cycles, tasks: &[TaskView]) -> TaskId {
        let candidates = candidate_group(tasks, self.token_scale);
        earliest_arrival(&candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::view;
    use crate::task::Priority;

    #[test]
    fn high_token_tasks_form_the_candidate_group() {
        let mut policy = TokenPolicy::new(1.0);
        // An early low-priority task with few tokens loses to a later
        // high-priority task whose tokens reach the threshold.
        let mut early_low = view(1, Priority::Low, 0);
        early_low.tokens = 1.0;
        let mut late_high = view(2, Priority::High, 100);
        late_high.tokens = 9.0;
        assert_eq!(
            policy.select(Cycles::ZERO, &[early_low, late_high]),
            TaskId(2)
        );
    }

    #[test]
    fn fcfs_among_candidates() {
        let mut policy = TokenPolicy::new(1.0);
        let mut a = view(1, Priority::Medium, 500);
        a.tokens = 9.5;
        let mut b = view(2, Priority::Medium, 100);
        b.tokens = 9.2;
        assert_eq!(policy.select(Cycles::ZERO, &[a, b]), TaskId(2));
    }

    #[test]
    fn low_priority_task_with_accumulated_tokens_can_win() {
        let mut policy = TokenPolicy::new(1.0);
        // The low-priority task waited long enough to accumulate more tokens
        // than a fresh high-priority task's initial grant; both are in the
        // candidate group and the low-priority task arrived earlier.
        let mut starved_low = view(1, Priority::Low, 0);
        starved_low.tokens = 10.0;
        let fresh_high = view(2, Priority::High, 10_000);
        assert_eq!(
            policy.select(Cycles::new(10_000), &[starved_low, fresh_high]),
            TaskId(1)
        );
    }

    #[test]
    #[should_panic(expected = "token scale must be positive")]
    fn zero_token_scale_rejected() {
        let _ = TokenPolicy::new(0.0);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(TokenPolicy::default().name(), "TOKEN");
    }

    #[test]
    fn period_grant_scales_with_priority_slowdown_and_scale() {
        // One full period waited against an equal estimate: slowdown 1, so
        // the grant is exactly the priority grant times the scale.
        let quantum = Cycles::new(175_000);
        for priority in Priority::ALL {
            let grant = period_token_grant(priority, 1.0, quantum, quantum);
            assert_eq!(grant, priority.token_grant());
            let scaled = period_token_grant(priority, 2.0, quantum, quantum);
            assert_eq!(scaled, priority.token_grant() * 2.0);
        }
        // Longer estimates dilute the per-period grant.
        let diluted = period_token_grant(Priority::High, 1.0, quantum, quantum * 4);
        assert_eq!(diluted, Priority::High.token_grant() * 0.25);
        // A zero estimate is clamped rather than dividing by zero.
        let clamped = period_token_grant(Priority::Low, 1.0, quantum, Cycles::ZERO);
        assert!(clamped.is_finite());
    }
}
