//! First-come first-serve: the baseline policy of TensorRT Inference Server
//! and TensorFlow Serving (Section I).

use npu_sim::Cycles;

use crate::task::TaskId;

use super::{earliest_arrival, SchedulingPolicy, TaskView};

/// Serve requests strictly in arrival order, ignoring priority and job
/// length.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Fcfs
    }
}

impl SchedulingPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn select(&mut self, _now: Cycles, tasks: &[TaskView]) -> TaskId {
        earliest_arrival(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::view;
    use crate::task::Priority;

    #[test]
    fn picks_earliest_arrival_regardless_of_priority_or_length() {
        let mut policy = Fcfs::new();
        let mut late_high = view(1, Priority::High, 500);
        late_high.estimated_total = Cycles::new(10);
        let early_low = view(2, Priority::Low, 100);
        let selected = policy.select(Cycles::ZERO, &[late_high, early_low]);
        assert_eq!(selected, TaskId(2));
    }

    #[test]
    fn running_task_arrived_first_so_it_is_never_displaced() {
        let mut policy = Fcfs::new();
        let mut running = view(1, Priority::Low, 0);
        running.is_running = true;
        let waiting = view(2, Priority::High, 10);
        assert_eq!(
            policy.select(Cycles::new(1000), &[running, waiting]),
            TaskId(1)
        );
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(Fcfs::new().name(), "FCFS");
    }
}
