//! Scheduling policies.
//!
//! All six policies of the paper's evaluation (Figure 11/12) share one
//! interface: given the scheduler's view of every schedulable task (the ready
//! queue plus, in preemptive modes, the currently running task), return the
//! task that should own the NPU next. The engine is responsible for turning a
//! "different task than the one running" answer into an actual preemption via
//! the configured preemption mode.

mod fcfs;
mod hpf;
mod prema;
mod round_robin;
mod sjf;
mod token;

pub use fcfs::Fcfs;
pub use hpf::HighPriorityFirst;
pub use prema::Prema;
pub use round_robin::RoundRobin;
pub use sjf::ShortestJobFirst;
pub use token::{period_token_grant, TokenPolicy};

use npu_sim::Cycles;

use crate::config::PolicyKind;
use crate::task::{Priority, TaskId};

/// The scheduler's view of one schedulable task at a scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskView {
    /// Task identifier.
    pub id: TaskId,
    /// User-defined priority.
    pub priority: Priority,
    /// Dispatch time.
    pub arrival: Cycles,
    /// Accumulated scheduling tokens.
    pub tokens: f64,
    /// Predictor estimate of the task's total execution time.
    pub estimated_total: Cycles,
    /// Cycles executed so far.
    pub executed: Cycles,
    /// Cycles spent waiting in the ready queue so far.
    pub waited: Cycles,
    /// When the task last started running on the NPU, if ever.
    pub last_scheduled: Option<Cycles>,
    /// Whether the task is the one currently running.
    pub is_running: bool,
}

impl TaskView {
    /// The estimated remaining execution time (what `FindShortestEstimatedJob`
    /// in Algorithm 2 compares).
    pub fn estimated_remaining(&self) -> Cycles {
        self.estimated_total - self.executed
    }
}

/// A scheduling policy: selects which task should own the NPU next.
pub trait SchedulingPolicy: std::fmt::Debug + Send {
    /// The policy's paper name.
    fn name(&self) -> &'static str;

    /// Selects the next task among `tasks` (never empty). `now` is the
    /// current simulation time.
    ///
    /// # Contract
    ///
    /// `select` must be a pure function of `(now, tasks)` — it must not
    /// carry observable state between invocations. The engine's
    /// event-horizon fast path relies on this: when the only schedulable
    /// task is the one already running, the decision is a foregone
    /// conclusion and the engine skips the wakeup (and therefore the
    /// `select` call) entirely, which is only bit-identical to stepping if
    /// elided calls could not have mutated the policy. All six paper
    /// policies satisfy this; the determinism regression tests enforce it.
    fn select(&mut self, now: Cycles, tasks: &[TaskView]) -> TaskId;
}

/// Constructs the policy implementation for a [`PolicyKind`].
///
/// `token_scale` multiplies the Table II token grant levels used as candidate
/// thresholds by the TOKEN and PREMA policies (Section VI-E sensitivity).
pub fn make_policy(kind: PolicyKind, token_scale: f64) -> Box<dyn SchedulingPolicy> {
    match kind {
        PolicyKind::Fcfs => Box::new(Fcfs::new()),
        PolicyKind::RoundRobin => Box::new(RoundRobin::new()),
        PolicyKind::Hpf => Box::new(HighPriorityFirst::new()),
        PolicyKind::Token => Box::new(TokenPolicy::new(token_scale)),
        PolicyKind::Sjf => Box::new(ShortestJobFirst::new()),
        PolicyKind::Prema => Box::new(Prema::new(token_scale)),
    }
}

/// The token threshold of Algorithm 2: the largest token count held by any
/// schedulable task, rounded *down* to the closest priority grant level
/// (1/3/9 scaled by `token_scale`). Tasks holding at least this many tokens
/// form the candidate group.
pub(crate) fn token_threshold(tasks: &[TaskView], token_scale: f64) -> f64 {
    let max_tokens = tasks.iter().map(|t| t.tokens).fold(0.0, f64::max);
    let levels: Vec<f64> = Priority::ALL
        .iter()
        .map(|p| p.token_grant() * token_scale)
        .collect();
    let mut threshold = levels[0];
    for &level in &levels {
        if max_tokens >= level {
            threshold = level;
        }
    }
    threshold
}

/// Splits tasks into the candidate group: those whose tokens reach the
/// threshold. Falls back to all tasks if the group would be empty (which can
/// only happen if every token count is below the lowest grant level).
pub(crate) fn candidate_group(tasks: &[TaskView], token_scale: f64) -> Vec<TaskView> {
    let threshold = token_threshold(tasks, token_scale);
    let candidates: Vec<TaskView> = tasks
        .iter()
        .filter(|t| t.tokens >= threshold)
        .copied()
        .collect();
    if candidates.is_empty() {
        tasks.to_vec()
    } else {
        candidates
    }
}

/// Deterministic arrival-order tie break used by every policy: earliest
/// arrival first, then lowest task ID.
pub(crate) fn earliest_arrival(tasks: &[TaskView]) -> TaskId {
    tasks
        .iter()
        .min_by_key(|t| (t.arrival, t.id))
        .expect("policy select is never called with zero tasks")
        .id
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Builds a task view with sensible defaults for policy unit tests.
    pub fn view(id: u64, priority: Priority, arrival: u64) -> TaskView {
        TaskView {
            id: TaskId(id),
            priority,
            arrival: Cycles::new(arrival),
            tokens: priority.token_grant(),
            estimated_total: Cycles::new(1_000_000),
            executed: Cycles::ZERO,
            waited: Cycles::ZERO,
            last_scheduled: None,
            is_running: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::view;
    use super::*;

    #[test]
    fn estimated_remaining_subtracts_executed() {
        let mut v = view(1, Priority::Low, 0);
        v.estimated_total = Cycles::new(100);
        v.executed = Cycles::new(30);
        assert_eq!(v.estimated_remaining(), Cycles::new(70));
    }

    #[test]
    fn token_threshold_rounds_down_to_grant_levels() {
        // Paper example: the largest token count is 8, so the threshold is 3
        // (not 9).
        let mut a = view(1, Priority::Low, 0);
        a.tokens = 8.0;
        let b = view(2, Priority::Low, 10);
        assert_eq!(token_threshold(&[a, b], 1.0), 3.0);

        let mut c = view(3, Priority::High, 0);
        c.tokens = 9.0;
        assert_eq!(token_threshold(&[c], 1.0), 9.0);

        let mut d = view(4, Priority::Low, 0);
        d.tokens = 0.5;
        assert_eq!(token_threshold(&[d], 1.0), 1.0);
    }

    #[test]
    fn candidate_group_respects_threshold_and_never_empties() {
        let mut a = view(1, Priority::Low, 0);
        a.tokens = 8.0;
        let mut b = view(2, Priority::Low, 10);
        b.tokens = 2.0;
        let mut c = view(3, Priority::Low, 20);
        c.tokens = 4.0;
        // Threshold is 3: tasks with >= 3 tokens qualify.
        let group = candidate_group(&[a, b, c], 1.0);
        let ids: Vec<_> = group.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![1, 3]);

        // All tokens below the lowest level: fall back to everyone.
        let mut d = view(4, Priority::Low, 0);
        d.tokens = 0.2;
        let group = candidate_group(&[d], 1.0);
        assert_eq!(group.len(), 1);
    }

    #[test]
    fn threshold_scales_with_token_scale() {
        let mut a = view(1, Priority::Low, 0);
        a.tokens = 8.0;
        // With doubled grant levels (2/6/18), 8 tokens round down to 6.
        assert_eq!(token_threshold(&[a], 2.0), 6.0);
    }

    #[test]
    fn earliest_arrival_breaks_ties_by_id() {
        let a = view(2, Priority::Low, 100);
        let b = view(1, Priority::Low, 100);
        let c = view(3, Priority::Low, 200);
        assert_eq!(earliest_arrival(&[a, b, c]), TaskId(1));
    }

    #[test]
    fn factory_builds_every_policy() {
        for kind in PolicyKind::ALL {
            let policy = make_policy(kind, 1.0);
            assert_eq!(policy.name(), kind.paper_name());
        }
    }
}
