//! Oracle latency predictor (Section VI-D).
//!
//! The paper compares PREMA against an "oracular PREMA which utilizes each
//! DNN's exact execution time for scheduling". The oracle knows what no real
//! predictor can know: the *actual* time-unrolled output sequence length of
//! every RNN request. [`OraclePredictor`] therefore exposes two levels of
//! knowledge:
//!
//! * [`OraclePredictor::exact_cycles`] — the exact simulated execution time
//!   for a request whose true [`SeqSpec`] is known (what the scheduler uses
//!   in oracle mode).
//! * the [`InferenceTimePredictor`] impl — the best a predictor can do with
//!   only the input length: the exact node-level model evaluated at the mean
//!   output length. This is used for the VI-D correlation study.

use dnn_models::lowering::lower_graph;
use dnn_models::{ModelKind, SeqSpec};
use npu_sim::{Cycles, LayerTiming, NpuConfig};

use crate::InferenceTimePredictor;

/// Predictor with perfect knowledge of the simulator's timing model.
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    cfg: NpuConfig,
}

impl OraclePredictor {
    /// Creates the oracle for the given NPU configuration.
    pub fn new(cfg: NpuConfig) -> Self {
        OraclePredictor { cfg }
    }

    /// The exact simulated isolated execution time for a request with a known
    /// sequence specification (the true output length included).
    pub fn exact_cycles(&self, kind: ModelKind, batch: u64, seq: SeqSpec) -> Cycles {
        let network = kind.build(batch, seq);
        lower_graph(&network, batch)
            .iter()
            .map(|work| LayerTiming::model(work, &self.cfg).total_cycles())
            .sum()
    }
}

impl InferenceTimePredictor for OraclePredictor {
    fn predict_cycles(&self, kind: ModelKind, batch: u64, input_len: u64) -> Cycles {
        let seq = SeqSpec::for_model(kind, input_len.max(1));
        let seq = if kind.is_rnn() { seq } else { SeqSpec::none() };
        self.exact_cycles(kind, batch, seq)
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    #[test]
    fn exact_cycles_depend_on_the_true_output_length() {
        let oracle = OraclePredictor::new(cfg());
        let short = oracle.exact_cycles(ModelKind::RnnTranslation1, 1, SeqSpec::new(20, 10));
        let long = oracle.exact_cycles(ModelKind::RnnTranslation1, 1, SeqSpec::new(20, 40));
        assert!(long > short);
    }

    #[test]
    fn cnn_prediction_ignores_input_length() {
        let oracle = OraclePredictor::new(cfg());
        assert_eq!(
            oracle.predict_cycles(ModelKind::CnnGoogLeNet, 2, 0),
            oracle.predict_cycles(ModelKind::CnnGoogLeNet, 2, 35)
        );
    }

    #[test]
    fn oracle_is_at_least_as_large_as_the_analytical_estimate() {
        let oracle = OraclePredictor::new(cfg());
        let analytical = crate::AnalyticalPredictor::new(cfg());
        for kind in [ModelKind::CnnAlexNet, ModelKind::CnnMobileNet] {
            assert!(
                oracle.predict_cycles(kind, 1, 0) >= analytical.predict_cycles(kind, 1, 0),
                "{kind}"
            );
        }
    }

    #[test]
    fn name_is_oracle() {
        assert_eq!(OraclePredictor::new(cfg()).name(), "oracle");
    }
}
