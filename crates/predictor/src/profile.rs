//! Profile-driven node-level latency prediction (Section V-B).
//!
//! The paper's first proposal for node-level prediction is to profile the
//! average latency of each layer configuration once and bookkeep it for
//! later network-wide predictions — an approach that works on black-box
//! hardware (GPUs, Cloud TPUs) as well as on simulators. [`ProfiledPredictor`]
//! implements that bookkeeping against the `npu-sim` timing model: the first
//! time a layer configuration is seen it is "profiled" (modelled once) and
//! the result is cached keyed by the layer's GEMM dimensions.

use std::cell::RefCell;
use std::collections::HashMap;

use dnn_models::layer::GemmDims;
use dnn_models::lowering::lower_layer;
use dnn_models::{ModelKind, SeqSpec};
use npu_sim::{Cycles, LayerTiming, NpuConfig};

use crate::seqlen::SeqLenTable;
use crate::InferenceTimePredictor;

/// Cache key: a layer is uniquely identified for profiling purposes by the
/// GEMM it lowers to (or `None` for vector-only layers) plus its output size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ProfileKey {
    dims: Option<GemmDims>,
    output_bytes: u64,
}

/// Node-level latency predictor that memoizes per-layer profiled latencies.
#[derive(Debug)]
pub struct ProfiledPredictor {
    cfg: NpuConfig,
    seq_tables: HashMap<ModelKind, SeqLenTable>,
    cache: RefCell<HashMap<ProfileKey, Cycles>>,
}

impl ProfiledPredictor {
    /// Creates a predictor for the given NPU configuration.
    pub fn new(cfg: NpuConfig) -> Self {
        ProfiledPredictor {
            cfg,
            seq_tables: HashMap::new(),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Registers the profiled sequence-length regression table for a model.
    pub fn with_seq_table(mut self, kind: ModelKind, table: SeqLenTable) -> Self {
        self.seq_tables.insert(kind, table);
        self
    }

    /// Number of distinct layer configurations profiled so far.
    pub fn profiled_layer_count(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Predicts the output sequence length used when planning RNN inference.
    pub fn predict_output_len(&self, kind: ModelKind, input_len: u64) -> u64 {
        if !kind.is_rnn() {
            return 0;
        }
        match self.seq_tables.get(&kind) {
            Some(table) if !table.is_empty() => table.predict(input_len),
            _ => kind.expected_output_len(input_len),
        }
    }

    fn profile_layer(&self, layer: &dnn_models::Layer, batch: u64) -> Cycles {
        let key = ProfileKey {
            dims: layer.gemm_dims(batch),
            output_bytes: layer.output_bytes(batch),
        };
        if let Some(&cached) = self.cache.borrow().get(&key) {
            return cached;
        }
        let work = lower_layer(layer, batch);
        let cycles = LayerTiming::model(&work, &self.cfg).total_cycles();
        self.cache.borrow_mut().insert(key, cycles);
        cycles
    }
}

impl InferenceTimePredictor for ProfiledPredictor {
    fn predict_cycles(&self, kind: ModelKind, batch: u64, input_len: u64) -> Cycles {
        let seq = if kind.is_rnn() {
            SeqSpec::new(
                input_len.max(1),
                self.predict_output_len(kind, input_len.max(1)),
            )
        } else {
            SeqSpec::none()
        };
        let network = kind.build(batch, seq);
        network
            .execution_order()
            .into_iter()
            .map(|layer| self.profile_layer(layer, batch))
            .sum()
    }

    fn name(&self) -> &'static str {
        "profiled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::AnalyticalPredictor;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    #[test]
    fn caches_repeated_layer_configurations() {
        let predictor = ProfiledPredictor::new(cfg());
        let _ = predictor.predict_cycles(ModelKind::CnnVggNet, 1, 0);
        let profiled_once = predictor.profiled_layer_count();
        // VGG-16 has 21 layers but many share configurations? Each conv differs,
        // so the cache holds roughly one entry per distinct layer.
        assert!(profiled_once > 10 && profiled_once <= 21);
        let _ = predictor.predict_cycles(ModelKind::CnnVggNet, 1, 0);
        assert_eq!(predictor.profiled_layer_count(), profiled_once);
    }

    #[test]
    fn rnn_unrolled_steps_share_profiles() {
        let predictor = ProfiledPredictor::new(cfg());
        let _ = predictor.predict_cycles(ModelKind::RnnSentiment, 1, 40);
        // 80 unrolled LSTM nodes collapse to two distinct configurations
        // (layer 0 and layer 1) plus the classifier.
        assert!(predictor.profiled_layer_count() <= 4);
    }

    #[test]
    fn profiled_prediction_is_close_to_but_above_analytical() {
        let c = cfg();
        let profiled = ProfiledPredictor::new(c.clone());
        let analytical = AnalyticalPredictor::new(c);
        for kind in [ModelKind::CnnAlexNet, ModelKind::CnnGoogLeNet] {
            let p = profiled.predict_cycles(kind, 4, 0).get() as f64;
            let a = analytical.predict_cycles(kind, 4, 0).get() as f64;
            // The profiled model includes vector-unit and lead-in effects the
            // analytical model ignores, so it is somewhat larger but stays in
            // the same regime.
            assert!(p >= a, "{kind}: profiled {p} < analytical {a}");
            assert!(p < 1.6 * a, "{kind}: profiled {p} vs analytical {a}");
        }
    }

    #[test]
    fn respects_registered_seq_tables() {
        let table = SeqLenTable::from_samples([(30, 60)]);
        let predictor = ProfiledPredictor::new(cfg()).with_seq_table(ModelKind::RnnSpeech, table);
        assert_eq!(predictor.predict_output_len(ModelKind::RnnSpeech, 30), 60);
        assert_eq!(predictor.predict_output_len(ModelKind::CnnAlexNet, 30), 0);
    }

    #[test]
    fn name_is_profiled() {
        assert_eq!(ProfiledPredictor::new(cfg()).name(), "profiled");
    }
}
