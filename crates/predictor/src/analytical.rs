//! The architecture-aware analytical latency model of Algorithm 1.
//!
//! For every layer `(m, k, n)` of a network, the model computes the number of
//! systolic-array tiles the layer splits into and the per-tile latency as the
//! maximum of the tile's compute phase and the (double-buffered) memory phase
//! that prefetches the next tile's operands. The network-wide latency is the
//! sum over all layers.
//!
//! Two deliberate deviations from the paper's pseudo-code:
//!
//! * Algorithm 1 writes `⌊m/SW⌋·⌊k/SH⌋`; a literal floor would assign zero
//!   tiles to layers narrower than the array, so we use a ceiling (matching
//!   the simulator's tiling in `npu_sim::TilePlan`).
//! * Layers that never touch the GEMM unit (stand-alone activation / pooling
//!   layers) are ignored, exactly as in the paper. Their vector-unit time is
//!   what makes the prediction slightly under-estimate the simulated time —
//!   the paper reports a 1.6 % average estimation error.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dnn_models::layer::GemmDims;
use dnn_models::{ModelKind, NetworkGraph, SeqSpec};
use npu_sim::{Cycles, NpuConfig};

use crate::seqlen::SeqLenTable;
use crate::InferenceTimePredictor;

/// Estimates the execution time of a single `(m, k, n)` layer using
/// Algorithm 1.
pub fn estimate_layer_cycles(dims: GemmDims, cfg: &NpuConfig) -> Cycles {
    let sw = cfg.systolic_width;
    let sh = cfg.systolic_height;
    let acc = cfg.accumulator_depth;
    let bytes_per_cycle = cfg.bytes_per_cycle();
    let bytes_per_element = npu_sim::config::BYTES_PER_ELEMENT as f64;

    let m_tiles = dims.m.div_ceil(sw);
    let k_tiles = dims.k.div_ceil(sh);
    let n_inner = dims.n / acc;
    let n_rem = dims.n % acc;

    // Inner tiles: full accumulator depth (Algorithm 1, lines 3-5).
    let c1 = acc + sh + 2 * sw;
    let m1 = ((sh * sw + sh * acc) as f64 * bytes_per_element / bytes_per_cycle).ceil() as u64;
    let t_inner = c1.max(m1);

    // Outer (edge) tiles: the leftover n columns (lines 6-9).
    let (t_outer, phi) = if n_rem == 0 {
        (0, 0)
    } else {
        let c2 = n_rem + sh + 2 * sw;
        let m2 =
            ((sh * sw + sh * n_rem) as f64 * bytes_per_element / bytes_per_cycle).ceil() as u64;
        (c2.max(m2), 1)
    };

    // Line 10: total tiles times per-tile latency.
    let total = m_tiles * k_tiles * n_inner * t_inner + m_tiles * k_tiles * phi * t_outer;
    Cycles::new(total)
}

/// Estimates the end-to-end latency of a network at the given batch size by
/// summing Algorithm 1 over every GEMM-bearing layer in execution order.
pub fn estimate_network_cycles(network: &NetworkGraph, batch: u64, cfg: &NpuConfig) -> Cycles {
    network
        .execution_order()
        .into_iter()
        .filter_map(|layer| layer.gemm_dims(batch))
        .map(|dims| estimate_layer_cycles(dims, cfg))
        .sum()
}

/// Statistics of one predictor's estimate cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EstimateCacheStats {
    /// Estimates answered from the cache.
    pub hits: u64,
    /// Estimates computed by running Algorithm 1 over the built network.
    pub misses: u64,
}

/// The estimate cache: one predicted cycle count per distinct
/// `(model, batch, input_len)` request shape.
///
/// A cluster sweep's dispatch path asks for estimates once per request, but
/// requests repeat a small pool of shapes thousands of times — and every
/// uncached estimate rebuilds the network graph and walks Algorithm 1 over
/// all of its layers. Both the graph and the estimate are pure functions of
/// the key (given the predictor's NPU configuration and sequence tables),
/// so a hit is bit-identical to a recomputation by construction; a unit
/// test pins it anyway.
type EstimateKey = (ModelKind, u64, u64);

#[derive(Debug, Default)]
struct EstimateCache {
    map: Mutex<(HashMap<EstimateKey, Cycles>, EstimateCacheStats)>,
}

/// The PREMA default predictor: Algorithm 1 plus the profile-driven sequence
/// length regression for seq2seq models, with a per-predictor estimate
/// cache keyed by `(model, batch, input_len)` so the repeated estimates a
/// cluster sweep's prepare/dispatch path issues are O(1) lookups.
#[derive(Debug, Clone)]
pub struct AnalyticalPredictor {
    cfg: NpuConfig,
    seq_tables: HashMap<ModelKind, SeqLenTable>,
    /// Shared by clones (they predict identically); replaced whenever a
    /// sequence table is registered, since that changes RNN predictions.
    cache: Arc<EstimateCache>,
}

impl AnalyticalPredictor {
    /// Creates a predictor for the given NPU configuration with no profiled
    /// sequence-length tables (RNN output lengths fall back to the mean
    /// characterization relation of [`ModelKind::expected_output_len`]).
    pub fn new(cfg: NpuConfig) -> Self {
        AnalyticalPredictor {
            cfg,
            seq_tables: HashMap::new(),
            cache: Arc::new(EstimateCache::default()),
        }
    }

    /// Registers the profiled sequence-length regression table for a model.
    /// Invalidates the estimate cache: the table changes the predicted
    /// output lengths RNN estimates build on.
    pub fn with_seq_table(mut self, kind: ModelKind, table: SeqLenTable) -> Self {
        self.seq_tables.insert(kind, table);
        self.cache = Arc::new(EstimateCache::default());
        self
    }

    /// Hit/miss counters of the estimate cache.
    pub fn cache_stats(&self) -> EstimateCacheStats {
        self.cache.map.lock().expect("estimate cache poisoned").1
    }

    /// Computes the estimate without consulting or filling the cache.
    /// Exists for the cache-identity regression test and baseline
    /// measurements; the cached result is bit-identical.
    pub fn predict_cycles_uncached(&self, kind: ModelKind, batch: u64, input_len: u64) -> Cycles {
        let seq = if kind.is_rnn() {
            SeqSpec::new(
                input_len.max(1),
                self.predict_output_len(kind, input_len.max(1)),
            )
        } else {
            SeqSpec::none()
        };
        let network = kind.build(batch, seq);
        estimate_network_cycles(&network, batch, &self.cfg)
    }

    /// The NPU configuration this predictor targets.
    pub fn config(&self) -> &NpuConfig {
        &self.cfg
    }

    /// The registered sequence-length table for `kind`, if any.
    pub fn seq_table(&self, kind: ModelKind) -> Option<&SeqLenTable> {
        self.seq_tables.get(&kind)
    }

    /// Predicts the output sequence length the scheduler should plan for.
    pub fn predict_output_len(&self, kind: ModelKind, input_len: u64) -> u64 {
        if !kind.is_rnn() {
            return 0;
        }
        match self.seq_tables.get(&kind) {
            Some(table) if !table.is_empty() => table.predict(input_len),
            _ => kind.expected_output_len(input_len),
        }
    }
}

impl InferenceTimePredictor for AnalyticalPredictor {
    fn predict_cycles(&self, kind: ModelKind, batch: u64, input_len: u64) -> Cycles {
        let key = (kind, batch, input_len);
        {
            let mut guard = self.cache.map.lock().expect("estimate cache poisoned");
            if let Some(&cycles) = guard.0.get(&key) {
                guard.1.hits += 1;
                return cycles;
            }
        }
        // Compute outside the lock: estimates are pure, so a racing
        // duplicate computation inserts the identical value.
        let cycles = self.predict_cycles_uncached(kind, batch, input_len);
        let mut guard = self.cache.map.lock().expect("estimate cache poisoned");
        guard.1.misses += 1;
        guard.0.insert(key, cycles);
        cycles
    }

    fn name(&self) -> &'static str {
        "analytical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::layer::GemmDims;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    #[test]
    fn single_tile_layer_matches_formula() {
        let c = cfg();
        // Exactly one inner tile: m=SW, k=SH, n=ACC.
        let dims = GemmDims {
            m: c.systolic_width,
            k: c.systolic_height,
            n: c.accumulator_depth,
        };
        let t = estimate_layer_cycles(dims, &c);
        let c1 = c.accumulator_depth + c.systolic_height + 2 * c.systolic_width;
        let m1 = ((c.systolic_height * c.systolic_width + c.systolic_height * c.accumulator_depth)
            as f64
            * 2.0
            / c.bytes_per_cycle())
        .ceil() as u64;
        assert_eq!(t.get(), c1.max(m1));
    }

    #[test]
    fn edge_only_layer_uses_outer_tile_formula() {
        let c = cfg();
        let dims = GemmDims {
            m: 64,
            k: 64,
            n: 100,
        };
        let t = estimate_layer_cycles(dims, &c);
        let c2 = 100 + c.systolic_height + 2 * c.systolic_width;
        let m2 = ((c.systolic_height * c.systolic_width + c.systolic_height * 100) as f64 * 2.0
            / c.bytes_per_cycle())
        .ceil() as u64;
        assert_eq!(t.get(), c2.max(m2));
    }

    #[test]
    fn estimate_scales_with_tile_count() {
        let c = cfg();
        let one = estimate_layer_cycles(
            GemmDims {
                m: c.systolic_width,
                k: c.systolic_height,
                n: c.accumulator_depth,
            },
            &c,
        );
        let four = estimate_layer_cycles(
            GemmDims {
                m: 2 * c.systolic_width,
                k: 2 * c.systolic_height,
                n: c.accumulator_depth,
            },
            &c,
        );
        assert_eq!(four.get(), 4 * one.get());
    }

    #[test]
    fn network_estimate_sums_layer_estimates() {
        let c = cfg();
        let net = ModelKind::CnnAlexNet.build(1, SeqSpec::none());
        let total = estimate_network_cycles(&net, 1, &c);
        let by_hand: Cycles = net
            .execution_order()
            .into_iter()
            .filter_map(|l| l.gemm_dims(1))
            .map(|d| estimate_layer_cycles(d, &c))
            .sum();
        assert_eq!(total, by_hand);
        assert!(total > Cycles::ZERO);
    }

    #[test]
    fn cnn_inference_times_are_in_the_millisecond_range() {
        let c = cfg();
        let predictor = AnalyticalPredictor::new(c.clone());
        for (kind, lo_ms, hi_ms) in [
            (ModelKind::CnnAlexNet, 0.05, 5.0),
            (ModelKind::CnnVggNet, 1.0, 45.0),
            (ModelKind::CnnGoogLeNet, 0.05, 10.0),
            (ModelKind::CnnMobileNet, 0.05, 10.0),
        ] {
            let ms = c.cycles_to_millis(predictor.predict_cycles(kind, 1, 0));
            assert!(ms > lo_ms && ms < hi_ms, "{kind}: {ms} ms");
        }
    }

    #[test]
    fn batch_sixteen_takes_longer_than_batch_one() {
        let predictor = AnalyticalPredictor::new(cfg());
        let b1 = predictor.predict_cycles(ModelKind::CnnVggNet, 1, 0);
        let b16 = predictor.predict_cycles(ModelKind::CnnVggNet, 16, 0);
        assert!(b16 > b1 * 4);
    }

    #[test]
    fn rnn_prediction_uses_seq_table_when_present() {
        let predictor = AnalyticalPredictor::new(cfg());
        let default_len = predictor.predict_output_len(ModelKind::RnnTranslation1, 20);
        assert_eq!(
            default_len,
            ModelKind::RnnTranslation1.expected_output_len(20)
        );

        let table = SeqLenTable::from_samples([(20, 40), (20, 40)]);
        let predictor = predictor.with_seq_table(ModelKind::RnnTranslation1, table);
        assert_eq!(
            predictor.predict_output_len(ModelKind::RnnTranslation1, 20),
            40
        );

        // A longer predicted output means a longer predicted latency.
        let short = AnalyticalPredictor::new(cfg())
            .with_seq_table(
                ModelKind::RnnTranslation1,
                SeqLenTable::from_samples([(20, 10)]),
            )
            .predict_cycles(ModelKind::RnnTranslation1, 1, 20);
        let long = AnalyticalPredictor::new(cfg())
            .with_seq_table(
                ModelKind::RnnTranslation1,
                SeqLenTable::from_samples([(20, 40)]),
            )
            .predict_cycles(ModelKind::RnnTranslation1, 1, 20);
        assert!(long > short);
    }

    #[test]
    fn cnn_output_len_prediction_is_zero() {
        let predictor = AnalyticalPredictor::new(cfg());
        assert_eq!(predictor.predict_output_len(ModelKind::CnnVggNet, 30), 0);
    }

    #[test]
    fn estimate_cache_is_bit_identical_to_uncached_calls() {
        use crate::InferenceTimePredictor;
        use dnn_models::ALL_EVAL_MODELS;

        let predictor = AnalyticalPredictor::new(cfg()).with_seq_table(
            ModelKind::RnnTranslation1,
            SeqLenTable::from_samples([(20, 35)]),
        );
        for &kind in &ALL_EVAL_MODELS {
            for batch in [1u64, 4, 16] {
                for input_len in [0u64, 10, 20] {
                    let uncached = predictor.predict_cycles_uncached(kind, batch, input_len);
                    let first = predictor.predict_cycles(kind, batch, input_len);
                    let second = predictor.predict_cycles(kind, batch, input_len);
                    assert_eq!(first, uncached, "{kind} b{batch} len{input_len}");
                    assert_eq!(second, uncached, "{kind} b{batch} len{input_len}");
                }
            }
        }
        let stats = predictor.cache_stats();
        let shapes = (ALL_EVAL_MODELS.len() * 9) as u64;
        assert_eq!(stats.misses, shapes, "one miss per distinct shape");
        assert_eq!(stats.hits, shapes, "one hit per repeated shape");

        // Registering a sequence table invalidates the cache (predictions
        // may change), and a clone shares its parent's cache.
        let retabled = predictor.clone().with_seq_table(
            ModelKind::RnnTranslation1,
            SeqLenTable::from_samples([(20, 60)]),
        );
        assert_eq!(retabled.cache_stats(), EstimateCacheStats::default());
        let longer = retabled.predict_cycles(ModelKind::RnnTranslation1, 1, 20);
        assert!(longer > predictor.predict_cycles(ModelKind::RnnTranslation1, 1, 20));
        let shared = predictor.clone();
        assert_eq!(shared.cache_stats(), predictor.cache_stats());
    }

    #[test]
    fn predictor_reports_its_name_and_config() {
        let predictor = AnalyticalPredictor::new(cfg());
        assert_eq!(predictor.name(), "analytical");
        assert_eq!(predictor.config(), &cfg());
        assert!(predictor.seq_table(ModelKind::RnnSpeech).is_none());
    }
}
