//! MAC-count proxy predictor — the misleading baseline of Figure 10.
//!
//! "Blindly using the absolute number of MAC operations conducted per DNN as
//! a proxy for estimating an inference task's execution time will lead to
//! misleading results as it does not consider how the application is actually
//! mapped into the underlying NPU architecture" (Section V-B). This predictor
//! implements exactly that naive proxy (`MACs / peak MACs-per-cycle`) so the
//! experiment harness can quantify how wrong it is for layers that
//! underutilize the systolic array.

use std::collections::HashMap;

use dnn_models::{ModelKind, SeqSpec};
use npu_sim::{Cycles, NpuConfig};

use crate::seqlen::SeqLenTable;
use crate::InferenceTimePredictor;

/// Predictor that divides a network's MAC count by the array's peak MAC
/// throughput.
#[derive(Debug, Clone)]
pub struct MacProxyPredictor {
    cfg: NpuConfig,
    seq_tables: HashMap<ModelKind, SeqLenTable>,
}

impl MacProxyPredictor {
    /// Creates the proxy predictor for the given configuration.
    pub fn new(cfg: NpuConfig) -> Self {
        MacProxyPredictor {
            cfg,
            seq_tables: HashMap::new(),
        }
    }

    /// Registers a profiled sequence-length table for a model.
    pub fn with_seq_table(mut self, kind: ModelKind, table: SeqLenTable) -> Self {
        self.seq_tables.insert(kind, table);
        self
    }

    /// Predicts cycles from a raw MAC count.
    pub fn cycles_for_macs(&self, macs: u64) -> Cycles {
        let peak = self.cfg.peak_macs_per_cycle().max(1);
        Cycles::new(macs.div_ceil(peak))
    }

    fn output_len(&self, kind: ModelKind, input_len: u64) -> u64 {
        match self.seq_tables.get(&kind) {
            Some(table) if !table.is_empty() => table.predict(input_len),
            _ => kind.expected_output_len(input_len),
        }
    }
}

impl InferenceTimePredictor for MacProxyPredictor {
    fn predict_cycles(&self, kind: ModelKind, batch: u64, input_len: u64) -> Cycles {
        let seq = if kind.is_rnn() {
            SeqSpec::new(input_len.max(1), self.output_len(kind, input_len.max(1)))
        } else {
            SeqSpec::none()
        };
        let network = kind.build(batch, seq);
        self.cycles_for_macs(network.total_macs_for_batch(batch))
    }

    fn name(&self) -> &'static str {
        "mac-proxy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::AnalyticalPredictor;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    #[test]
    fn cycles_scale_linearly_with_macs() {
        let p = MacProxyPredictor::new(cfg());
        let one = p.cycles_for_macs(16_384);
        let ten = p.cycles_for_macs(163_840);
        assert_eq!(ten.get(), 10 * one.get());
        assert_eq!(one, Cycles::new(1));
    }

    #[test]
    fn proxy_underestimates_underutilized_networks_most() {
        // MobileNet's depthwise layers underutilize the array, so the MAC
        // proxy underestimates it far more than it underestimates VGG.
        let c = cfg();
        let proxy = MacProxyPredictor::new(c.clone());
        let analytical = AnalyticalPredictor::new(c);
        let ratio = |kind: ModelKind| {
            analytical.predict_cycles(kind, 1, 0).get() as f64
                / proxy.predict_cycles(kind, 1, 0).get().max(1) as f64
        };
        let mobilenet_gap = ratio(ModelKind::CnnMobileNet);
        let vgg_gap = ratio(ModelKind::CnnVggNet);
        assert!(
            mobilenet_gap > vgg_gap && mobilenet_gap > 2.0,
            "MobileNet gap {mobilenet_gap} vs VGG gap {vgg_gap}"
        );
    }

    #[test]
    fn rnn_prediction_respects_seq_table() {
        let p = MacProxyPredictor::new(cfg()).with_seq_table(
            ModelKind::RnnTranslation1,
            SeqLenTable::from_samples([(10, 50)]),
        );
        let long = p.predict_cycles(ModelKind::RnnTranslation1, 1, 10);
        let short = MacProxyPredictor::new(cfg()).predict_cycles(ModelKind::RnnTranslation1, 1, 10);
        assert!(long > short);
    }

    #[test]
    fn name_is_mac_proxy() {
        assert_eq!(MacProxyPredictor::new(cfg()).name(), "mac-proxy");
    }
}
