//! Inference-time prediction models for multi-tasked NPU scheduling
//! (Section V-B of the PREMA paper).
//!
//! PREMA's scheduling decisions — dynamic token assignment, shortest-job
//! candidate selection and dynamic preemption-mechanism selection — all rely
//! on an estimate of each inference task's end-to-end execution time. This
//! crate implements the paper's prediction stack:
//!
//! * [`analytical`] — the architecture-aware analytical node-level model
//!   (Algorithm 1) tailored to the weight-stationary systolic array.
//! * [`profile`] — the profile-driven node-level alternative: bookkeep the
//!   average measured latency per layer configuration and reuse it.
//! * [`seqlen`] — the profile-driven regression (lookup table) that predicts
//!   the time-unrolled output sequence length of seq2seq RNNs from the
//!   statically known input sequence length (Figure 9).
//! * [`mac_proxy`] — the strawman predictor that scales a layer's MAC count
//!   by peak throughput; Figure 10 shows why this is misleading.
//! * [`oracle`] — an oracle that returns the exact simulated execution time,
//!   used for the Section VI-D accuracy comparison.
//!
//! All predictors implement [`InferenceTimePredictor`].
//!
//! # Example
//!
//! ```
//! use npu_sim::NpuConfig;
//! use dnn_models::ModelKind;
//! use prema_predictor::{AnalyticalPredictor, InferenceTimePredictor};
//!
//! let cfg = NpuConfig::paper_default();
//! let predictor = AnalyticalPredictor::new(cfg.clone());
//! let cycles = predictor.predict_cycles(ModelKind::CnnAlexNet, 1, 0);
//! // AlexNet inference is on the order of a millisecond on the modelled TPU.
//! assert!(cfg.cycles_to_millis(cycles) > 0.05);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytical;
pub mod mac_proxy;
pub mod oracle;
pub mod profile;
pub mod seqlen;

use dnn_models::ModelKind;
use npu_sim::Cycles;

pub use analytical::{AnalyticalPredictor, EstimateCacheStats};
pub use mac_proxy::MacProxyPredictor;
pub use oracle::OraclePredictor;
pub use profile::ProfiledPredictor;
pub use seqlen::SeqLenTable;

/// A model that estimates the end-to-end execution time of an inference task
/// before it runs.
///
/// `input_len` is the request's input sequence length, which is statically
/// known when the request arrives (Section V-B); it is ignored for CNNs. The
/// predictor is responsible for estimating the *output* sequence length of
/// seq2seq models itself (via [`SeqLenTable`] or the mean characterization
/// relation).
pub trait InferenceTimePredictor: std::fmt::Debug {
    /// Predicts the isolated, uninterrupted execution time of one inference.
    fn predict_cycles(&self, kind: ModelKind, batch: u64, input_len: u64) -> Cycles;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Which predictor implementation to use; convenience for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PredictorKind {
    /// Architecture-aware analytical model (Algorithm 1). The PREMA default.
    Analytical,
    /// Profile-driven per-layer latency bookkeeping.
    Profiled,
    /// MAC-count proxy (misleading baseline, Figure 10).
    MacProxy,
    /// Oracle: exact simulated execution time (Section VI-D).
    Oracle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_kind_is_copy_and_comparable() {
        let a = PredictorKind::Analytical;
        let b = a;
        assert_eq!(a, b);
        assert_ne!(PredictorKind::Oracle, PredictorKind::MacProxy);
    }
}
