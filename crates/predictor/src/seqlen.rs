//! Profile-driven output-sequence-length regression (Section V-B and
//! Figure 9 of the PREMA paper).
//!
//! For seq2seq applications (machine translation, speech recognition) the
//! number of time-unrolled decoder steps is input-data dependent, but it is
//! strongly correlated with the input sequence length, which *is* statically
//! known when a request arrives. The paper profiles each model over its
//! training/validation set once, builds a characterization graph (output
//! length as a function of input length), and stores it as a software lookup
//! table that returns the geometric mean of the profiled output lengths for a
//! given input length.
//!
//! [`SeqLenTable`] is that lookup table. It is populated from `(input_len,
//! output_len)` sample pairs — in this reproduction the samples come from the
//! synthetic characterization generators in `prema-workload`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Profile-driven lookup table predicting the time-unrolled output sequence
/// length from the input sequence length.
///
/// ```
/// use prema_predictor::SeqLenTable;
///
/// let samples = [(10, 11), (10, 13), (20, 22), (20, 26)];
/// let table = SeqLenTable::from_samples(samples);
/// assert_eq!(table.predict(10), 12); // geometric mean of {11, 13}, rounded
/// assert!(table.predict(15) >= 12 && table.predict(15) <= 24); // nearest bucket
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeqLenTable {
    /// For each profiled input length: (sum of ln(output), sample count,
    /// min observed, max observed).
    buckets: BTreeMap<u64, Bucket>,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Bucket {
    ln_sum: f64,
    count: u64,
    min: u64,
    max: u64,
}

impl SeqLenTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SeqLenTable::default()
    }

    /// Builds a table from an iterator of `(input_len, output_len)` samples.
    pub fn from_samples<I>(samples: I) -> Self
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut table = SeqLenTable::new();
        for (input_len, output_len) in samples {
            table.record(input_len, output_len);
        }
        table
    }

    /// Records one profiled `(input_len, output_len)` observation.
    ///
    /// Observations with a zero output length are clamped to one step: a
    /// seq2seq model always emits at least the end-of-sequence token.
    pub fn record(&mut self, input_len: u64, output_len: u64) {
        let output_len = output_len.max(1);
        let bucket = self.buckets.entry(input_len).or_insert(Bucket {
            ln_sum: 0.0,
            count: 0,
            min: u64::MAX,
            max: 0,
        });
        bucket.ln_sum += (output_len as f64).ln();
        bucket.count += 1;
        bucket.min = bucket.min.min(output_len);
        bucket.max = bucket.max.max(output_len);
    }

    /// Number of distinct profiled input lengths.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total number of recorded samples.
    pub fn sample_count(&self) -> u64 {
        self.buckets.values().map(|b| b.count).sum()
    }

    /// Whether the table has no samples.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Predicts the output sequence length for `input_len`: the geometric
    /// mean of the profiled output lengths at the nearest profiled input
    /// length (ties resolve to the shorter input).
    ///
    /// Returns `input_len.max(1)` when the table is empty — with no profile
    /// information the best static guess is a linear relationship.
    pub fn predict(&self, input_len: u64) -> u64 {
        let Some(bucket) = self.nearest_bucket(input_len) else {
            return input_len.max(1);
        };
        let geomean = (bucket.ln_sum / bucket.count as f64).exp();
        (geomean.round() as u64).max(1)
    }

    /// The observed (min, max) output lengths at the nearest profiled input
    /// length, if any samples exist. Useful for plotting the Figure 9 bands.
    pub fn observed_range(&self, input_len: u64) -> Option<(u64, u64)> {
        self.nearest_bucket(input_len).map(|b| (b.min, b.max))
    }

    fn nearest_bucket(&self, input_len: u64) -> Option<&Bucket> {
        if self.buckets.is_empty() {
            return None;
        }
        if let Some(bucket) = self.buckets.get(&input_len) {
            return Some(bucket);
        }
        let below = self.buckets.range(..=input_len).next_back();
        let above = self.buckets.range(input_len..).next();
        match (below, above) {
            (Some((kb, vb)), Some((ka, va))) => {
                if input_len - kb <= ka - input_len {
                    Some(vb)
                } else {
                    Some(va)
                }
            }
            (Some((_, v)), None) | (None, Some((_, v))) => Some(v),
            (None, None) => None,
        }
    }

    /// Iterates over `(input_len, predicted_output_len)` pairs for every
    /// profiled input length, i.e. the regression curve of Figure 9.
    pub fn curve(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .keys()
            .map(|&input_len| (input_len, self.predict(input_len)))
    }
}

impl FromIterator<(u64, u64)> for SeqLenTable {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        SeqLenTable::from_samples(iter)
    }
}

impl Extend<(u64, u64)> for SeqLenTable {
    fn extend<I: IntoIterator<Item = (u64, u64)>>(&mut self, iter: I) {
        for (input_len, output_len) in iter {
            self.record(input_len, output_len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_falls_back_to_linear_guess() {
        let table = SeqLenTable::new();
        assert!(table.is_empty());
        assert_eq!(table.predict(17), 17);
        assert_eq!(table.predict(0), 1);
        assert_eq!(table.observed_range(5), None);
    }

    #[test]
    fn exact_bucket_uses_geometric_mean() {
        let table = SeqLenTable::from_samples([(10, 8), (10, 12), (10, 18)]);
        // geomean(8, 12, 18) = (8*12*18)^(1/3) = 12
        assert_eq!(table.predict(10), 12);
        assert_eq!(table.observed_range(10), Some((8, 18)));
    }

    #[test]
    fn nearest_bucket_is_used_for_unseen_inputs() {
        let table = SeqLenTable::from_samples([(10, 10), (20, 40)]);
        assert_eq!(table.predict(11), 10);
        assert_eq!(table.predict(19), 40);
        // Ties resolve to the lower input length.
        assert_eq!(table.predict(15), 10);
        // Out-of-range inputs clamp to the closest profiled bucket.
        assert_eq!(table.predict(1), 10);
        assert_eq!(table.predict(100), 40);
    }

    #[test]
    fn zero_outputs_are_clamped_to_one() {
        let table = SeqLenTable::from_samples([(5, 0), (5, 0)]);
        assert_eq!(table.predict(5), 1);
    }

    #[test]
    fn counting_and_extension() {
        let mut table: SeqLenTable = [(1, 2), (2, 3)].into_iter().collect();
        assert_eq!(table.bucket_count(), 2);
        assert_eq!(table.sample_count(), 2);
        table.extend([(1, 4), (3, 9)]);
        assert_eq!(table.bucket_count(), 3);
        assert_eq!(table.sample_count(), 4);
    }

    #[test]
    fn curve_is_monotone_for_monotone_data() {
        let samples = (5..=50).flat_map(|i| [(i, i + 2), (i, i + 4)]);
        let table = SeqLenTable::from_samples(samples);
        let curve: Vec<_> = table.curve().collect();
        assert_eq!(curve.len(), 46);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
    }

    #[test]
    fn prediction_is_stable_under_sample_order() {
        let a = SeqLenTable::from_samples([(7, 5), (7, 9), (7, 13)]);
        let b = SeqLenTable::from_samples([(7, 13), (7, 5), (7, 9)]);
        assert_eq!(a.predict(7), b.predict(7));
    }
}
