//! The event-heap closed-loop cluster driver: lazy, O(events × log nodes)
//! co-simulation, bit-identical to the naive stepping loop.
//!
//! [`crate::online::OnlineClusterSimulator::run_reference`] — the loop PR 4
//! shipped — advances *every* node session at every global event and
//! rescans every node's residents for every dispatch, admission and
//! stealing decision: O(events × nodes) `run_until` calls plus
//! O(events × nodes × residents) scan work. This module reproduces its
//! decisions, and therefore its outcomes, exactly while doing asymptotically
//! less work. Two pillars:
//!
//! **Pure suspension.** `SimSession::run_until` composed over *any*
//! ascending horizon sequence yields a bit-identical `SimOutcome` (the PR 4
//! resume-equivalence property). So a node that no decision needs to
//! observe can simply be left paused in the past; only the *decisions* must
//! see exactly what the reference saw.
//!
//! **Completion certificates.** [`SimSession::completion_lower_bound`] is a
//! conservative bound: no resident of the node can complete strictly
//! before it, regardless of preemptive interleaving. While a node's
//! certificate exceeds the decision instant `t`:
//!
//! * its live queue depth is constant through `t` (depths change only at
//!   completions and at injections, which this driver performs itself);
//! * its predicted-work totals at `t` are at least `value_now - (t - now)`
//!   (only the running task progresses, at ≤ 1 cycle per cycle, and no
//!   completion can release an estimate-error remainder).
//!
//! The driver keeps the certificates in a binary min-heap with *lazy
//! invalidation* (every session mutation pushes the fresh bound; stale
//! entries are discarded at pop time). Per global event it advances only
//! the nodes whose certificates are due, then picks the dispatch target by
//! *branch and bound*: nodes whose lower-bounded score cannot strictly beat
//! the best exact score are skipped without being advanced; genuine
//! contenders are advanced and scored exactly, with ties breaking to the
//! lowest index exactly like the reference scan.
//!
//! At hundreds of nodes the scan itself becomes the wall — O(nodes) per
//! arrival even when every node is skipped. [`crate::contender`] therefore
//! keeps the *same* lower bounds in ordered structures (queue-depth buckets
//! for `jsq-live`, tournament trees keyed on predicted work for
//! `least-work-live` / `predictive-live`, fault-penalty tiers as the major
//! key), refreshed from the one `reschedule` funnel every lazy-mode
//! mutation already flows through. A dispatch then examines O(log nodes)
//! candidates off the structure minimum and provably picks the scan's
//! node; `debug_assertions` builds replay the linear scan after every
//! indexed pick and assert the argmin agrees.
//!
//! Work stealing and SLA admission run *synchronized* instead: stealing
//! revokes never-started tasks whose availability depends on quantum-level
//! dispatch timing, and admission's p99 prediction reads every node's exact
//! resident set, so both must observe every node at the reference's own
//! decision instants — the bound sequence itself is defined over
//! synchronized node states. Those modes keep the reference's advance-all
//! stepping but replace its per-decision resident rescans with the
//! engine's O(1) incremental aggregates (`predicted_remaining_work`,
//! `predicted_blocking_work`, `revocable_work`, `best_steal_candidate`,
//! `best_shed_candidate`), reuse the admission scratch buffer across
//! arrivals, and cache each node's predicted-turnaround segment keyed by
//! its `state_version` — per arrival only nodes whose state actually moved
//! are re-sorted, and within one arrival's shed loop only the shedded
//! node's segment is rebuilt.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

use npu_sim::{Cycles, NpuConfig};
use prema_core::{
    NpuSimulator, PreparedTask, Priority, ResidentTask, SimSession, TaskId, TaskRequest, TraceSink,
};
use prema_metrics::Percentiles;

use prema_workload::FaultKind;

use crate::cluster::NodeAssignment;
use crate::contender::ContenderIndex;
use crate::faults::{FaultDriver, FaultEvent};
use crate::migration::MigrationDriver;
use crate::online::{
    arrival_order, deliver_due_migrations, finish_outcome, scaled_admission_target,
    OnlineClusterConfig, OnlineDispatchPolicy, OnlineOutcome, ShedKey, SlaAdmissionConfig,
};
use crate::trace::{
    sample_nodes, ClusterTraceEvent, ClusterTraceSink, FaultTraceKind, NodeKey, NodeKeySet,
    NodeTap, NullClusterSink,
};

/// Runs the event-heap closed-loop simulation. Caller has validated the
/// config and checked id uniqueness.
pub(crate) fn run(config: &OnlineClusterConfig, tasks: &[PreparedTask]) -> OnlineOutcome {
    let trace = Rc::new(RefCell::new(NullClusterSink));
    run_impl(config, tasks, &trace)
}

/// [`run`] with a cluster trace sink shared between the loop and every node
/// session. The sink only observes — outcomes are bit-identical to the
/// untraced run.
pub(crate) fn run_impl<C: ClusterTraceSink>(
    config: &OnlineClusterConfig,
    tasks: &[PreparedTask],
    trace: &Rc<RefCell<C>>,
) -> OnlineOutcome {
    let simulator = NpuSimulator::new(config.npu.clone(), config.scheduler.clone());
    let sessions: Vec<SimSession<NodeTap<C>>> = (0..config.nodes)
        .map(|node| simulator.session_with_sink(&[], NodeTap::new(node, Rc::clone(trace))))
        .collect();
    let order = arrival_order(tasks);

    let mut driver = EventHeapLoop::new(config, sessions, Rc::clone(trace));
    let mut assignments: Vec<NodeAssignment> = Vec::with_capacity(tasks.len());
    let mut assignment_index: HashMap<TaskId, usize> = HashMap::with_capacity(tasks.len());
    let mut shed: Vec<TaskRequest> = Vec::new();
    let mut steals = 0u64;
    let mut faults = config
        .faults
        .as_ref()
        .map(|plan| FaultDriver::new(plan, &config.npu, config.nodes));
    let link_faults = config
        .faults
        .as_ref()
        .map(|plan| plan.schedule.links.as_slice())
        .unwrap_or(&[]);
    let mut migration = config
        .migration
        .as_ref()
        .map(|policy| MigrationDriver::new(policy, &config.npu, config.nodes, link_faults));

    for &i in &order {
        let task = &tasks[i];
        let now = task.request.arrival;
        driver.drain_fault_events(
            &mut faults,
            &mut migration,
            now,
            &mut steals,
            &mut assignments,
            &assignment_index,
        );
        driver.advance_to(
            faults.as_ref(),
            &mut migration,
            now,
            &mut steals,
            &mut assignments,
            &assignment_index,
        );
        sample_nodes(&driver.sessions, now, trace);

        let node = driver.pick_node(now, task, faults.as_ref());
        if let Some(admission) = config.admission {
            if !driver.admit(task, node, admission, &mut shed) {
                continue;
            }
        }
        assignment_index.insert(task.request.id, assignments.len());
        assignments.push(NodeAssignment {
            task: task.request.id,
            node,
        });
        driver.inject(node, task.clone());
    }

    driver.drain_fault_events(
        &mut faults,
        &mut migration,
        Cycles::MAX,
        &mut steals,
        &mut assignments,
        &assignment_index,
    );
    driver.advance_to(
        faults.as_ref(),
        &mut migration,
        Cycles::MAX,
        &mut steals,
        &mut assignments,
        &assignment_index,
    );
    finish_outcome(
        driver.sessions,
        assignments,
        shed,
        steals,
        faults.map(FaultDriver::finish),
        migration.map(MigrationDriver::finish),
    )
}

/// Per-node cache of the SLA-admission predicted-turnaround segment.
///
/// Each entry is one resident, in drain (priority, arrival, id) order:
/// `(base, arrival, add_now)`. The resident's predicted completion is
/// `base` when `add_now` is false (it drains at or behind the running
/// task, whose absolute completion is time-invariant while the runner's
/// *estimated* remaining is still positive: the runner executes one cycle
/// per cycle with no stalls, so the clock's advance and the backlog's
/// shrinkage cancel), or `now + base` when true (its backlog is constant
/// but the clock still advances under it). The reference computes
/// `millis((now + backlog) - arrival)` with saturating integer cycle
/// arithmetic; these segments reproduce exactly those integers, then
/// convert once per query.
///
/// One clamp makes the absolute entries *time-limited*: when the predictor
/// underestimated the runner, its estimated remaining saturates at zero
/// before the task actually completes, and from that instant the
/// cancellation stops — the reference's recomputed turnarounds grow with
/// the clock again, with no state-version change to signal it. The segment
/// therefore records `valid_until` (the instant the runner's estimate runs
/// out) and refuses reuse past it; a rebuild inside the overrun window
/// emits every entry in `add_now` form (the runner contributes a constant
/// zero), which is exact for the rest of the version.
///
/// A *stalled* node (inside a fault window) breaks the same cancellation
/// the opposite way: the clock advances but the runner makes no progress
/// at all, so the reference's recomputed turnarounds grow with the clock
/// over a *constant* backlog. A rebuild while stalled therefore also emits
/// every entry in `add_now` form — exact through the stall — with
/// `valid_until` at the stall's end (the injection of the stall itself
/// bumps the state version, forcing the rebuild onto this path).
#[derive(Debug, Clone)]
struct PredictionSegment {
    version: u64,
    valid: bool,
    valid_until: Cycles,
    entries: Vec<(Cycles, Cycles, bool)>,
}

impl Default for PredictionSegment {
    fn default() -> Self {
        PredictionSegment {
            version: 0,
            valid: false,
            valid_until: Cycles::MAX,
            entries: Vec::new(),
        }
    }
}

impl PredictionSegment {
    /// Rebuilds the segment if the session's state version moved, the
    /// session clock passed the runner's estimate-exhaustion instant, or
    /// the session clock is scaled. Under a degrade window neither entry
    /// form is time-invariant (the runner's backlog shrinks at `num/den`
    /// work per wall cycle, so neither the absolute completions nor the
    /// backlogs stay constant between queries); rebuilding at every query
    /// reproduces exactly the reference's fresh recomputation.
    fn refresh<S: TraceSink>(&mut self, session: &SimSession<S>, scratch: &mut Vec<ResidentTask>) {
        let now = session.now();
        if self.valid
            && self.version == session.state_version()
            && now <= self.valid_until
            && session.clock_scale() == (1, 1)
        {
            return;
        }
        scratch.clear();
        session.resident_tasks_into(scratch);
        scratch.sort_by_key(|resident| (Reverse(resident.priority), resident.arrival, resident.id));
        let stalled = session.stalled_until();
        let runner = session.running_task();
        self.entries.clear();
        self.entries.reserve(scratch.len());
        self.valid_until = stalled.unwrap_or(Cycles::MAX);
        let mut backlog = Cycles::ZERO;
        let mut runner_seen = false;
        for resident in scratch.iter() {
            let remaining = resident.estimated_remaining();
            backlog += remaining;
            if stalled.is_none() && Some(resident.id) == runner && !remaining.is_zero() {
                // The runner pins everything at or behind it to absolute
                // completions — but only until its estimate runs out. A
                // stalled runner pins nothing (no progress while the clock
                // advances), so the whole segment stays in add_now form.
                runner_seen = true;
                self.valid_until = now + remaining;
            }
            if runner_seen {
                self.entries.push((now + backlog, resident.arrival, false));
            } else {
                self.entries.push((backlog, resident.arrival, true));
            }
        }
        self.version = session.state_version();
        self.valid = true;
    }

    /// Appends the segment's predicted turnarounds (milliseconds) at the
    /// session clock `now`.
    fn append_ms(&self, now: Cycles, npu: &NpuConfig, out: &mut Vec<f64>) {
        for &(base, arrival, add_now) in &self.entries {
            let completion = if add_now { now + base } else { base };
            out.push(npu.cycles_to_millis(completion - arrival));
        }
    }
}

/// The event-heap loop state: sessions, the lazily invalidated certificate
/// heap, and the reused admission scratch buffers.
#[derive(Debug)]
struct EventHeapLoop<'a, C: ClusterTraceSink> {
    config: &'a OnlineClusterConfig,
    /// Whether decisions require every node synchronized at the decision
    /// instant (work stealing / SLA admission) rather than lazy
    /// certificates.
    synchronized: bool,
    sessions: Vec<SimSession<NodeTap<C>>>,
    /// The shared cluster trace sink (disabled sinks compile the emission
    /// sites away). Borrowed only *between* session calls: the sessions'
    /// node taps borrow the same cell from inside engine methods.
    trace: Rc<RefCell<C>>,
    /// Min-heap of (completion-certificate, node) candidates, lazy mode
    /// only. An entry is current iff the session still reports exactly
    /// that bound; every session mutation pushes the fresh bound, stale
    /// entries are dropped at pop time.
    heap: BinaryHeap<Reverse<(Cycles, usize)>>,
    /// The ordered contender structures the per-arrival dispatch walks
    /// instead of scanning every node — lazy mode only (`None` when
    /// synchronized: with zero lag the exact linear scan is the decision
    /// procedure, and fault sync points must never materialize). Refreshed
    /// from [`Self::reschedule`], the single funnel every lazy-mode session
    /// mutation already flows through.
    index: Option<ContenderIndex>,
    /// Scratch for one `materialize_due` round (deduplicated due nodes).
    due_scratch: Vec<usize>,
    /// Scratch for the dispatch query's stalled/degraded side scan.
    side_scratch: Vec<usize>,
    predictions: Vec<PredictionSegment>,
    /// Reused across admission calls (the reference allocates this fresh
    /// per arrival).
    predicted_ms: Vec<f64>,
    residents_scratch: Vec<ResidentTask>,
}

impl<'a, C: ClusterTraceSink> EventHeapLoop<'a, C> {
    fn new(
        config: &'a OnlineClusterConfig,
        sessions: Vec<SimSession<NodeTap<C>>>,
        trace: Rc<RefCell<C>>,
    ) -> Self {
        let nodes = sessions.len();
        let synchronized =
            config.work_stealing || config.admission.is_some() || config.migration.is_some();
        let mut index = (!synchronized).then(|| ContenderIndex::new(config.dispatch, nodes));
        if let Some(index) = index.as_mut() {
            for (i, session) in sessions.iter().enumerate() {
                index.refresh(i, &session.dispatch_signals());
            }
        }
        EventHeapLoop {
            config,
            synchronized,
            sessions,
            trace,
            heap: BinaryHeap::with_capacity(nodes * 2),
            index,
            due_scratch: Vec::with_capacity(nodes),
            side_scratch: Vec::new(),
            predictions: vec![PredictionSegment::default(); nodes],
            predicted_ms: Vec::new(),
            residents_scratch: Vec::new(),
        }
    }

    /// Pushes node `i`'s current completion certificate (lazy mode). The
    /// heap always holds each node's live bound plus stale leftovers that
    /// pop-time validation discards.
    fn reschedule(&mut self, i: usize) {
        if self.synchronized {
            return;
        }
        self.refresh_index(i);
        if let Some(bound) = self.sessions[i].completion_lower_bound() {
            self.heap.push(Reverse((bound, i)));
            if C::ENABLED {
                self.trace
                    .borrow_mut()
                    .cluster_event(bound, ClusterTraceEvent::HeapPush { node: i, bound });
            }
        }
    }

    /// Re-keys node `i` in the contender index from a fresh signal read
    /// (lazy mode; no-op otherwise). Sits inside [`Self::reschedule`], so
    /// the index tracks every session mutation the certificate heap does:
    /// materializations, injections, salvage re-entries, fault edges.
    fn refresh_index(&mut self, i: usize) {
        let Some(index) = self.index.as_mut() else {
            return;
        };
        let signals = self.sessions[i].dispatch_signals();
        let (penalty, key, indexed) = index.refresh(i, &signals);
        if C::ENABLED {
            self.trace.borrow_mut().cluster_event(
                signals.now,
                ClusterTraceEvent::IndexUpdate {
                    node: i,
                    penalty,
                    key,
                    indexed,
                },
            );
        }
    }

    /// Advances node `i` to `horizon` and refreshes its heap entry.
    fn materialize(&mut self, i: usize, horizon: Cycles) {
        let _ = self.sessions[i].run_until(horizon);
        self.reschedule(i);
    }

    /// Pops every node whose live certificate is due at or before `t` and
    /// advances it to `t` (lazy mode). Each due node is materialized once:
    /// its post-advance certificate (pushed for *future* rounds) is not
    /// re-examined, so the loop terminates even in the degenerate corner
    /// where a certificate does not clear `t`.
    fn materialize_due(&mut self, t: Cycles) {
        self.due_scratch.clear();
        while let Some(&Reverse((bound, i))) = self.heap.peek() {
            if bound > t {
                break;
            }
            self.heap.pop();
            if self.sessions[i].completion_lower_bound() == Some(bound)
                && !self.due_scratch.contains(&i)
            {
                if C::ENABLED {
                    self.trace
                        .borrow_mut()
                        .cluster_event(t, ClusterTraceEvent::HeapPop { node: i, bound });
                }
                self.due_scratch.push(i);
            } else if C::ENABLED {
                self.trace
                    .borrow_mut()
                    .cluster_event(t, ClusterTraceEvent::HeapStaleDrop { node: i, bound });
            }
        }
        for k in 0..self.due_scratch.len() {
            let i = self.due_scratch[k];
            self.materialize(i, t);
        }
    }

    /// Advances the cluster to `t`.
    ///
    /// Lazy mode advances only nodes whose certificates are due.
    /// Synchronized mode replays the reference's stepping: with stealing or
    /// migration, execution is stepped to every completion bound (and every
    /// in-flight migration delivery) on the way — the moments the task set
    /// can shrink or a deadline can slip — advancing *all* sessions and
    /// running steal and migration rounds at each; with admission only,
    /// every session advances straight to `t`.
    fn advance_to(
        &mut self,
        faults: Option<&FaultDriver<'_>>,
        migration: &mut Option<MigrationDriver<'_>>,
        t: Cycles,
        steals: &mut u64,
        assignments: &mut [NodeAssignment],
        assignment_index: &HashMap<TaskId, usize>,
    ) {
        if !self.synchronized {
            self.materialize_due(t);
            return;
        }
        if !self.config.work_stealing && migration.is_none() {
            for session in self.sessions.iter_mut() {
                let _ = session.run_until(t);
            }
            return;
        }
        loop {
            let bound = self
                .sessions
                .iter()
                .filter_map(SimSession::next_completion_time)
                .min();
            let mut step = match bound {
                Some(bound) if bound < t => bound,
                _ => t,
            };
            // Mirrors the reference: deliveries strictly before `t` land
            // mid-advance; one due exactly at `t` belongs to the caller's
            // event batch.
            if let Some(due) = migration
                .as_ref()
                .and_then(MigrationDriver::next_due)
                .filter(|&due| due < step)
            {
                step = due;
            }
            for session in self.sessions.iter_mut() {
                let _ = session.run_until(step);
            }
            if self.config.work_stealing {
                *steals += self.steal_round(
                    faults.map(FaultDriver::topology),
                    assignments,
                    assignment_index,
                );
            }
            if let Some(migration) = migration.as_mut() {
                if step < t {
                    deliver_due_migrations(
                        migration,
                        faults,
                        &mut self.sessions,
                        step,
                        assignments,
                        assignment_index,
                        &self.trace,
                    );
                }
                migration.round(&mut self.sessions, step, &self.trace);
            }
            if step == t {
                return;
            }
        }
    }

    /// One block of work-stealing rounds, mirroring the reference's
    /// `steal_onto_idle_nodes` over synchronized sessions: while some node
    /// is idle and some peer holds stealable work, move the largest
    /// never-started task from the most-loaded peer to the first idle
    /// node (skipping victims the thief cannot currently reach over the
    /// fabric). All signals are O(1) engine aggregates instead of resident
    /// rescans.
    fn steal_round(
        &mut self,
        links: Option<&crate::interconnect::LinkTopology>,
        assignments: &mut [NodeAssignment],
        assignment_index: &HashMap<TaskId, usize>,
    ) -> u64 {
        let mut steals = 0u64;
        loop {
            // Mirrors the reference: a stalled node (crashed-and-drained or
            // frozen) cannot be a thief, but may still be a victim.
            let Some(thief) = self
                .sessions
                .iter()
                .position(|s| s.queue_depth() == 0 && s.stalled_until().is_none())
            else {
                return steals;
            };
            let now = self.sessions[thief].now();
            let mut victim: Option<(Cycles, usize)> = None;
            for (i, session) in self.sessions.iter().enumerate() {
                if session.queue_depth() < 2 {
                    continue;
                }
                if links.is_some_and(|links| !links.reachable(i, thief, now)) {
                    continue;
                }
                let stealable = session.revocable_work();
                if stealable.is_zero() {
                    continue;
                }
                if victim.is_none_or(|(most, _)| stealable > most) {
                    victim = Some((stealable, i));
                }
            }
            let Some((_, victim)) = victim else {
                return steals;
            };
            let stolen = self.sessions[victim]
                .best_steal_candidate()
                .expect("nonzero stealable work has a best task");
            let prepared = self.sessions[victim]
                .revoke(stolen.id)
                .expect("stolen task was revocable");
            self.sessions[thief]
                .inject(prepared)
                .expect("revoked task re-injects cleanly");
            if C::ENABLED {
                self.trace.borrow_mut().cluster_event(
                    self.sessions[thief].now(),
                    ClusterTraceEvent::Steal {
                        task: stolen.id,
                        from: victim,
                        to: thief,
                    },
                );
            }
            if let Some(&slot) = assignment_index.get(&stolen.id) {
                assignments[slot].node = thief;
            }
            steals += 1;
        }
    }

    /// The dispatch decision at arrival time `t`: identical to the
    /// reference's full scan — the node minimizing (signal, remaining,
    /// index). In lazy mode only *contenders* are advanced: for a node
    /// whose completion certificate clears `t`, the work-based signals at
    /// `t` are lower-bounded by `value_now - (t - now)` and its queue
    /// depth is exact, so a node whose lower bound cannot strictly beat
    /// the best exact score cannot win the (score, index) minimum and is
    /// skipped unadvanced. In synchronized mode every lag is zero and this
    /// degenerates to the exact scan.
    ///
    /// Under fault injection the key gains the failure-aware penalty tier
    /// in front (down / cooling-down / healthy, exactly the reference's).
    /// The tier is *exact* regardless of lag — it reads the fault driver,
    /// not session state — so prefixing it preserves the branch-and-bound
    /// invariant: the lower-bounded key is still lexicographically ≤ the
    /// exact key, and the skip rule stays sound.
    fn pick_node(
        &mut self,
        t: Cycles,
        task: &PreparedTask,
        faults: Option<&FaultDriver<'_>>,
    ) -> usize {
        // Fresh arrivals have no source node: they enter through the
        // front-end control plane, which link faults never sever.
        //
        // In synchronized mode the arrival pick must take scores as-is,
        // like the fault drain's picks: a parked idle node can hold a
        // *pending* injected task (a steal or salvage landed after its
        // clock stopped), and materializing it here would dispatch that
        // task before the reference does — the advance loop's next bound
        // would then skip the pending-arrival instant the reference still
        // steps (and prices a migration round) at.
        self.pick_node_inner(t, task, faults, None, self.synchronized)
    }

    /// [`Self::pick_node`] for callers that have already materialized every
    /// session to `t` (the fault drain's synchronization points). Any
    /// residual `t - now()` lag is inert there — a drained or stalled node
    /// parks its clock before `t` even after `run_until(t)` — so scores are
    /// taken as-is, and crucially no session is ever materialized: running
    /// a target engine between two same-instant salvage injections would
    /// admit a partial batch and diverge from the reference.
    fn pick_node_synchronized(
        &mut self,
        t: Cycles,
        task: &PreparedTask,
        faults: Option<&FaultDriver<'_>>,
        source: Option<usize>,
    ) -> usize {
        self.pick_node_inner(t, task, faults, source, true)
    }

    fn pick_node_inner(
        &mut self,
        t: Cycles,
        task: &PreparedTask,
        faults: Option<&FaultDriver<'_>>,
        source: Option<usize>,
        synchronized: bool,
    ) -> usize {
        let use_index = !synchronized && self.index.is_some();
        let (chosen, keys) = if use_index {
            // The contender index keys penalties without a source (lazy
            // modes only serve sourceless fresh arrivals).
            debug_assert!(source.is_none(), "indexed dispatch is sourceless");
            self.pick_node_indexed(t, task, faults)
        } else {
            self.pick_node_scan(t, task, faults, source, synchronized)
        };
        // Debug cross-check: replay the linear branch-and-bound scan over
        // the post-query state — extra materializations are outcome-inert
        // (pure suspension) and the scan's argmin is state-independent, so
        // the two procedures must name the same node.
        #[cfg(debug_assertions)]
        {
            if use_index {
                let (check, _) = self.pick_node_scan(t, task, faults, source, synchronized);
                debug_assert_eq!(
                    chosen, check,
                    "indexed dispatch diverged from the linear scan at {t:?}"
                );
            }
        }
        if C::ENABLED {
            self.trace.borrow_mut().cluster_event(
                t,
                ClusterTraceEvent::DispatchDecision {
                    task: task.request.id,
                    chosen,
                    keys,
                },
            );
        }
        chosen
    }

    /// The dispatch score of node `i` for an arrival of `priority`, with
    /// `lag` wall cycles of conservative decay subtracted from the
    /// work-based signals (`lag == 0` reads the exact score).
    fn lag_score(&self, i: usize, priority: Priority, lag: u64) -> (u64, u64) {
        let session = &self.sessions[i];
        let remaining = session.predicted_remaining_work().get().saturating_sub(lag);
        match self.config.dispatch {
            OnlineDispatchPolicy::ShortestQueue => (session.queue_depth() as u64, remaining),
            OnlineDispatchPolicy::LeastWork => (remaining, remaining),
            OnlineDispatchPolicy::Predictive => (
                session
                    .predicted_blocking_work(priority)
                    .get()
                    .saturating_sub(lag),
                remaining,
            ),
        }
    }

    /// The linear branch-and-bound scan (the reference decision procedure):
    /// every node visited in index order, lagging nodes compared by lower
    /// bound and materialized only when they might win.
    fn pick_node_scan(
        &mut self,
        t: Cycles,
        task: &PreparedTask,
        faults: Option<&FaultDriver<'_>>,
        source: Option<usize>,
        synchronized: bool,
    ) -> (usize, NodeKeySet) {
        let priority = task.request.priority;
        type PenaltyScore = (u8, (u64, u64));
        let mut keys = NodeKeySet::default();
        let mut best: Option<(PenaltyScore, usize)> = None;
        for i in 0..self.sessions.len() {
            let penalty = faults.map_or(0u8, |driver| driver.route_penalty(source, i, t));
            let lag = if synchronized {
                0
            } else {
                (t - self.sessions[i].now()).get()
            };
            let lower = (penalty, self.lag_score(i, priority, lag));
            if best.is_some_and(|(exact, _)| lower >= exact) {
                if C::ENABLED {
                    // Skipped unmaterialized: the trace records the lower
                    // bound the branch-and-bound rule actually compared.
                    keys.push(NodeKey {
                        node: i,
                        penalty,
                        key: lower.1,
                        lower_bounded: lag > 0,
                    });
                }
                continue;
            }
            if lag > 0 {
                self.materialize(i, t);
            }
            let exact = (penalty, self.lag_score(i, priority, 0));
            if C::ENABLED {
                keys.push(NodeKey {
                    node: i,
                    penalty,
                    key: exact.1,
                    lower_bounded: false,
                });
            }
            if best.is_none_or(|(score, _)| exact < score) {
                best = Some((exact, i));
            }
        }
        (best.expect("at least one node").1, keys)
    }

    /// The indexed dispatch query: provably the same argmin as
    /// [`Self::pick_node_scan`], in O(contenders × log nodes). See
    /// [`crate::contender`] for the invariants; the shape here is
    ///
    /// 1. drain due penalty decays, re-keying the affected nodes;
    /// 2. drain the staleness heap, materializing nodes whose stored keys
    ///    fell inside the saturation window (restores stored-order ==
    ///    lower-bound-order);
    /// 3. walk structure minima — each is the best remaining lower bound —
    ///    materializing and folding exact scores until the best exact key
    ///    (index tiebreak included) beats the minimum;
    /// 4. linearly fold the stalled/degraded side set with the scan's own
    ///    lag lower bounds.
    ///
    /// Unlike the scan — whose ascending visit order lets it compare bare
    /// scores — every comparison here carries the node index, because the
    /// walk examines nodes in key order.
    fn pick_node_indexed(
        &mut self,
        t: Cycles,
        task: &PreparedTask,
        faults: Option<&FaultDriver<'_>>,
    ) -> (usize, NodeKeySet) {
        if let Some(driver) = faults {
            while let Some(node) = self
                .index
                .as_mut()
                .expect("indexed pick requires the index")
                .next_due_promotion(t)
            {
                let (tier, expiry) = driver.penalty_with_expiry(node, t);
                self.index
                    .as_mut()
                    .expect("indexed pick requires the index")
                    .set_penalty(node, tier, expiry);
            }
        }
        while let Some(node) = self
            .index
            .as_mut()
            .expect("indexed pick requires the index")
            .pop_stale(t)
        {
            self.materialize(node, t);
        }
        let priority = task.request.priority;
        type PenaltyScore = (u8, (u64, u64));
        let mut keys = NodeKeySet::default();
        let mut best: Option<(PenaltyScore, usize)> = None;
        while let Some((penalty, lower_score, node)) = self
            .index
            .as_ref()
            .expect("indexed pick requires the index")
            .min_lower(priority, t)
        {
            let lower = (penalty, lower_score);
            if let Some((best_key, best_node)) = best {
                if (lower, node) >= (best_key, best_node) {
                    break;
                }
            }
            if self.sessions[node].now() < t {
                // A contender: materialize (the refresh re-anchors its
                // stored key to an exact one, so a re-encounter at the
                // minimum terminates the walk).
                self.materialize(node, t);
            }
            #[cfg(debug_assertions)]
            if let Some(driver) = faults {
                debug_assert_eq!(
                    penalty,
                    driver.penalty(node, t),
                    "stored penalty tier went stale at {t:?}"
                );
            }
            let exact = (penalty, self.lag_score(node, priority, 0));
            if C::ENABLED {
                keys.push(NodeKey {
                    node,
                    penalty,
                    key: exact.1,
                    lower_bounded: false,
                });
            }
            if best.is_none_or(|(best_key, best_node)| (exact, node) < (best_key, best_node)) {
                best = Some((exact, node));
            }
        }
        self.index
            .as_ref()
            .expect("indexed pick requires the index")
            .copy_unindexed_into(&mut self.side_scratch);
        for k in 0..self.side_scratch.len() {
            let node = self.side_scratch[k];
            let penalty = faults.map_or(0u8, |driver| driver.penalty(node, t));
            let lag = (t - self.sessions[node].now()).get();
            let lower = (penalty, self.lag_score(node, priority, lag));
            if best.is_some_and(|(best_key, best_node)| (lower, node) >= (best_key, best_node)) {
                if C::ENABLED {
                    keys.push(NodeKey {
                        node,
                        penalty,
                        key: lower.1,
                        lower_bounded: lag > 0,
                    });
                }
                continue;
            }
            if lag > 0 {
                self.materialize(node, t);
            }
            let exact = (penalty, self.lag_score(node, priority, 0));
            if C::ENABLED {
                keys.push(NodeKey {
                    node,
                    penalty,
                    key: exact.1,
                    lower_bounded: false,
                });
            }
            if best.is_none_or(|(best_key, best_node)| (exact, node) < (best_key, best_node)) {
                best = Some((exact, node));
            }
        }
        (best.expect("at least one node").1, keys)
    }

    /// The event-heap half of the shared fault/migration timeline (see the
    /// reference's `drain_fault_events`): processes every due event through
    /// the *same* [`FaultDriver`] and [`MigrationDriver`]. A crash or
    /// freeze fails/stalls the faulted node at the fault instant; a
    /// degrade start/end rescales its clock; a due recovery runs the
    /// branch-and-bound dispatch over penalty-tiered nodes and re-injects
    /// the salvage with its admission gated to the recovery instant; a due
    /// migration delivery lands at its destination, and each instant ends
    /// with a migration round over the synchronized cluster.
    ///
    /// Every fault-event instant is a *global* synchronization point:
    /// all sessions are materialized to `t` before the batch due there is
    /// processed, exactly as the reference's advance-all stepping does
    /// (pure suspension makes each node's state at `t` bit-identical
    /// either way). This is load-bearing for same-instant recovery
    /// batches — with zero lag, `pick_node` never materializes a target
    /// mid-batch, so a node receiving several salvages at one instant
    /// admits them atomically at its next wakeup, like the reference,
    /// instead of dispatching a partial batch between two injections.
    #[allow(clippy::too_many_arguments)]
    fn drain_fault_events(
        &mut self,
        faults: &mut Option<FaultDriver<'_>>,
        migration: &mut Option<MigrationDriver<'_>>,
        limit: Cycles,
        steals: &mut u64,
        assignments: &mut [NodeAssignment],
        assignment_index: &HashMap<TaskId, usize>,
    ) {
        loop {
            let fault_next = faults.as_ref().and_then(FaultDriver::next_event_time);
            let migration_next = migration.as_ref().and_then(MigrationDriver::next_due);
            let Some(t) = [fault_next, migration_next]
                .into_iter()
                .flatten()
                .min()
                .filter(|&t| t <= limit)
            else {
                return;
            };
            self.advance_to(
                faults.as_ref(),
                migration,
                t,
                steals,
                assignments,
                assignment_index,
            );
            if !self.synchronized {
                // Lazy mode: nodes may still lag `t`; pull them all up before
                // the batch. In synchronized mode `advance_to` already ran
                // every session to `t` — and re-running `run_until(t)` here
                // would NOT be a no-op after a migration round evacuated a
                // running task (the session would wake up and dispatch its
                // next resident, a state transition the reference loop only
                // performs on its next advance), so the pass must be skipped.
                for i in 0..self.sessions.len() {
                    self.materialize(i, t);
                }
            }
            if let Some(driver) = faults.as_mut() {
                while let Some(event) = driver.pop_due(t) {
                    match event {
                        FaultEvent::Fault(fault) => {
                            if C::ENABLED {
                                let kind = match fault.kind {
                                    FaultKind::Crash => FaultTraceKind::Crash,
                                    FaultKind::Freeze => FaultTraceKind::Freeze,
                                    FaultKind::Degrade {
                                        speed_num,
                                        speed_den,
                                    } => FaultTraceKind::Degrade {
                                        num: speed_num,
                                        den: speed_den,
                                    },
                                };
                                self.trace.borrow_mut().cluster_event(
                                    t,
                                    ClusterTraceEvent::Fault {
                                        node: fault.node,
                                        kind,
                                        until: fault.end,
                                    },
                                );
                            }
                            match fault.kind {
                                FaultKind::Crash => {
                                    let salvaged = self.sessions[fault.node].fail();
                                    driver.on_salvaged(fault.node, t, salvaged, &self.trace);
                                    self.sessions[fault.node].stall(fault.end);
                                }
                                FaultKind::Freeze => self.sessions[fault.node].stall(fault.end),
                                FaultKind::Degrade {
                                    speed_num,
                                    speed_den,
                                } => {
                                    self.sessions[fault.node].set_clock_scale(speed_num, speed_den)
                                }
                            }
                            self.reschedule(fault.node);
                            // The fault window just opened moves the node's
                            // penalty tier: store the fresh (tier, decay
                            // instant) as the index's major key.
                            if let Some(index) = self.index.as_mut() {
                                let (tier, expiry) = driver.penalty_with_expiry(fault.node, t);
                                index.set_penalty(fault.node, tier, expiry);
                            }
                        }
                        FaultEvent::DegradeEnd { node } => {
                            if C::ENABLED {
                                self.trace.borrow_mut().cluster_event(
                                    t,
                                    ClusterTraceEvent::Fault {
                                        node,
                                        kind: FaultTraceKind::DegradeEnd,
                                        until: t,
                                    },
                                );
                            }
                            self.sessions[node].set_clock_scale(1, 1);
                            self.reschedule(node);
                            if let Some(index) = self.index.as_mut() {
                                let (tier, expiry) = driver.penalty_with_expiry(node, t);
                                index.set_penalty(node, tier, expiry);
                            }
                        }
                        FaultEvent::Recovery(pending) => {
                            let node = self.pick_node_synchronized(
                                t,
                                &pending.salvage.prepared,
                                Some(driver),
                                Some(pending.from_node),
                            );
                            // Mirrors the reference: the scan minimizes the
                            // penalty tier, so an unreachable winner means
                            // every node is partitioned away from the
                            // custodian — the attempt is spent instead of
                            // routed across the partition.
                            if driver.topology().reachable(pending.from_node, node, t) {
                                let origin = (pending.from_node, pending.attempt);
                                let salvage = driver.redispatch(pending, node, t);
                                let id = salvage.prepared.request.id;
                                if C::ENABLED {
                                    self.trace.borrow_mut().cluster_event(
                                        t,
                                        ClusterTraceEvent::Recovery {
                                            task: id,
                                            from: origin.0,
                                            to: node,
                                            attempt: origin.1,
                                        },
                                    );
                                }
                                self.sessions[node]
                                    .inject_salvaged(salvage, t)
                                    .expect("salvaged task id is not live");
                                self.reschedule(node);
                                if let Some(&slot) = assignment_index.get(&id) {
                                    assignments[slot].node = node;
                                }
                            } else {
                                driver.on_unreachable(pending, t, &self.trace);
                            }
                        }
                        FaultEvent::LinkEdge(edge) => {
                            // Link windows mutate no session (and therefore
                            // no certificate): the topology answers state
                            // queries lazily. The edge synchronizes both
                            // loops at the instant routing changes.
                            if C::ENABLED {
                                self.trace.borrow_mut().cluster_event(
                                    t,
                                    ClusterTraceEvent::LinkFault {
                                        from: edge.from,
                                        to: edge.to,
                                        kind: edge.kind,
                                        until: edge.until,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            if let Some(migration) = migration.as_mut() {
                deliver_due_migrations(
                    migration,
                    faults.as_ref(),
                    &mut self.sessions,
                    t,
                    assignments,
                    assignment_index,
                    &self.trace,
                );
                migration.round(&mut self.sessions, t, &self.trace);
            }
            sample_nodes(&self.sessions, t, &self.trace);
        }
    }

    /// SLA-aware admission, bit-identical to the reference's: predicts the
    /// cluster-wide p99 turnaround over all residents plus the newcomer,
    /// shedding the globally lowest-priority never-started task while the
    /// prediction exceeds the target. Admission runs synchronized (every
    /// session is already at the arrival instant), but unchanged nodes
    /// reuse their cached prediction segments, the input vector reuses one
    /// scratch buffer, and the shed scan is an O(1) peek per node.
    fn admit(
        &mut self,
        task: &PreparedTask,
        node: usize,
        admission: SlaAdmissionConfig,
        shed: &mut Vec<TaskRequest>,
    ) -> bool {
        let npu = &self.config.npu;
        let incoming_priority = task.request.priority;
        let incoming_estimate = task.estimated_cycles();
        let target_p99_ms = scaled_admission_target(&self.sessions, admission.target_p99_ms);
        loop {
            self.predicted_ms.clear();
            for i in 0..self.sessions.len() {
                self.predictions[i].refresh(&self.sessions[i], &mut self.residents_scratch);
                self.predictions[i].append_ms(self.sessions[i].now(), npu, &mut self.predicted_ms);
            }
            let incoming_turnaround =
                self.sessions[node].predicted_blocking_work(incoming_priority) + incoming_estimate;
            self.predicted_ms
                .push(npu.cycles_to_millis(incoming_turnaround));
            let p99 = Percentiles::summarize(&self.predicted_ms)
                .expect("the newcomer is always present")
                .p99;
            if p99 <= target_p99_ms {
                return true;
            }

            let mut candidate: Option<(ShedKey, usize, TaskId)> = None;
            for (index, session) in self.sessions.iter().enumerate() {
                if let Some(resident) = session.best_shed_candidate() {
                    let key = ShedKey::of(
                        resident.priority,
                        resident.estimated_remaining(),
                        resident.id,
                    );
                    if candidate.as_ref().is_none_or(|(best, _, _)| key < *best) {
                        candidate = Some((key, index, resident.id));
                    }
                }
            }
            let incoming_key = ShedKey::of(incoming_priority, incoming_estimate, task.request.id);
            match candidate {
                Some((key, victim_node, victim_id)) if key < incoming_key => {
                    let revoked = self.sessions[victim_node]
                        .revoke(victim_id)
                        .expect("resident was reported revocable");
                    if C::ENABLED {
                        self.trace.borrow_mut().cluster_event(
                            self.sessions[victim_node].now(),
                            ClusterTraceEvent::Shed {
                                task: victim_id,
                                node: victim_node,
                            },
                        );
                    }
                    shed.push(revoked.request);
                }
                _ => {
                    if C::ENABLED {
                        self.trace.borrow_mut().cluster_event(
                            self.sessions[node].now(),
                            ClusterTraceEvent::Shed {
                                task: task.request.id,
                                node,
                            },
                        );
                    }
                    shed.push(task.request);
                    return false;
                }
            }
        }
    }

    /// Commits the newcomer to `node` (which `pick_node` materialized).
    fn inject(&mut self, node: usize, task: PreparedTask) {
        self.sessions[node]
            .inject(task)
            .expect("arrival ids are unique");
        self.reschedule(node);
    }
}
