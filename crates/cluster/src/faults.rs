//! Node fault injection and checkpoint-priced recovery for the closed-loop
//! cluster.
//!
//! A [`prema_workload::FaultSchedule`] says *when* nodes crash, freeze or
//! degrade; this module says what the cluster *does* about it.
//! [`ClusterFaultPlan`] pairs a schedule with a [`RecoveryConfig`] — the retry budget,
//! exponential re-dispatch backoff, post-recovery dispatch cooldown, and
//! whether recovery resumes from the last checkpoint commit or restarts
//! from zero (the baseline the checkpoint pricing is compared against).
//!
//! The crate-private `FaultDriver` is the shared state machine **both**
//! closed-loop drivers consume. It owns everything about faults that is a
//! *decision* rather than a session mutation: the merged event timeline
//! (fault starts interleaved with degrade-window ends and due
//! re-dispatches; ties process degrade ends first, then fault starts, then
//! recoveries), per-task attempt counts and backoff arithmetic, the
//! abandon rule, the failure-aware dispatch penalty, and the recovery log.
//! The two loops differ only in how they advance sessions to an event
//! instant; every fault-policy decision comes from this one
//! implementation, so the heap-vs-reference bit-identity contract extends
//! over faulty drivings by construction (and is pinned by the chaos
//! property tests).
//!
//! A *degrade* window ([`prema_workload::FaultKind::Degrade`]) is the
//! straggler fault: the node keeps serving but its clock runs at
//! `speed_num / speed_den` of full speed
//! ([`prema_core::SimSession::set_clock_scale`]). Unlike crash and freeze
//! it contributes no downtime — the node is *up*, just slow — so it is
//! tracked separately (`degrades`, `node_degraded_time`) and earns the
//! middle dispatch-penalty tier rather than the down tier. Both the window
//! start and its end are global synchronization points (all sessions are
//! materialized there before the clock scale flips), which is what keeps
//! the bit-identity contract intact over scaled clocks.
//!
//! The recovery cost model follows the engine's commit-point salvage
//! ([`prema_core::SimSession::fail`]): a crash loses in-flight progress
//! back to the last `GEMM_OP` interval boundary, and a checkpoint-priced
//! re-dispatch pays the restore DMA for exactly the context bytes that
//! were live at that boundary. Restart-from-zero recovery discards the
//! cursor (and pays no restore) but repeats all the work.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

use npu_sim::{Cycles, NpuConfig};
use prema_core::{SalvagedTask, TaskId, TaskRequest};
use prema_workload::{FaultKind, FaultSchedule, LinkFaultKind, NodeFault};

use crate::interconnect::LinkTopology;
use crate::trace::{ClusterTraceEvent, ClusterTraceSink, LinkTraceKind};

/// How salvaged work is re-dispatched after a node crash.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Maximum number of re-dispatch attempts per task across its lifetime.
    /// A task salvaged more than this many times is *abandoned* (reported
    /// separately from admission sheds). Zero abandons on first crash.
    pub retry_budget: u32,
    /// Base of the exponential re-dispatch backoff, in milliseconds:
    /// attempt `k` re-enters dispatch `base * 2^(k-1)` after the crash.
    pub backoff_base_ms: f64,
    /// How long after a node's fault window ends its dispatches stay
    /// deprioritized (the failure-aware dispatch cooldown), in
    /// milliseconds.
    pub cooldown_ms: f64,
    /// Whether recovery resumes from the last checkpoint commit point
    /// (paying the restore DMA) or restarts the task from zero.
    pub checkpoint_recovery: bool,
}

impl RecoveryConfig {
    /// The checkpoint-priced recovery policy: resume from the last commit
    /// point, three attempts, 0.5 ms backoff base, 2 ms dispatch cooldown.
    pub fn checkpointed() -> Self {
        RecoveryConfig {
            retry_budget: 3,
            backoff_base_ms: 0.5,
            cooldown_ms: 2.0,
            checkpoint_recovery: true,
        }
    }

    /// The restart-from-zero baseline: identical retry/backoff/cooldown,
    /// but every recovery discards all execution progress.
    pub fn restart_from_zero() -> Self {
        RecoveryConfig {
            checkpoint_recovery: false,
            ..RecoveryConfig::checkpointed()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.backoff_base_ms.is_finite() || self.backoff_base_ms < 0.0 {
            return Err("recovery backoff base must be non-negative and finite".into());
        }
        if !self.cooldown_ms.is_finite() || self.cooldown_ms < 0.0 {
            return Err("recovery cooldown must be non-negative and finite".into());
        }
        if self.retry_budget > 32 {
            return Err("retry budget above 32 overflows the exponential backoff".into());
        }
        Ok(())
    }
}

/// A fault schedule plus the recovery policy that answers it — the
/// fault-injection configuration of one closed-loop cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterFaultPlan {
    /// When nodes crash and freeze.
    pub schedule: FaultSchedule,
    /// How salvaged work is re-dispatched.
    pub recovery: RecoveryConfig,
}

impl ClusterFaultPlan {
    /// A plan answering `schedule` with checkpoint-priced recovery.
    pub fn new(schedule: FaultSchedule) -> Self {
        ClusterFaultPlan {
            schedule,
            recovery: RecoveryConfig::checkpointed(),
        }
    }

    /// Replaces the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Validates schedule invariants and the recovery policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.schedule
            .validate()
            .map_err(|error| error.to_string())?;
        self.recovery.validate()
    }
}

/// One completed re-dispatch of a salvaged task — a hop in its recovery
/// history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// The recovered task.
    pub task: TaskId,
    /// The node whose crash salvaged it.
    pub from_node: usize,
    /// The node it was re-dispatched to.
    pub to_node: usize,
    /// Which lifetime attempt this was (1 = first recovery).
    pub attempt: u32,
    /// The checkpoint cursor it re-entered with (zero under
    /// restart-from-zero recovery). Monotonically non-decreasing across one
    /// task's hops — a later crash can never salvage less committed
    /// progress than an earlier recovery resumed from.
    pub resume_executed: Cycles,
    /// When the re-dispatch happened (global cycles).
    pub at: Cycles,
}

/// A salvaged task waiting out its re-dispatch backoff.
#[derive(Debug, Clone)]
pub(crate) struct PendingRecovery {
    due: Cycles,
    /// Tie-break for identical due instants: scheduling order.
    seq: u64,
    pub(crate) salvage: SalvagedTask,
    pub(crate) attempt: u32,
    pub(crate) from_node: usize,
}

impl PartialEq for PendingRecovery {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}

impl Eq for PendingRecovery {}

impl PartialOrd for PendingRecovery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingRecovery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// One edge of a directed-link fault window: a synchronization (and trace)
/// instant for both loops. Link state itself lives in the
/// [`LinkTopology`] — the edge mutates no session, but materializing every
/// node there keeps migration rounds and transfer decisions bit-identical
/// across the two loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LinkEdge {
    /// When the edge fires.
    pub(crate) at: Cycles,
    /// The sending side of the directed link.
    pub(crate) from: usize,
    /// The receiving side of the directed link.
    pub(crate) to: usize,
    /// What the edge does to the link.
    pub(crate) kind: LinkTraceKind,
    /// The end of the window the edge belongs to (the instant itself for
    /// `Restored` edges).
    pub(crate) until: Cycles,
}

/// One due fault-timeline event, in processing order.
#[derive(Debug)]
pub(crate) enum FaultEvent {
    /// A directed-link fault window opens or closes (the loop traces it;
    /// link state is read from the topology at decision time).
    LinkEdge(LinkEdge),
    /// A fault window begins (the loop fails/stalls the session, or scales
    /// its clock for a degrade window).
    Fault(NodeFault),
    /// A degrade window ends (the loop restores the node's full clock).
    DegradeEnd {
        /// The node whose clock returns to full speed.
        node: usize,
    },
    /// A salvaged task's backoff expired (the loop re-dispatches it).
    Recovery(PendingRecovery),
}

/// Everything the fault machinery contributes to an [`crate::OnlineOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FaultTally {
    pub(crate) abandoned: Vec<TaskRequest>,
    pub(crate) crashes: u64,
    pub(crate) freezes: u64,
    pub(crate) degrades: u64,
    pub(crate) recoveries: u64,
    pub(crate) recovery_log: Vec<RecoveryRecord>,
    pub(crate) node_downtime: Vec<Cycles>,
    pub(crate) node_degraded_time: Vec<Cycles>,
}

impl FaultTally {
    /// The fault-free tally (the degenerate driving).
    pub(crate) fn empty(nodes: usize) -> Self {
        FaultTally {
            abandoned: Vec::new(),
            crashes: 0,
            freezes: 0,
            degrades: 0,
            recoveries: 0,
            recovery_log: Vec::new(),
            node_downtime: vec![Cycles::ZERO; nodes],
            node_degraded_time: vec![Cycles::ZERO; nodes],
        }
    }
}

/// The shared fault/recovery state machine both closed-loop drivers consume
/// (see the module docs): a cursor over the fault schedule, the backoff
/// heap of salvaged tasks, per-task attempt counts, per-node failure
/// history for the dispatch penalty, and the outcome tallies.
#[derive(Debug)]
pub(crate) struct FaultDriver<'a> {
    plan: &'a ClusterFaultPlan,
    npu: &'a NpuConfig,
    next_fault: usize,
    pending: BinaryHeap<Reverse<PendingRecovery>>,
    /// Open degrade windows, keyed by their end instant: the clock-restore
    /// events still to come. (node index second for deterministic ties.)
    degrade_ends: BinaryHeap<Reverse<(Cycles, usize)>>,
    seq: u64,
    attempts: HashMap<TaskId, u32>,
    /// Per node: the end of its latest crash/freeze window seen so far
    /// (`ZERO` until the node first faults). Degrade windows do not count —
    /// a degraded node is up.
    down_until: Vec<Cycles>,
    /// Per node: the end of its latest degrade window seen so far (`ZERO`
    /// until the node first degrades).
    degraded_until: Vec<Cycles>,
    cooldown: Cycles,
    /// Per-directed-link fault windows, read at decision time for
    /// reachability and transfer pricing.
    links: LinkTopology,
    /// Both edges of every link window, in firing order — the
    /// synchronization instants the link schedule adds to the timeline.
    link_edges: Vec<LinkEdge>,
    next_link: usize,
    tally: FaultTally,
}

impl<'a> FaultDriver<'a> {
    pub(crate) fn new(plan: &'a ClusterFaultPlan, npu: &'a NpuConfig, nodes: usize) -> Self {
        let mut link_edges: Vec<LinkEdge> = Vec::with_capacity(plan.schedule.links.len() * 2);
        for window in &plan.schedule.links {
            let kind = match window.kind {
                LinkFaultKind::Down => LinkTraceKind::Down,
                LinkFaultKind::Degraded {
                    bandwidth_num,
                    bandwidth_den,
                } => LinkTraceKind::Degraded {
                    num: bandwidth_num,
                    den: bandwidth_den,
                },
            };
            link_edges.push(LinkEdge {
                at: window.start,
                from: window.from,
                to: window.to,
                kind,
                until: window.end,
            });
            link_edges.push(LinkEdge {
                at: window.end,
                from: window.from,
                to: window.to,
                kind: LinkTraceKind::Restored,
                until: window.end,
            });
        }
        // Restores first on ties: a window touching its successor on the
        // same link closes before the successor opens.
        link_edges.sort_by_key(|edge| {
            (
                edge.at,
                !matches!(edge.kind, LinkTraceKind::Restored),
                edge.from,
                edge.to,
            )
        });
        FaultDriver {
            plan,
            npu,
            next_fault: 0,
            pending: BinaryHeap::new(),
            degrade_ends: BinaryHeap::new(),
            seq: 0,
            attempts: HashMap::new(),
            down_until: vec![Cycles::ZERO; nodes],
            degraded_until: vec![Cycles::ZERO; nodes],
            cooldown: npu.millis_to_cycles(plan.recovery.cooldown_ms),
            links: LinkTopology::new(&plan.schedule.links),
            link_edges,
            next_link: 0,
            tally: FaultTally::empty(nodes),
        }
    }

    /// The per-directed-link fault windows, for reachability checks and
    /// link-state transfer pricing at decision time.
    pub(crate) fn topology(&self) -> &LinkTopology {
        &self.links
    }

    /// Whether `node` is inside a crash/freeze window at instant `t` — a
    /// landing transfer finds nobody home there.
    pub(crate) fn is_down(&self, node: usize, t: Cycles) -> bool {
        let until = self.down_until[node];
        !until.is_zero() && t < until
    }

    /// The instant of the next fault-timeline event (link edge, fault
    /// start, degrade end or due re-dispatch), if any remain.
    pub(crate) fn next_event_time(&self) -> Option<Cycles> {
        let link = self.link_edges.get(self.next_link).map(|edge| edge.at);
        let fault = self
            .plan
            .schedule
            .events
            .get(self.next_fault)
            .map(|event| event.start);
        let degrade_end = self.degrade_ends.peek().map(|&Reverse((end, _))| end);
        let recovery = self.pending.peek().map(|Reverse(p)| p.due);
        [link, fault, degrade_end, recovery]
            .into_iter()
            .flatten()
            .min()
    }

    /// Pops the next event due at or before `t`. Ties at one instant
    /// process link edges first (they mutate no session — the state they
    /// announce is already visible through the topology), then
    /// degrade-window ends, then fault starts, then recoveries: windows
    /// are half-open, so a degrade window ending exactly when the node's
    /// next one begins hands the clock straight to the new scale (the
    /// restore must not clobber it); a crash at the very instant a task
    /// would re-enter dispatch is observed by that re-dispatch as a down
    /// node.
    pub(crate) fn pop_due(&mut self, t: Cycles) -> Option<FaultEvent> {
        let fault_start = self
            .plan
            .schedule
            .events
            .get(self.next_fault)
            .map(|event| event.start);
        let degrade_end = self.degrade_ends.peek().map(|&Reverse((end, _))| end);
        let recovery_due = self.pending.peek().map(|Reverse(p)| p.due);
        if let Some(edge) = self.link_edges.get(self.next_link).copied() {
            if edge.at <= t
                && degrade_end.is_none_or(|end| edge.at <= end)
                && fault_start.is_none_or(|start| edge.at <= start)
                && recovery_due.is_none_or(|due| edge.at <= due)
            {
                self.next_link += 1;
                return Some(FaultEvent::LinkEdge(edge));
            }
        }
        if let Some(end) = degrade_end {
            if end <= t
                && fault_start.is_none_or(|start| end <= start)
                && recovery_due.is_none_or(|due| end <= due)
            {
                let Reverse((_, node)) = self.degrade_ends.pop().expect("peeked entry");
                return Some(FaultEvent::DegradeEnd { node });
            }
        }
        if let Some(start) = fault_start {
            if start <= t && recovery_due.is_none_or(|due| start <= due) {
                let fault = self.plan.schedule.events[self.next_fault];
                self.next_fault += 1;
                match fault.kind {
                    FaultKind::Crash => self.tally.crashes += 1,
                    FaultKind::Freeze => self.tally.freezes += 1,
                    FaultKind::Degrade { .. } => {
                        // A degraded node is up: no downtime, a separate
                        // tally, and a pending clock-restore event.
                        self.tally.degrades += 1;
                        self.tally.node_degraded_time[fault.node] += fault.duration();
                        self.degraded_until[fault.node] =
                            self.degraded_until[fault.node].max(fault.end);
                        self.degrade_ends.push(Reverse((fault.end, fault.node)));
                        return Some(FaultEvent::Fault(fault));
                    }
                }
                self.down_until[fault.node] = self.down_until[fault.node].max(fault.end);
                self.tally.node_downtime[fault.node] += fault.duration();
                return Some(FaultEvent::Fault(fault));
            }
        }
        if recovery_due.is_some_and(|due| due <= t) {
            let Reverse(pending) = self.pending.pop().expect("peeked entry");
            return Some(FaultEvent::Recovery(pending));
        }
        None
    }

    /// Accepts a crash's salvage manifests (taken at `at` off `node`):
    /// tasks within their retry budget enter the backoff heap, the rest are
    /// abandoned (and reported to the trace sink).
    pub(crate) fn on_salvaged<C: ClusterTraceSink>(
        &mut self,
        node: usize,
        at: Cycles,
        salvaged: Vec<SalvagedTask>,
        trace: &RefCell<C>,
    ) {
        for salvage in salvaged {
            let id = salvage.prepared.request.id;
            let attempt = self.attempts.get(&id).copied().unwrap_or(0) + 1;
            if attempt > self.plan.recovery.retry_budget {
                if C::ENABLED {
                    trace.borrow_mut().cluster_event(
                        at,
                        ClusterTraceEvent::Abandon {
                            task: id,
                            node,
                            attempts: attempt,
                        },
                    );
                }
                self.tally.abandoned.push(salvage.prepared.request);
                continue;
            }
            self.attempts.insert(id, attempt);
            let backoff_ms =
                self.plan.recovery.backoff_base_ms * f64::powi(2.0, attempt as i32 - 1);
            let due = at + self.npu.millis_to_cycles(backoff_ms);
            self.pending.push(Reverse(PendingRecovery {
                due,
                seq: self.seq,
                salvage,
                attempt,
                from_node: node,
            }));
            self.seq += 1;
        }
    }

    /// The failure-aware dispatch penalty of `node` at instant `t`: 2 while
    /// the node is inside a crash/freeze window, 1 inside the post-recovery
    /// cooldown *or* inside a degrade window (the straggler tier — up, but
    /// slow), 0 for a healthy node. Dispatch minimizes `(penalty,
    /// live-state score, index)`, so faulty nodes only win when every
    /// healthier node loses on the penalty tier.
    pub(crate) fn penalty(&self, node: usize, t: Cycles) -> u8 {
        let until = self.down_until[node];
        if !until.is_zero() {
            if t < until {
                return 2;
            }
            if t < until + self.cooldown {
                return 1;
            }
        }
        if t < self.degraded_until[node] {
            return 1;
        }
        0
    }

    /// Like [`FaultDriver::penalty`], also returning the instant the tier
    /// next *decays* (2 → 1 at the downtime end, 1 → 0 at the later of the
    /// cooldown end and the degrade end), or `None` for a healthy node. Tier
    /// *increases* only happen inside [`FaultDriver::pop_due`] processing —
    /// the synchronized fault instants the event-heap loop already hooks —
    /// so a dispatch index holding `(tier, expiry)` per node stays exact by
    /// re-reading at fault instants plus the returned expiries.
    pub(crate) fn penalty_with_expiry(&self, node: usize, t: Cycles) -> (u8, Option<Cycles>) {
        let tier = self.penalty(node, t);
        match tier {
            2 => (2, Some(self.down_until[node])),
            1 => {
                let until = self.down_until[node];
                let mut expiry = Cycles::ZERO;
                if !until.is_zero() && t < until + self.cooldown {
                    expiry = until + self.cooldown;
                }
                let degraded = self.degraded_until[node];
                if t < degraded {
                    expiry = expiry.max(degraded);
                }
                (1, Some(expiry))
            }
            _ => (0, None),
        }
    }

    /// The dispatch penalty of `node` for work routed *from* `source`: an
    /// unreachable destination (the `source → node` link down — a
    /// partition seen from `source`) earns tier 3, above every node-health
    /// tier, so dispatch never routes across a partition while any
    /// reachable node exists. `None` models front-end traffic that does
    /// not cross the inter-node fabric and falls back to
    /// [`FaultDriver::penalty`].
    pub(crate) fn route_penalty(&self, source: Option<usize>, node: usize, t: Cycles) -> u8 {
        if source.is_some_and(|s| !self.links.reachable(s, node, t)) {
            return 3;
        }
        self.penalty(node, t)
    }

    /// The due re-dispatch found no reachable destination (every node is
    /// across the partition from the salvage's custodian): the attempt is
    /// spent, and the salvage either waits out another backoff or is
    /// abandoned once the budget is exhausted.
    pub(crate) fn on_unreachable<C: ClusterTraceSink>(
        &mut self,
        pending: PendingRecovery,
        at: Cycles,
        trace: &RefCell<C>,
    ) {
        let id = pending.salvage.prepared.request.id;
        let attempt = pending.attempt + 1;
        if attempt > self.plan.recovery.retry_budget {
            if C::ENABLED {
                trace.borrow_mut().cluster_event(
                    at,
                    ClusterTraceEvent::Abandon {
                        task: id,
                        node: pending.from_node,
                        attempts: attempt,
                    },
                );
            }
            self.tally.abandoned.push(pending.salvage.prepared.request);
            return;
        }
        self.attempts.insert(id, attempt);
        let backoff_ms = self.plan.recovery.backoff_base_ms * f64::powi(2.0, attempt as i32 - 1);
        let due = at + self.npu.millis_to_cycles(backoff_ms);
        self.pending.push(Reverse(PendingRecovery {
            due,
            seq: self.seq,
            salvage: pending.salvage,
            attempt,
            from_node: pending.from_node,
        }));
        self.seq += 1;
    }

    /// Commits a due re-dispatch onto `to_node` at `at`: applies the
    /// recovery policy (restart-from-zero discards the cursor), logs the
    /// hop, and returns the manifest for the loop to inject.
    pub(crate) fn redispatch(
        &mut self,
        pending: PendingRecovery,
        to_node: usize,
        at: Cycles,
    ) -> SalvagedTask {
        let salvage = if self.plan.recovery.checkpoint_recovery {
            pending.salvage
        } else {
            pending.salvage.restarted_from_zero()
        };
        self.tally.recoveries += 1;
        self.tally.recovery_log.push(RecoveryRecord {
            task: salvage.prepared.request.id,
            from_node: pending.from_node,
            to_node,
            attempt: pending.attempt,
            resume_executed: salvage.resume_executed,
            at,
        });
        salvage
    }

    /// Consumes the driver into its outcome tally.
    ///
    /// # Panics
    ///
    /// Debug-asserts the timeline was fully drained (no unprocessed faults
    /// or pending re-dispatches).
    pub(crate) fn finish(self) -> FaultTally {
        debug_assert_eq!(
            self.next_fault,
            self.plan.schedule.len(),
            "fault schedule fully processed"
        );
        debug_assert!(self.pending.is_empty(), "no re-dispatch left pending");
        debug_assert!(
            self.degrade_ends.is_empty(),
            "every degrade window was closed"
        );
        debug_assert_eq!(
            self.next_link,
            self.link_edges.len(),
            "every link edge was processed"
        );
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::ModelKind;
    use prema_core::PreparedTask;

    fn null_trace() -> RefCell<crate::trace::NullClusterSink> {
        RefCell::new(crate::trace::NullClusterSink)
    }

    fn salvage_of(id: u64) -> SalvagedTask {
        let prepared = PreparedTask::prepare(
            TaskRequest::new(TaskId(id), ModelKind::CnnAlexNet),
            &NpuConfig::paper_default(),
        );
        SalvagedTask {
            prepared,
            resume_executed: Cycles::ZERO,
            checkpoint_bytes: 0,
            first_start: None,
            preemption_count: 0,
            kill_restarts: 0,
            checkpoint_overhead: Cycles::ZERO,
            restore_overhead: Cycles::ZERO,
            max_checkpoint_bytes: 0,
        }
    }

    fn crash(node: usize, start: u64, end: u64) -> NodeFault {
        NodeFault {
            node,
            start: Cycles::new(start),
            end: Cycles::new(end),
            kind: FaultKind::Crash,
        }
    }

    #[test]
    fn timeline_merges_faults_before_recoveries_on_ties() {
        let npu = NpuConfig::paper_default();
        let plan = ClusterFaultPlan::new(FaultSchedule::from_events(vec![
            crash(0, 1_000, 2_000),
            crash(1, 5_000, 6_000),
        ]))
        .with_recovery(RecoveryConfig {
            backoff_base_ms: 0.0,
            ..RecoveryConfig::checkpointed()
        });
        let mut driver = FaultDriver::new(&plan, &npu, 2);
        assert_eq!(driver.next_event_time(), Some(Cycles::new(1_000)));
        // Nothing due before the first fault.
        assert!(driver.pop_due(Cycles::new(999)).is_none());
        let Some(FaultEvent::Fault(fault)) = driver.pop_due(Cycles::new(1_000)) else {
            panic!("fault due at its start");
        };
        assert_eq!(fault.node, 0);
        // Zero backoff: the salvage is due immediately, and a fault at the
        // same instant would still pop first.
        driver.on_salvaged(0, Cycles::new(1_000), vec![salvage_of(7)], &null_trace());
        assert_eq!(driver.next_event_time(), Some(Cycles::new(1_000)));
        let Some(FaultEvent::Recovery(pending)) = driver.pop_due(Cycles::new(1_000)) else {
            panic!("recovery due at its backoff expiry");
        };
        assert_eq!(pending.attempt, 1);
        assert_eq!(pending.from_node, 0);
        let salvage = driver.redispatch(pending, 1, Cycles::new(1_000));
        assert_eq!(salvage.prepared.request.id, TaskId(7));
        let Some(FaultEvent::Fault(fault)) = driver.pop_due(Cycles::MAX) else {
            panic!("second fault still queued");
        };
        assert_eq!(fault.node, 1);
        let tally = driver.finish();
        assert_eq!(tally.crashes, 2);
        assert_eq!(tally.recoveries, 1);
        assert_eq!(tally.recovery_log.len(), 1);
        assert_eq!(tally.recovery_log[0].to_node, 1);
        assert!(tally.abandoned.is_empty());
    }

    #[test]
    fn retry_budget_abandons_and_backoff_doubles() {
        let npu = NpuConfig::paper_default();
        let plan = ClusterFaultPlan::new(FaultSchedule::none()).with_recovery(RecoveryConfig {
            retry_budget: 2,
            backoff_base_ms: 1.0,
            ..RecoveryConfig::checkpointed()
        });
        let mut driver = FaultDriver::new(&plan, &npu, 1);
        let base = npu.millis_to_cycles(1.0);
        driver.on_salvaged(0, Cycles::ZERO, vec![salvage_of(1)], &null_trace());
        assert_eq!(driver.next_event_time(), Some(base));
        let Some(FaultEvent::Recovery(first)) = driver.pop_due(base) else {
            panic!("first attempt due after one backoff base");
        };
        let _ = driver.redispatch(first, 0, base);
        // Second salvage: the backoff doubles.
        driver.on_salvaged(0, base, vec![salvage_of(1)], &null_trace());
        assert_eq!(driver.next_event_time(), Some(base + base + base));
        let Some(FaultEvent::Recovery(second)) = driver.pop_due(Cycles::MAX) else {
            panic!("second attempt queued");
        };
        assert_eq!(second.attempt, 2);
        let _ = driver.redispatch(second, 0, base + base + base);
        // Third salvage exhausts the budget of 2.
        driver.on_salvaged(0, base, vec![salvage_of(1)], &null_trace());
        assert!(driver.pending.is_empty());
        let tally = driver.finish();
        assert_eq!(tally.abandoned.len(), 1);
        assert_eq!(tally.abandoned[0].id, TaskId(1));
        assert_eq!(tally.recoveries, 2);
    }

    #[test]
    fn penalty_tiers_track_down_and_cooldown_windows() {
        let npu = NpuConfig::paper_default();
        let plan = ClusterFaultPlan::new(FaultSchedule::from_events(vec![crash(1, 100, 200)]))
            .with_recovery(RecoveryConfig {
                cooldown_ms: 1.0,
                ..RecoveryConfig::checkpointed()
            });
        let mut driver = FaultDriver::new(&plan, &npu, 2);
        // Never-faulted nodes are always healthy.
        assert_eq!(driver.penalty(0, Cycles::new(150)), 0);
        assert_eq!(driver.penalty(1, Cycles::new(50)), 0);
        let _ = driver.pop_due(Cycles::new(100));
        assert_eq!(driver.penalty(1, Cycles::new(150)), 2);
        assert_eq!(driver.penalty(1, Cycles::new(200)), 1);
        let cooldown_end = Cycles::new(200) + npu.millis_to_cycles(1.0);
        assert_eq!(driver.penalty(1, cooldown_end - Cycles::new(1)), 1);
        assert_eq!(driver.penalty(1, cooldown_end), 0);
        let _ = driver.finish();
    }

    #[test]
    fn penalty_expiries_name_the_next_tier_decay_instant() {
        let npu = NpuConfig::paper_default();
        let plan = ClusterFaultPlan::new(FaultSchedule::from_events(vec![
            crash(1, 100, 200),
            degrade(2, 100, 5_000_000, 1, 4),
        ]))
        .with_recovery(RecoveryConfig {
            cooldown_ms: 1.0,
            ..RecoveryConfig::checkpointed()
        });
        let mut driver = FaultDriver::new(&plan, &npu, 3);
        assert_eq!(driver.penalty_with_expiry(1, Cycles::new(50)), (0, None));
        while driver.pop_due(Cycles::new(100)).is_some() {}
        // Down: the expiry is the downtime end (tier 2 -> 1 there).
        assert_eq!(
            driver.penalty_with_expiry(1, Cycles::new(150)),
            (2, Some(Cycles::new(200)))
        );
        // Cooling: the expiry is the cooldown end (tier 1 -> 0 there).
        let cooldown_end = Cycles::new(200) + npu.millis_to_cycles(1.0);
        assert_eq!(
            driver.penalty_with_expiry(1, Cycles::new(200)),
            (1, Some(cooldown_end))
        );
        assert_eq!(driver.penalty_with_expiry(1, cooldown_end), (0, None));
        // Degraded: tier 1 until the degrade window ends.
        assert_eq!(
            driver.penalty_with_expiry(2, Cycles::new(150)),
            (1, Some(Cycles::new(5_000_000)))
        );
        // Every expiry agrees with re-reading `penalty` just before/after.
        for (node, expiry) in [(1, Cycles::new(200)), (1, cooldown_end)] {
            assert!(driver.penalty(node, expiry - Cycles::new(1)) > driver.penalty(node, expiry));
        }
        // Close the degrade window so the drained-timeline debug assert in
        // `finish` holds.
        while driver.pop_due(Cycles::new(5_000_000)).is_some() {}
        let _ = driver.finish();
    }

    fn degrade(node: usize, start: u64, end: u64, num: u32, den: u32) -> NodeFault {
        NodeFault {
            node,
            start: Cycles::new(start),
            end: Cycles::new(end),
            kind: FaultKind::Degrade {
                speed_num: num,
                speed_den: den,
            },
        }
    }

    #[test]
    fn degrade_windows_tally_separately_and_emit_end_events() {
        let npu = NpuConfig::paper_default();
        let plan =
            ClusterFaultPlan::new(FaultSchedule::from_events(vec![degrade(0, 100, 300, 1, 4)]));
        let mut driver = FaultDriver::new(&plan, &npu, 2);
        let Some(FaultEvent::Fault(fault)) = driver.pop_due(Cycles::new(100)) else {
            panic!("degrade window due at its start");
        };
        assert!(matches!(fault.kind, FaultKind::Degrade { .. }));
        // Straggler tier inside the window, healthy at and past its end —
        // a degrade never reaches the down tier or the cooldown.
        assert_eq!(driver.penalty(0, Cycles::new(200)), 1);
        assert_eq!(driver.penalty(0, Cycles::new(300)), 0);
        assert_eq!(driver.penalty(1, Cycles::new(200)), 0);
        // The clock-restore event closes the window.
        assert_eq!(driver.next_event_time(), Some(Cycles::new(300)));
        let Some(FaultEvent::DegradeEnd { node }) = driver.pop_due(Cycles::new(300)) else {
            panic!("degrade end due at the window end");
        };
        assert_eq!(node, 0);
        let tally = driver.finish();
        assert_eq!(tally.degrades, 1);
        assert_eq!(tally.crashes + tally.freezes, 0);
        assert_eq!(tally.node_degraded_time[0], Cycles::new(200));
        assert_eq!(tally.node_downtime[0], Cycles::ZERO);
    }

    #[test]
    fn touching_degrade_windows_restore_before_the_next_scale_applies() {
        // Half-open windows [100,200) at 1/2 and [200,300) at 1/4: at 200
        // the first window's restore must pop before the second window's
        // start, or the restore would clobber the fresh scale.
        let npu = NpuConfig::paper_default();
        let plan = ClusterFaultPlan::new(FaultSchedule::from_events(vec![
            degrade(0, 100, 200, 1, 2),
            degrade(0, 200, 300, 1, 4),
        ]));
        let mut driver = FaultDriver::new(&plan, &npu, 1);
        let Some(FaultEvent::Fault(first)) = driver.pop_due(Cycles::MAX) else {
            panic!("first degrade start");
        };
        assert_eq!(first.start, Cycles::new(100));
        let Some(FaultEvent::DegradeEnd { node: 0 }) = driver.pop_due(Cycles::MAX) else {
            panic!("restore of the first window pops before the second start");
        };
        let Some(FaultEvent::Fault(second)) = driver.pop_due(Cycles::MAX) else {
            panic!("second degrade start");
        };
        assert_eq!(second.start, Cycles::new(200));
        let Some(FaultEvent::DegradeEnd { node: 0 }) = driver.pop_due(Cycles::MAX) else {
            panic!("restore of the second window");
        };
        let tally = driver.finish();
        assert_eq!(tally.degrades, 2);
        assert_eq!(tally.node_degraded_time[0], Cycles::new(200));
    }

    #[test]
    fn restart_from_zero_discards_the_cursor_in_log_and_manifest() {
        let npu = NpuConfig::paper_default();
        let plan = ClusterFaultPlan::new(FaultSchedule::none())
            .with_recovery(RecoveryConfig::restart_from_zero());
        let mut driver = FaultDriver::new(&plan, &npu, 1);
        let mut salvage = salvage_of(3);
        salvage.resume_executed = Cycles::new(4_096);
        salvage.checkpoint_bytes = 64;
        driver.on_salvaged(0, Cycles::ZERO, vec![salvage], &null_trace());
        let Some(FaultEvent::Recovery(pending)) = driver.pop_due(Cycles::MAX) else {
            panic!("recovery queued");
        };
        let restarted = driver.redispatch(pending, 0, Cycles::new(9_999));
        assert!(!restarted.resumes_from_checkpoint());
        assert_eq!(restarted.checkpoint_bytes, 0);
        let tally = driver.finish();
        assert_eq!(tally.recovery_log[0].resume_executed, Cycles::ZERO);
    }

    #[test]
    fn validation_covers_recovery_fields() {
        assert!(RecoveryConfig::checkpointed().validate().is_ok());
        assert!(RecoveryConfig::restart_from_zero().validate().is_ok());
        let bad = [
            RecoveryConfig {
                backoff_base_ms: f64::NAN,
                ..RecoveryConfig::checkpointed()
            },
            RecoveryConfig {
                cooldown_ms: -1.0,
                ..RecoveryConfig::checkpointed()
            },
            RecoveryConfig {
                retry_budget: 64,
                ..RecoveryConfig::checkpointed()
            },
        ];
        for config in bad {
            assert!(config.validate().is_err(), "{config:?}");
        }
        let plan = ClusterFaultPlan::new(FaultSchedule::none());
        assert!(plan.validate().is_ok());
        assert!(plan
            .with_recovery(RecoveryConfig {
                backoff_base_ms: -0.5,
                ..RecoveryConfig::checkpointed()
            })
            .validate()
            .is_err());
    }
}
