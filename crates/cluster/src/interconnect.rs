//! The priced cluster interconnect: what moving checkpointed context
//! between nodes costs, and which links can carry it at all.
//!
//! PR 6's recovery path re-dispatches salvaged tasks for free — the crash
//! already paid the data loss, and the restore DMA is priced by the
//! engine's [`npu_sim::CheckpointModel`]. Proactive *migration* is
//! different: evacuating a live task off a straggler ships its checkpoint
//! context across the cluster fabric, and whether the move beats staying
//! depends directly on how expensive that shipment is. [`InterconnectConfig`]
//! is the deliberately simple deterministic model the migration arbiter
//! prices against: every ordered node pair is a link with a fixed
//! propagation latency and a fixed bandwidth, and a transfer of `bytes`
//! costs `latency + ceil(bytes / bytes_per_cycle)` cycles. Integer
//! arithmetic only, so the bit-identity contract extends over priced
//! transfers.
//!
//! Since the partition-tolerance PR the fabric is also a *fault domain*:
//! [`LinkTopology`] overlays the uniform cost model with the
//! [`prema_workload::LinkFault`] windows of the driving's fault schedule.
//! Transfer decisions query it at decision time — a down link makes the
//! destination unreachable (rejected up front, before pricing), and a
//! degraded-bandwidth window stretches the serialization term by the
//! window's `den / num` factor. Because the schedule is known offline, a
//! transfer's *fate* is also computable at launch:
//! [`LinkTopology::first_down_within`] reports the instant a mid-flight
//! link drop would lose the payload, which the custody layer turns into a
//! deterministic timeout event on the shared cluster timeline.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use npu_sim::Cycles;
use prema_workload::faults::{FaultDomainError, InterconnectError, LinkFault, LinkFaultKind};

/// The deterministic interconnect cost model: uniform per-link latency and
/// bandwidth over all node pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// Fixed per-transfer propagation latency, in cycles. Paid once per
    /// migration regardless of size — this is the term that makes tiny
    /// checkpoints not free to move.
    pub latency_cycles: u64,
    /// Link bandwidth, in checkpoint bytes moved per cycle. The serialization
    /// term of a transfer is `ceil(bytes / bytes_per_cycle)`.
    pub bytes_per_cycle: u64,
}

impl InterconnectConfig {
    /// A paper-scale default: 2 µs-class propagation (2 000 cycles at the
    /// reproduction's 0.5 ns cycle) and 16 bytes per cycle — a PCIe-class
    /// fabric next to the NPU's local checkpoint DMA.
    pub fn paper_default() -> Self {
        InterconnectConfig {
            latency_cycles: 2_000,
            bytes_per_cycle: 16,
        }
    }

    /// The cost of moving `bytes` of checkpoint context over one healthy
    /// link: `latency + ceil(bytes / bytes_per_cycle)` cycles. The base
    /// model is uniform, so the cost depends only on the payload; link
    /// state overlays ride on top via
    /// [`LinkTopology::transfer_cycles`].
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        let serialization = bytes.div_ceil(self.bytes_per_cycle.max(1));
        Cycles::new(self.latency_cycles.saturating_add(serialization))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the violation as the fault domain's shared
    /// [`FaultDomainError`].
    pub fn validate(&self) -> Result<(), FaultDomainError> {
        if self.bytes_per_cycle == 0 {
            return Err(InterconnectError::ZeroBandwidth.into());
        }
        if self.latency_cycles == 0 {
            return Err(InterconnectError::ZeroLatency.into());
        }
        Ok(())
    }
}

/// One directed link's state at a queried instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// The link is healthy: transfers launch at nominal bandwidth.
    Up,
    /// The link is down until the given instant: no transfer can launch,
    /// and the destination is unreachable over this link.
    Down {
        /// When the outage window ends.
        until: Cycles,
    },
    /// The link's bandwidth is throttled to `num / den` of nominal until
    /// the given instant.
    Degraded {
        /// Numerator of the bandwidth fraction.
        num: u32,
        /// Denominator of the bandwidth fraction.
        den: u32,
        /// When the degraded window ends.
        until: Cycles,
    },
}

/// The per-directed-link fault overlay the transfer decisions query: the
/// driving's [`LinkFault`] windows, indexed by link and binary-searchable
/// by time. An empty topology is the perfect fabric every pre-link
/// configuration implies, and costs nothing to consult.
///
/// Windows are half-open `[start, end)`, matching the node-fault
/// convention: a transfer landing exactly at a down window's start finds
/// the link already down.
#[derive(Debug, Clone, Default)]
pub struct LinkTopology {
    /// Per directed link, that link's windows sorted by start (the
    /// schedule invariant guarantees disjointness per link).
    windows: HashMap<(usize, usize), Vec<LinkFault>>,
}

impl LinkTopology {
    /// Indexes a validated link-fault window set (canonical schedule
    /// order) by directed link.
    pub fn new(links: &[LinkFault]) -> Self {
        let mut windows: HashMap<(usize, usize), Vec<LinkFault>> = HashMap::new();
        for link in links {
            windows.entry((link.from, link.to)).or_default().push(*link);
        }
        for per_link in windows.values_mut() {
            per_link.sort_by_key(|l| l.start);
        }
        LinkTopology { windows }
    }

    /// Whether the topology carries no fault windows at all (the perfect
    /// fabric).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The state of the directed link `from -> to` at instant `t`. A
    /// node's link to itself is always [`LinkState::Up`] — local handoffs
    /// never cross the fabric.
    pub fn status(&self, from: usize, to: usize, t: Cycles) -> LinkState {
        if from == to {
            return LinkState::Up;
        }
        let Some(per_link) = self.windows.get(&(from, to)) else {
            return LinkState::Up;
        };
        // Last window with start <= t; windows per link are disjoint.
        let idx = per_link.partition_point(|w| w.start <= t);
        if idx == 0 {
            return LinkState::Up;
        }
        let window = &per_link[idx - 1];
        if t >= window.end {
            return LinkState::Up;
        }
        match window.kind {
            LinkFaultKind::Down => LinkState::Down { until: window.end },
            LinkFaultKind::Degraded {
                bandwidth_num,
                bandwidth_den,
            } => LinkState::Degraded {
                num: bandwidth_num,
                den: bandwidth_den,
                until: window.end,
            },
        }
    }

    /// Whether a transfer can *launch* from `from` to `to` at instant `t`
    /// (the link is not down). Degraded links are reachable — just slower.
    pub fn reachable(&self, from: usize, to: usize, t: Cycles) -> bool {
        !matches!(self.status(from, to, t), LinkState::Down { .. })
    }

    /// The cost of moving `bytes` from `from` to `to` launching at `t`,
    /// with the serialization term stretched by the link's degraded
    /// bandwidth if a throttle window is active at launch. Returns `None`
    /// if the link is down (the destination is unreachable — callers must
    /// reject it up front, not price it). A self-transfer costs zero: the
    /// payload never crosses the fabric.
    pub fn transfer_cycles(
        &self,
        fabric: &InterconnectConfig,
        from: usize,
        to: usize,
        bytes: u64,
        t: Cycles,
    ) -> Option<Cycles> {
        if from == to {
            return Some(Cycles::ZERO);
        }
        match self.status(from, to, t) {
            LinkState::Down { .. } => None,
            LinkState::Up => Some(fabric.transfer_cycles(bytes)),
            LinkState::Degraded { num, den, .. } => {
                // Effective bandwidth is bytes_per_cycle * num / den;
                // serialization = ceil(bytes * den / (bpc * num)). Widened
                // arithmetic so large payloads cannot overflow.
                let numer = u128::from(bytes) * u128::from(den);
                let denom = u128::from(fabric.bytes_per_cycle.max(1)) * u128::from(num.max(1));
                let serialization = u64::try_from(numer.div_ceil(denom)).unwrap_or(u64::MAX);
                Some(Cycles::new(
                    fabric.latency_cycles.saturating_add(serialization),
                ))
            }
        }
    }

    /// The first instant in `(after, until]` at which the directed link
    /// `from -> to` goes *down* — the moment a transfer launched at
    /// `after` and landing at `until` would lose its payload mid-flight.
    /// `None` if the link stays up (or merely degrades) for the whole
    /// flight.
    pub fn first_down_within(
        &self,
        from: usize,
        to: usize,
        after: Cycles,
        until: Cycles,
    ) -> Option<Cycles> {
        if from == to {
            return None;
        }
        let per_link = self.windows.get(&(from, to))?;
        per_link
            .iter()
            .filter(|w| w.kind == LinkFaultKind::Down)
            .map(|w| w.start)
            .find(|&start| start > after && start <= until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_is_latency_plus_ceil_serialization() {
        let link = InterconnectConfig {
            latency_cycles: 100,
            bytes_per_cycle: 16,
        };
        assert_eq!(link.transfer_cycles(0), Cycles::new(100));
        assert_eq!(link.transfer_cycles(1), Cycles::new(101));
        assert_eq!(link.transfer_cycles(16), Cycles::new(101));
        assert_eq!(link.transfer_cycles(17), Cycles::new(102));
        assert_eq!(link.transfer_cycles(1_024), Cycles::new(164));
    }

    #[test]
    fn validation_rejects_degenerate_links() {
        assert!(InterconnectConfig::paper_default().validate().is_ok());
        let zero_bw = InterconnectConfig {
            bytes_per_cycle: 0,
            ..InterconnectConfig::paper_default()
        };
        assert_eq!(
            zero_bw.validate(),
            Err(InterconnectError::ZeroBandwidth.into())
        );
        let zero_latency = InterconnectConfig {
            latency_cycles: 0,
            ..InterconnectConfig::paper_default()
        };
        assert_eq!(
            zero_latency.validate(),
            Err(InterconnectError::ZeroLatency.into())
        );
    }

    fn window(from: usize, to: usize, start: u64, end: u64, kind: LinkFaultKind) -> LinkFault {
        LinkFault {
            from,
            to,
            start: Cycles::new(start),
            end: Cycles::new(end),
            kind,
        }
    }

    #[test]
    fn status_windows_are_half_open_and_directed() {
        let topology = LinkTopology::new(&[
            window(0, 1, 100, 200, LinkFaultKind::Down),
            window(
                0,
                1,
                300,
                400,
                LinkFaultKind::Degraded {
                    bandwidth_num: 1,
                    bandwidth_den: 4,
                },
            ),
        ]);
        assert!(!topology.is_empty());
        assert_eq!(topology.status(0, 1, Cycles::new(99)), LinkState::Up);
        assert_eq!(
            topology.status(0, 1, Cycles::new(100)),
            LinkState::Down {
                until: Cycles::new(200)
            }
        );
        assert_eq!(
            topology.status(0, 1, Cycles::new(199)),
            LinkState::Down {
                until: Cycles::new(200)
            }
        );
        assert_eq!(topology.status(0, 1, Cycles::new(200)), LinkState::Up);
        assert_eq!(
            topology.status(0, 1, Cycles::new(350)),
            LinkState::Degraded {
                num: 1,
                den: 4,
                until: Cycles::new(400)
            }
        );
        // The reverse direction is an independent link.
        assert_eq!(topology.status(1, 0, Cycles::new(150)), LinkState::Up);
        assert!(topology.reachable(1, 0, Cycles::new(150)));
        assert!(!topology.reachable(0, 1, Cycles::new(150)));
        // Self links never fault.
        assert_eq!(topology.status(0, 0, Cycles::new(150)), LinkState::Up);
        assert!(LinkTopology::default().is_empty());
    }

    #[test]
    fn degraded_bandwidth_stretches_the_serialization_term() {
        let fabric = InterconnectConfig {
            latency_cycles: 100,
            bytes_per_cycle: 16,
        };
        let topology = LinkTopology::new(&[window(
            0,
            1,
            100,
            200,
            LinkFaultKind::Degraded {
                bandwidth_num: 1,
                bandwidth_den: 4,
            },
        )]);
        // Healthy launch: uniform price.
        assert_eq!(
            topology.transfer_cycles(&fabric, 0, 1, 1_024, Cycles::new(50)),
            Some(Cycles::new(164))
        );
        // Launch inside the throttle window: serialization x4.
        assert_eq!(
            topology.transfer_cycles(&fabric, 0, 1, 1_024, Cycles::new(150)),
            Some(Cycles::new(100 + 256))
        );
        // Self transfers never cross the fabric.
        assert_eq!(
            topology.transfer_cycles(&fabric, 1, 1, 1_024, Cycles::new(150)),
            Some(Cycles::ZERO)
        );
        // A down link prices as unreachable.
        let down = LinkTopology::new(&[window(0, 1, 100, 200, LinkFaultKind::Down)]);
        assert_eq!(
            down.transfer_cycles(&fabric, 0, 1, 1_024, Cycles::new(150)),
            None
        );
    }

    #[test]
    fn first_down_within_finds_mid_flight_drops() {
        let topology = LinkTopology::new(&[
            window(
                0,
                1,
                50,
                80,
                LinkFaultKind::Degraded {
                    bandwidth_num: 1,
                    bandwidth_den: 2,
                },
            ),
            window(0, 1, 100, 200, LinkFaultKind::Down),
        ]);
        // Degrade windows never kill a flight; the down window does.
        assert_eq!(
            topology.first_down_within(0, 1, Cycles::new(40), Cycles::new(150)),
            Some(Cycles::new(100))
        );
        // A drop exactly at the landing instant still kills it...
        assert_eq!(
            topology.first_down_within(0, 1, Cycles::new(40), Cycles::new(100)),
            Some(Cycles::new(100))
        );
        // ...but one strictly after the landing does not.
        assert_eq!(
            topology.first_down_within(0, 1, Cycles::new(40), Cycles::new(99)),
            None
        );
        // A window already open at launch is not a *mid-flight* drop (the
        // launch itself would have been rejected).
        assert_eq!(
            topology.first_down_within(0, 1, Cycles::new(100), Cycles::new(300)),
            None
        );
        assert_eq!(
            topology.first_down_within(2, 3, Cycles::new(0), Cycles::new(1_000)),
            None
        );
    }
}
