//! The priced cluster interconnect: what moving checkpointed context
//! between nodes costs.
//!
//! PR 6's recovery path re-dispatches salvaged tasks for free — the crash
//! already paid the data loss, and the restore DMA is priced by the
//! engine's [`npu_sim::CheckpointModel`]. Proactive *migration* is
//! different: evacuating a live task off a straggler ships its checkpoint
//! context across the cluster fabric, and whether the move beats staying
//! depends directly on how expensive that shipment is. [`InterconnectConfig`]
//! is the deliberately simple deterministic model the migration arbiter
//! prices against: every ordered node pair is a link with a fixed
//! propagation latency and a fixed bandwidth, and a transfer of `bytes`
//! costs `latency + ceil(bytes / bytes_per_cycle)` cycles. Integer
//! arithmetic only, so the bit-identity contract extends over priced
//! transfers.

use serde::{Deserialize, Serialize};

use npu_sim::Cycles;

/// The deterministic interconnect cost model: uniform per-link latency and
/// bandwidth over all node pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// Fixed per-transfer propagation latency, in cycles. Paid once per
    /// migration regardless of size — this is the term that makes tiny
    /// checkpoints not free to move.
    pub latency_cycles: u64,
    /// Link bandwidth, in checkpoint bytes moved per cycle. The serialization
    /// term of a transfer is `ceil(bytes / bytes_per_cycle)`.
    pub bytes_per_cycle: u64,
}

impl InterconnectConfig {
    /// A paper-scale default: 2 µs-class propagation (2 000 cycles at the
    /// reproduction's 0.5 ns cycle) and 16 bytes per cycle — a PCIe-class
    /// fabric next to the NPU's local checkpoint DMA.
    pub fn paper_default() -> Self {
        InterconnectConfig {
            latency_cycles: 2_000,
            bytes_per_cycle: 16,
        }
    }

    /// The cost of moving `bytes` of checkpoint context over one link:
    /// `latency + ceil(bytes / bytes_per_cycle)` cycles. The model is
    /// uniform, so the cost depends only on the payload, not on which pair
    /// of nodes the transfer connects.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        let serialization = bytes.div_ceil(self.bytes_per_cycle.max(1));
        Cycles::new(self.latency_cycles.saturating_add(serialization))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes_per_cycle == 0 {
            return Err("interconnect bandwidth must be at least one byte per cycle".into());
        }
        if self.latency_cycles == 0 {
            return Err(
                "interconnect latency must be at least one cycle (a zero-latency transfer \
                 would deliver a migration at its own decision instant)"
                    .into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_is_latency_plus_ceil_serialization() {
        let link = InterconnectConfig {
            latency_cycles: 100,
            bytes_per_cycle: 16,
        };
        assert_eq!(link.transfer_cycles(0), Cycles::new(100));
        assert_eq!(link.transfer_cycles(1), Cycles::new(101));
        assert_eq!(link.transfer_cycles(16), Cycles::new(101));
        assert_eq!(link.transfer_cycles(17), Cycles::new(102));
        assert_eq!(link.transfer_cycles(1_024), Cycles::new(164));
    }

    #[test]
    fn validation_rejects_degenerate_links() {
        assert!(InterconnectConfig::paper_default().validate().is_ok());
        let zero_bw = InterconnectConfig {
            bytes_per_cycle: 0,
            ..InterconnectConfig::paper_default()
        };
        assert!(zero_bw.validate().is_err());
        let zero_latency = InterconnectConfig {
            latency_cycles: 0,
            ..InterconnectConfig::paper_default()
        };
        assert!(zero_latency.validate().is_err());
    }
}
