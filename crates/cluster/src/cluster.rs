//! The multi-NPU cluster simulator: a front-end [`Dispatcher`] feeding N
//! independent [`NpuSimulator`] nodes.
//!
//! Simulation proceeds in two deterministic stages. First the requests are
//! dispatched in `(arrival, id)` order: the configured policy commits each
//! request to a node using only front-end information (the predictor
//! estimate attached to the request and the dispatcher's own ledgers).
//! Then every node runs its assigned requests through the *unmodified*
//! single-NPU engine — arrivals keep their global timestamps, so a node
//! that receives no work before time `t` simply idles until `t`. The two
//! stages never feed back: open-loop arrivals do not react to queue state,
//! and a dispatched request never migrates (its context lives in its
//! node's memory, Section IV-A).
//!
//! Node simulations are pure functions of their task lists, so the per-node
//! fan-out can run on all cores ([`ClusterConfig::parallel`]) and is
//! bit-identical to the serial path — the same contract the single-NPU
//! evaluation suite upholds, pinned by `tests/determinism.rs`.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use npu_sim::{Cycles, NpuConfig};
use prema_core::{
    NpuSimulator, PreparedTask, SchedulerConfig, SimOutcome, TaskId, TaskRecord, TaskRequest,
};
use prema_predictor::InferenceTimePredictor;
use prema_workload::prepare::prepare_requests;

use crate::dispatch::{DispatchPolicy, Dispatcher};

/// Configuration of a cluster simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of NPU nodes behind the front-end.
    pub nodes: usize,
    /// The NPU configuration every node runs (homogeneous cluster).
    pub npu: NpuConfig,
    /// The scheduler every node runs (e.g. NP-FCFS or Dynamic-PREMA).
    pub scheduler: SchedulerConfig,
    /// The front-end dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Seed of the dispatcher's RNG (only [`DispatchPolicy::Random`]
    /// consumes randomness; the other policies ignore it).
    pub dispatch_seed: u64,
    /// Whether to fan the per-node simulations out over all cores. Results
    /// are bit-identical either way.
    pub parallel: bool,
}

impl ClusterConfig {
    /// A cluster of `nodes` paper-default NPUs under the given per-node
    /// scheduler and dispatch policy.
    pub fn new(nodes: usize, scheduler: SchedulerConfig, dispatch: DispatchPolicy) -> Self {
        ClusterConfig {
            nodes,
            npu: NpuConfig::paper_default(),
            scheduler,
            dispatch,
            dispatch_seed: 0,
            parallel: true,
        }
    }

    /// Overrides the dispatcher seed.
    pub fn with_dispatch_seed(mut self, seed: u64) -> Self {
        self.dispatch_seed = seed;
        self
    }

    /// Disables the parallel node fan-out (single-threaded reference path).
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster must have at least one node".into());
        }
        self.npu.validate()?;
        self.scheduler.validate()?;
        Ok(())
    }
}

/// One front-end assignment: which node a task was dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeAssignment {
    /// The dispatched task.
    pub task: TaskId,
    /// The node index it was committed to.
    pub node: usize,
}

/// Results of one cluster simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Per-node engine outcomes, indexed by node. A node that received no
    /// work has an empty outcome.
    pub node_outcomes: Vec<SimOutcome>,
    /// The front-end's assignments, in dispatch (arrival) order.
    pub assignments: Vec<NodeAssignment>,
}

impl ClusterOutcome {
    /// Total number of served tasks across all nodes.
    pub fn task_count(&self) -> usize {
        self.node_outcomes.iter().map(|o| o.records.len()).sum()
    }

    /// Every per-task record across the cluster, in task-ID order.
    pub fn merged_records(&self) -> Vec<TaskRecord> {
        let mut records: Vec<TaskRecord> = self
            .node_outcomes
            .iter()
            .flat_map(|o| o.records.iter().copied())
            .collect();
        records.sort_by_key(|r| r.id);
        records
    }

    /// Completion time of the last task on any node.
    pub fn makespan(&self) -> Cycles {
        self.node_outcomes
            .iter()
            .map(|o| o.makespan)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Total scheduler wakeups across all nodes (the cluster's event count).
    pub fn scheduler_invocations(&self) -> u64 {
        self.node_outcomes
            .iter()
            .map(|o| o.scheduler_invocations)
            .sum()
    }

    /// The node that served `id`, if it was part of the run.
    pub fn node_of(&self, id: TaskId) -> Option<usize> {
        self.assignments
            .iter()
            .find(|a| a.task == id)
            .map(|a| a.node)
    }
}

/// An empty per-node outcome (for nodes the dispatcher sent nothing to).
fn empty_outcome() -> SimOutcome {
    SimOutcome {
        records: Vec::new(),
        makespan: Cycles::ZERO,
        scheduler_invocations: 0,
        checkpoint_preemptions: 0,
        kill_preemptions: 0,
        drain_decisions: 0,
        quanta_skipped: 0,
        replayed_token_grants: 0,
    }
}

/// The multi-NPU cluster simulator.
#[derive(Debug, Clone)]
pub struct ClusterSimulator {
    config: ClusterConfig,
}

impl ClusterSimulator {
    /// Creates a cluster simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: ClusterConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid ClusterConfig: {msg}");
        }
        ClusterSimulator { config }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Dispatches the prepared tasks across the nodes and runs every node's
    /// simulation to completion. An empty task list yields an empty outcome.
    ///
    /// # Panics
    ///
    /// Panics if task IDs are not unique across the whole cluster workload.
    pub fn run(&self, tasks: &[PreparedTask]) -> ClusterOutcome {
        let mut ids: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len(), "task IDs must be unique");

        // Dispatch in (arrival, id) order — the order a front-end sees.
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by_key(|&i| (tasks[i].request.arrival, tasks[i].request.id));
        let mut dispatcher = Dispatcher::new(
            self.config.dispatch,
            self.config.nodes,
            self.config.dispatch_seed,
        );
        let mut per_node: Vec<Vec<PreparedTask>> = vec![Vec::new(); self.config.nodes];
        let mut assignments = Vec::with_capacity(tasks.len());
        for &i in &order {
            let task = &tasks[i];
            let node = dispatcher.assign(
                task.request.arrival,
                task.estimated_cycles(),
                task.request.priority,
            );
            assignments.push(NodeAssignment {
                task: task.request.id,
                node,
            });
            per_node[node].push(task.clone());
        }

        // Every node simulation is a pure function of its task list, so the
        // fan-out order cannot affect the results; outcomes are collected in
        // node order either way.
        let simulate = |node_tasks: &Vec<PreparedTask>| -> SimOutcome {
            if node_tasks.is_empty() {
                empty_outcome()
            } else {
                NpuSimulator::new(self.config.npu.clone(), self.config.scheduler.clone())
                    .run(node_tasks)
            }
        };
        let node_outcomes: Vec<SimOutcome> =
            if self.config.parallel && rayon::current_num_threads() > 1 {
                per_node.par_iter().map(simulate).collect()
            } else {
                per_node.iter().map(simulate).collect()
            };

        ClusterOutcome {
            node_outcomes,
            assignments,
        }
    }

    /// Convenience: compiles + estimates raw requests (sharing the
    /// process-wide plan cache), then dispatches and runs them. Pass `None`
    /// as the predictor for oracle estimates.
    pub fn run_requests(
        &self,
        requests: &[TaskRequest],
        predictor: Option<&dyn InferenceTimePredictor>,
    ) -> ClusterOutcome {
        let tasks = prepare_requests(requests, &self.config.npu, predictor);
        self.run(&tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::ModelKind;
    use prema_core::Priority;
    use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn requests() -> Vec<TaskRequest> {
        let mut rng = StdRng::seed_from_u64(0xC1);
        generate_open_loop(&OpenLoopConfig::poisson(0.8, 40.0), &mut rng).requests
    }

    fn cluster(dispatch: DispatchPolicy) -> ClusterSimulator {
        ClusterSimulator::new(
            ClusterConfig::new(4, SchedulerConfig::paper_default(), dispatch)
                .with_dispatch_seed(0xD15),
        )
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let requests = requests();
        for policy in DispatchPolicy::ALL {
            let outcome = cluster(policy).run_requests(&requests, None);
            assert_eq!(outcome.task_count(), requests.len(), "{policy}");
            let records = outcome.merged_records();
            let mut expected: Vec<TaskId> = requests.iter().map(|r| r.id).collect();
            expected.sort_unstable();
            let served: Vec<TaskId> = records.iter().map(|r| r.id).collect();
            assert_eq!(served, expected, "{policy}");
            // Each record lives on the node its assignment names.
            for assignment in &outcome.assignments {
                let node = &outcome.node_outcomes[assignment.node];
                assert!(node.record(assignment.task).is_some(), "{policy}");
            }
        }
    }

    #[test]
    fn serial_and_parallel_node_fanout_are_bit_identical() {
        let requests = requests();
        for policy in DispatchPolicy::ALL {
            let parallel = cluster(policy).run_requests(&requests, None);
            let serial = ClusterSimulator::new(
                ClusterConfig::new(4, SchedulerConfig::paper_default(), policy)
                    .with_dispatch_seed(0xD15)
                    .serial(),
            )
            .run_requests(&requests, None);
            assert_eq!(parallel, serial, "{policy}");
        }
    }

    #[test]
    fn makespan_and_invocations_aggregate_over_nodes() {
        let outcome = cluster(DispatchPolicy::RoundRobin).run_requests(&requests(), None);
        let max = outcome
            .node_outcomes
            .iter()
            .map(|o| o.makespan)
            .max()
            .expect("a round-robin run over a non-empty request set has at least one node outcome");
        assert_eq!(outcome.makespan(), max);
        assert!(outcome.scheduler_invocations() > 0);
        let id = outcome.assignments[0].task;
        assert_eq!(outcome.node_of(id), Some(outcome.assignments[0].node));
        assert_eq!(outcome.node_of(TaskId(u64::MAX)), None);
    }

    #[test]
    fn idle_nodes_produce_empty_outcomes() {
        // One request on a 4-node cluster: three nodes stay idle.
        let requests =
            vec![TaskRequest::new(TaskId(0), ModelKind::CnnAlexNet).with_priority(Priority::High)];
        let outcome = cluster(DispatchPolicy::ShortestQueue).run_requests(&requests, None);
        assert_eq!(outcome.task_count(), 1);
        let empty = outcome
            .node_outcomes
            .iter()
            .filter(|o| o.records.is_empty())
            .count();
        assert_eq!(empty, 3);
    }

    #[test]
    fn empty_workload_yields_empty_outcome() {
        let outcome = cluster(DispatchPolicy::Random).run(&[]);
        assert_eq!(outcome.task_count(), 0);
        assert_eq!(outcome.makespan(), Cycles::ZERO);
        assert!(outcome.assignments.is_empty());
    }

    #[test]
    #[should_panic(expected = "task IDs must be unique")]
    fn duplicate_ids_across_the_cluster_rejected() {
        let requests = vec![
            TaskRequest::new(TaskId(3), ModelKind::CnnAlexNet),
            TaskRequest::new(TaskId(3), ModelKind::CnnMobileNet),
        ];
        let _ = cluster(DispatchPolicy::RoundRobin).run_requests(&requests, None);
    }

    #[test]
    #[should_panic(expected = "invalid ClusterConfig")]
    fn zero_node_cluster_rejected() {
        let _ = ClusterSimulator::new(ClusterConfig::new(
            0,
            SchedulerConfig::paper_default(),
            DispatchPolicy::Random,
        ));
    }
}
