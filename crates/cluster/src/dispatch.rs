//! Front-end dispatch policies: which NPU node serves an incoming request.
//!
//! The dispatcher sees each request once, at its arrival, and must commit it
//! to a node immediately (no work stealing, no migration — a request's
//! context lives in its node's memory once dispatched, Section IV-A). Its
//! only information is what a real front-end would have: the predictor's
//! isolated-time estimate for the request and its own book-keeping of what
//! it previously sent to each node. It never looks inside the node
//! simulators.
//!
//! The book-keeping is a single-server FCFS approximation per node (a
//! `NodeLedger`): each admitted request is predicted to start when the
//! node's predicted backlog drains and to run for its estimated isolated
//! time. The per-node schedulers (NP-FCFS, PREMA, ...) reorder and preempt
//! in reality, so these are *estimates* — exactly the imprecision a real
//! cluster front-end operates under.
//!
//! The closed-loop (`-live`) counterparts of the queue-depth and
//! work-based policies read real node state instead of ledgers; at scale
//! their per-arrival node choice is served by the crate-private
//! `contender` index (depth buckets / tournament trees over the same
//! scores, O(log nodes)) rather than a linear scan — see the
//! `event_heap` module.

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use npu_sim::Cycles;
use prema_core::{Priority, TaskId};

use crate::trace::{ClusterTraceEvent, ClusterTraceSink, NodeKey, NodeKeySet, NullClusterSink};

/// Which node an arriving request is sent to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Uniformly random node (seeded; the canonical "no information"
    /// baseline).
    Random,
    /// Cycle through the nodes in order, ignoring load.
    RoundRobin,
    /// Join-shortest-queue: the node with the fewest requests predicted to
    /// still be in service at the arrival instant.
    ShortestQueue,
    /// Least-work-left: the node with the smallest summed predicted
    /// remaining cycles at the arrival instant, priority-blind.
    LeastWork,
    /// Predictive: the node on which this request's *estimated completion*
    /// is earliest, accounting for what the node's preemptive scheduler
    /// will actually run first — the request is predicted to wait only for
    /// remaining work of equal-or-higher priority (it preempts or outranks
    /// the rest), then run for its own predicted isolated time. This is
    /// PREMA's predictor-plus-priority reasoning (Algorithm 2's token
    /// ordering, Section V-C) lifted to cluster scope.
    Predictive,
}

impl DispatchPolicy {
    /// Every dispatch policy, in the order the cluster sweep reports them.
    pub const ALL: [DispatchPolicy; 5] = [
        DispatchPolicy::Random,
        DispatchPolicy::RoundRobin,
        DispatchPolicy::ShortestQueue,
        DispatchPolicy::LeastWork,
        DispatchPolicy::Predictive,
    ];

    /// A short stable label for reports and baselines.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::Random => "random",
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::ShortestQueue => "jsq",
            DispatchPolicy::LeastWork => "least-work",
            DispatchPolicy::Predictive => "predictive",
        }
    }

    /// Whether the policy consumes the predictor's isolated-time estimates
    /// (queue counts alone do not need them).
    pub fn uses_predictor(self) -> bool {
        matches!(self, DispatchPolicy::LeastWork | DispatchPolicy::Predictive)
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One admitted request in a node's front-end ledger.
#[derive(Debug, Clone, Copy)]
struct LedgerEntry {
    /// Predicted completion under the FCFS single-server approximation.
    completion: Cycles,
    /// The request's predicted isolated execution time.
    estimate: Cycles,
    /// The request's priority.
    priority: Priority,
}

/// The front-end's single-server FCFS approximation of one node's state.
#[derive(Debug, Clone, Default)]
struct NodeLedger {
    /// Every admitted request that may still be in service; drained entries
    /// are pruned as arrivals advance.
    entries: Vec<LedgerEntry>,
    /// Predicted time at which the node's backlog drains.
    free_at: Cycles,
}

impl NodeLedger {
    /// Drops entries predicted to have completed by `now`.
    ///
    /// Every read below assumes this ran with the same `now` first (the
    /// dispatcher prunes all ledgers at each arrival), so the remaining
    /// entries all satisfy `completion > now` and the reads need no
    /// liveness re-filtering of their own.
    fn prune(&mut self, now: Cycles) {
        self.entries.retain(|entry| entry.completion > now);
    }

    /// Requests predicted to still be queued or in service at `now`.
    fn queued_at(&self) -> usize {
        self.entries.len()
    }

    /// Summed predicted remaining cycles at `now`: a not-yet-started request
    /// contributes its full estimate, an in-service one its remaining part.
    fn work_left_at(&self, now: Cycles) -> Cycles {
        self.entries
            .iter()
            .map(|entry| (entry.completion - now).min(entry.estimate))
            .sum()
    }

    /// Predicted remaining cycles of work an arriving request of `priority`
    /// is expected to wait for on a preemptive node: only entries of
    /// equal-or-higher priority — the request preempts or outranks the
    /// lower-priority rest.
    fn blocking_work_at(&self, now: Cycles, priority: Priority) -> Cycles {
        self.entries
            .iter()
            .filter(|entry| entry.priority >= priority)
            .map(|entry| (entry.completion - now).min(entry.estimate))
            .sum()
    }

    /// Predicted completion of a request arriving at `arrival` under the
    /// priority-aware model: wait out the blocking (equal-or-higher
    /// priority) work, then run for `estimate`.
    fn predicted_completion(
        &self,
        arrival: Cycles,
        estimate: Cycles,
        priority: Priority,
    ) -> Cycles {
        arrival + self.blocking_work_at(arrival, priority) + estimate
    }

    /// Records an admitted request in the ledger.
    fn admit(&mut self, arrival: Cycles, estimate: Cycles, priority: Priority) {
        let completion = self.free_at.max(arrival) + estimate;
        self.free_at = completion;
        self.entries.push(LedgerEntry {
            completion,
            estimate,
            priority,
        });
    }
}

/// The cluster front-end: assigns arriving requests to nodes under one
/// [`DispatchPolicy`], maintaining its per-node prediction ledgers.
///
/// Fully deterministic: the only randomness is the seeded RNG behind
/// [`DispatchPolicy::Random`].
#[derive(Debug)]
pub struct Dispatcher {
    policy: DispatchPolicy,
    ledgers: Vec<NodeLedger>,
    rr_cursor: usize,
    rng: StdRng,
}

impl Dispatcher {
    /// Creates a dispatcher over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(policy: DispatchPolicy, nodes: usize, seed: u64) -> Self {
        assert!(nodes > 0, "at least one node is required");
        Dispatcher {
            policy,
            ledgers: vec![NodeLedger::default(); nodes],
            rr_cursor: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.ledgers.len()
    }

    /// Picks the node for a request arriving at `arrival` with predicted
    /// isolated time `estimate` and the given `priority`, and records the
    /// assignment in the front-end ledger. Requests must be offered in
    /// non-decreasing arrival order. Load-based policies break ties toward
    /// the lowest node index.
    pub fn assign(&mut self, arrival: Cycles, estimate: Cycles, priority: Priority) -> usize {
        self.assign_with(
            TaskId(u64::MAX),
            arrival,
            estimate,
            priority,
            &RefCell::new(NullClusterSink),
        )
    }

    /// [`Dispatcher::assign`] with a [`ClusterTraceSink`] attached: the
    /// decision is recorded as a [`ClusterTraceEvent::DispatchDecision`]
    /// carrying `task` and, for the load-based policies, the per-node
    /// front-end ledger scores actually compared (the stateless policies —
    /// random, round-robin — record an empty key set). The sink only
    /// observes: the chosen node is identical to [`Dispatcher::assign`]'s.
    pub fn assign_with<C: ClusterTraceSink>(
        &mut self,
        task: TaskId,
        arrival: Cycles,
        estimate: Cycles,
        priority: Priority,
        trace: &RefCell<C>,
    ) -> usize {
        for ledger in &mut self.ledgers {
            ledger.prune(arrival);
        }
        let score = |ledger: &NodeLedger| -> Option<(u64, u64)> {
            let work = ledger.work_left_at(arrival).get();
            match self.policy {
                DispatchPolicy::Random | DispatchPolicy::RoundRobin => None,
                DispatchPolicy::ShortestQueue => Some((ledger.queued_at() as u64, work)),
                DispatchPolicy::LeastWork => Some((work, work)),
                DispatchPolicy::Predictive => Some((
                    ledger
                        .predicted_completion(arrival, estimate, priority)
                        .get(),
                    work,
                )),
            }
        };
        let node = match self.policy {
            DispatchPolicy::Random => self.rng.gen_range(0..self.ledgers.len()),
            DispatchPolicy::RoundRobin => {
                let node = self.rr_cursor % self.ledgers.len();
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                node
            }
            DispatchPolicy::ShortestQueue => self.argmin(|ledger| ledger.queued_at() as u64),
            DispatchPolicy::LeastWork => self.argmin(|ledger| ledger.work_left_at(arrival).get()),
            DispatchPolicy::Predictive => self.argmin(|ledger| {
                ledger
                    .predicted_completion(arrival, estimate, priority)
                    .get()
            }),
        };
        if C::ENABLED {
            let mut keys = NodeKeySet::default();
            for (index, ledger) in self.ledgers.iter().enumerate() {
                if let Some(key) = score(ledger) {
                    keys.push(NodeKey {
                        node: index,
                        penalty: 0,
                        key,
                        lower_bounded: false,
                    });
                }
            }
            trace.borrow_mut().cluster_event(
                arrival,
                ClusterTraceEvent::DispatchDecision {
                    task,
                    chosen: node,
                    keys,
                },
            );
        }
        self.ledgers[node].admit(arrival, estimate, priority);
        node
    }

    fn argmin(&self, score: impl Fn(&NodeLedger) -> u64) -> usize {
        self.ledgers
            .iter()
            .enumerate()
            .min_by_key(|(index, ledger)| (score(ledger), *index))
            .expect("at least one node")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycles(v: u64) -> Cycles {
        Cycles::new(v)
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let mut labels: Vec<_> = DispatchPolicy::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), DispatchPolicy::ALL.len());
        assert_eq!(DispatchPolicy::Predictive.to_string(), "predictive");
        assert!(DispatchPolicy::Predictive.uses_predictor());
        assert!(!DispatchPolicy::ShortestQueue.uses_predictor());
    }

    #[test]
    fn round_robin_cycles_through_nodes() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::RoundRobin, 3, 0);
        let picks: Vec<usize> = (0..7)
            .map(|i| dispatcher.assign(cycles(i), cycles(100), Priority::Medium))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn shortest_queue_prefers_the_empty_node() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::ShortestQueue, 2, 0);
        let assign = |d: &mut Dispatcher, t: u64, est: u64| {
            d.assign(cycles(t), cycles(est), Priority::Medium)
        };
        // Two long requests land on nodes 0 and 1; the third goes wherever
        // fewer are queued (tie -> node 0), the fourth to the other.
        assert_eq!(assign(&mut dispatcher, 0, 1_000_000), 0);
        assert_eq!(assign(&mut dispatcher, 0, 1_000_000), 1);
        assert_eq!(assign(&mut dispatcher, 10, 1_000_000), 0);
        assert_eq!(assign(&mut dispatcher, 10, 1_000_000), 1);
        // Once node 0's backlog is predicted drained, it is empty again.
        assert_eq!(assign(&mut dispatcher, 3_000_000, 10), 0);
    }

    #[test]
    fn least_work_accounts_for_request_sizes() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::LeastWork, 2, 0);
        let assign =
            |d: &mut Dispatcher, est: u64| d.assign(cycles(0), cycles(est), Priority::Medium);
        // One huge request on node 0; three small ones should all pick node 1
        // even though its queue is longer.
        assert_eq!(assign(&mut dispatcher, 9_000_000), 0);
        assert_eq!(assign(&mut dispatcher, 1_000_000), 1);
        assert_eq!(assign(&mut dispatcher, 1_000_000), 1);
        assert_eq!(assign(&mut dispatcher, 1_000_000), 1);
    }

    #[test]
    fn predictive_minimizes_estimated_completion() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::Predictive, 2, 0);
        let assign = |d: &mut Dispatcher, t: u64, est: u64| {
            d.assign(cycles(t), cycles(est), Priority::Medium)
        };
        assert_eq!(assign(&mut dispatcher, 0, 500), 0);
        // Node 0 is predicted busy until 500; node 1 finishes this one sooner.
        assert_eq!(assign(&mut dispatcher, 100, 500), 1);
        // Both predicted free before 2000: tie on completion -> node 0.
        assert_eq!(assign(&mut dispatcher, 2_000, 500), 0);
    }

    #[test]
    fn predictive_lets_high_priority_requests_ignore_low_priority_backlog() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::Predictive, 2, 0);
        // A big low-priority job lands on node 0.
        assert_eq!(
            dispatcher.assign(cycles(0), cycles(10_000), Priority::Low),
            0
        );
        // A high-priority request preempts low-priority work, so busy node 0
        // is predicted no worse than idle node 1 — the tie-break keeps it
        // on node 0 (least-work would flee to node 1, see below).
        assert_eq!(
            dispatcher.assign(cycles(0), cycles(2_000), Priority::High),
            0
        );
        // The next high-priority request does wait behind its high-priority
        // peer on node 0, so idle node 1 wins.
        assert_eq!(
            dispatcher.assign(cycles(10), cycles(500), Priority::High),
            1
        );
        // A low-priority request waits behind everything; node 1's short
        // backlog beats node 0's.
        assert_eq!(dispatcher.assign(cycles(20), cycles(500), Priority::Low), 1);

        // Priority-blind least-work flees the big low-priority job
        // immediately — the behavioural difference the predictive policy
        // exists for.
        let mut blind = Dispatcher::new(DispatchPolicy::LeastWork, 2, 0);
        assert_eq!(blind.assign(cycles(0), cycles(10_000), Priority::Low), 0);
        assert_eq!(blind.assign(cycles(0), cycles(2_000), Priority::High), 1);
    }

    #[test]
    fn work_left_counts_remaining_not_total_cycles() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::LeastWork, 2, 0);
        let assign = |d: &mut Dispatcher, t: u64, est: u64| {
            d.assign(cycles(t), cycles(est), Priority::Medium)
        };
        // Node 0 gets a 1000-cycle request at t=0; by t=900 only ~100 cycles
        // remain, so it beats node 1 holding a fresh 200-cycle request.
        assert_eq!(assign(&mut dispatcher, 0, 1_000), 0);
        assert_eq!(assign(&mut dispatcher, 890, 200), 1);
        assert_eq!(assign(&mut dispatcher, 900, 50), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_covers_nodes() {
        let picks = |seed: u64| -> Vec<usize> {
            let mut dispatcher = Dispatcher::new(DispatchPolicy::Random, 4, seed);
            (0..64)
                .map(|i| dispatcher.assign(cycles(i), cycles(100), Priority::Medium))
                .collect()
        };
        assert_eq!(picks(42), picks(42));
        assert_ne!(picks(42), picks(43));
        let seen = picks(42);
        for node in 0..4 {
            assert!(seen.contains(&node), "node {node} never picked");
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Dispatcher::new(DispatchPolicy::Random, 0, 0);
    }
}
