//! Deadline-triggered checkpoint migration: evacuating started tasks off
//! straggler nodes over the priced interconnect — and the *custody layer*
//! that makes those transfers survive a faulty fabric.
//!
//! PR 6's fault tolerance reacts to nodes that *die*; this module reacts to
//! nodes that merely *slow down* (the degrade windows of
//! [`prema_workload::FaultKind::Degrade`]). Work stealing cannot help a
//! straggler's started tasks — stealing moves only never-started work — but
//! the engine's checkpoint machinery can:
//! [`prema_core::SimSession::checkpoint_out`] extracts a started resident
//! at its last `GEMM_OP` commit point, the voluntary twin of crash salvage,
//! and [`prema_core::SimSession::inject_salvaged`] restores it elsewhere
//! for exactly the restore-DMA price the paper's CHECKPOINT mechanism
//! defines.
//!
//! The crate-private `MigrationDriver` is — like the fault driver — one
//! shared decision machine both closed-loop drivers consume, so the
//! heap-vs-reference bit-identity contract extends over migration by
//! construction. (Migration is a *synchronized* mechanism: with it
//! enabled the event-heap loop steps all nodes to each decision instant
//! and the crate-private `contender` dispatch index stays unbuilt —
//! every migration round reads every node anyway.) At every global
//! synchronization instant it runs a *migration round*:
//!
//! 1. **Deadline check.** Per source node, residents are walked in the
//!    preemptive scheduler's drain order (priority, then arrival, then id);
//!    each task's predicted completion is the node clock plus the
//!    *clock-scaled* wall time of the backlog at or ahead of it. The first
//!    started task whose prediction slips past `arrival + sla + margin` is
//!    the evacuation candidate.
//! 2. **Stay-vs-move pricing.** Staying costs the scaled wall time of the
//!    candidate's backlog on the straggler. Moving to a target costs the
//!    interconnect transfer of its `live_checkpoint_bytes` — priced over
//!    the *current link state* by [`crate::LinkTopology::transfer_cycles`],
//!    so a degraded link stretches the serialization term and a downed or
//!    partitioned link removes the target from consideration entirely —
//!    plus the restore DMA ([`npu_sim::CheckpointModel`]), plus the scaled
//!    wall time of the target's blocking work ahead of the newcomer. The
//!    cheapest reachable healthy target wins, ties to the lowest index.
//! 3. **Hysteresis and budget.** The move must beat staying by the
//!    configured hysteresis factor, and each source node may initiate at
//!    most `node_budget` evacuations per run — together these prevent
//!    migration thrash when every node is slow.
//!
//! A decided migration extracts the task immediately and schedules its
//! *delivery* (`decision instant + transfer time`) on an in-flight heap;
//! the loops treat deliveries as arrival events at the destination, global
//! synchronization points exactly like fault instants.
//!
//! # Custody: lossy transfers, timeouts, redirects
//!
//! With a [`CustodyConfig`] attached, a transfer is no longer assumed to
//! land. Each attempt carries a delivery deadline; its *fate* is resolved
//! against the offline link schedule at launch:
//!
//! * the carrying link drops mid-flight → the attempt **fails** at the
//!   drop instant ([`crate::trace::TransferFailReason::LinkDown`]);
//! * the landing would slip past `launch + delivery_timeout_ms` → the
//!   attempt **fails** at the deadline (`Timeout`);
//! * the destination is down when the payload arrives → the attempt
//!   **fails** at the landing instant (`DestinationDown`).
//!
//! The source node retains custody of the checkpoint between attempts. A
//! failed attempt `k` within the [`RecoveryConfig`] retry budget schedules
//! a *redirect* after `backoff_base_ms * 2^(k-1)`: at the redirect instant
//! the task is re-priced and re-routed to the cheapest reachable healthy
//! node (the custodian itself is a zero-transfer candidate). An exhausted
//! budget abandons the task with full accounting. A crate-private
//! `CustodyLedger` asserts exactly-once ownership — every task the
//! migration layer ever took custody of is exactly one of resident,
//! in-flight, or abandoned — at every synchronization instant, and
//! end-of-run reconciliation (`MigrationDriver::finish`) surfaces any
//! still-in-flight task as a typed [`CustodyError`] instead of silently
//! dropping it.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use npu_sim::{CheckpointModel, Cycles, NpuConfig};
use prema_core::{ResidentTask, SalvagedTask, SimSession, TaskId, TaskRequest, TraceSink};
use prema_workload::LinkFault;

use crate::faults::{FaultDriver, RecoveryConfig};
use crate::interconnect::{InterconnectConfig, LinkTopology};
use crate::trace::{ClusterTraceEvent, ClusterTraceSink, TransferFailReason};

/// Configuration of the transfer-custody layer: delivery deadlines and the
/// retry/backoff policy applied when an in-flight transfer fails.
///
/// Reuses [`RecoveryConfig`] for the retry budget and exponential backoff
/// base so transfer redirects and crash re-dispatches speak one policy
/// vocabulary (`cooldown_ms` and `checkpoint_recovery` do not apply to
/// transfers and are ignored here).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CustodyConfig {
    /// Delivery deadline of one transfer attempt, in milliseconds past its
    /// launch: an attempt whose landing would slip past this times out.
    pub delivery_timeout_ms: f64,
    /// The retry budget and backoff base governing failed attempts.
    pub recovery: RecoveryConfig,
}

impl CustodyConfig {
    /// The redirect-with-backoff policy: a 4 ms delivery deadline and the
    /// checkpointed recovery defaults (three retries, 0.5 ms backoff base).
    pub fn redirect() -> Self {
        CustodyConfig {
            delivery_timeout_ms: 4.0,
            recovery: RecoveryConfig::checkpointed(),
        }
    }

    /// The abandon-on-failure baseline: identical deadline, zero retries —
    /// the first failed attempt abandons the task.
    pub fn abandon_on_failure() -> Self {
        CustodyConfig {
            recovery: RecoveryConfig {
                retry_budget: 0,
                ..RecoveryConfig::checkpointed()
            },
            ..CustodyConfig::redirect()
        }
    }

    /// Replaces the delivery deadline.
    pub fn with_timeout_ms(mut self, delivery_timeout_ms: f64) -> Self {
        self.delivery_timeout_ms = delivery_timeout_ms;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.delivery_timeout_ms.is_finite() || self.delivery_timeout_ms <= 0.0 {
            return Err("custody delivery timeout must be positive and finite".into());
        }
        self.recovery.validate()
    }
}

/// The typed end-of-run custody reconciliation failure: tasks the
/// migration layer still held in flight when the run ended. Surfaced in
/// [`crate::OnlineOutcome::custody_error`] — a run that loses a task
/// reports it instead of silently dropping it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CustodyError {
    /// The tasks still in flight (or holding a backoff) at end of run,
    /// sorted by id.
    pub undelivered: Vec<TaskId>,
}

impl fmt::Display for CustodyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "custody reconciliation failed: {} task(s) still in flight at end of run:",
            self.undelivered.len()
        )?;
        for task in &self.undelivered {
            write!(f, " #{}", task.0)?;
        }
        Ok(())
    }
}

impl std::error::Error for CustodyError {}

/// Configuration of deadline-triggered checkpoint migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// The per-task turnaround SLA, in milliseconds: each task's deadline is
    /// its arrival plus this (plus the margin).
    pub sla_ms: f64,
    /// Slack past the SLA before the arbiter reacts, in milliseconds — a
    /// prediction has to slip *this far* beyond the target to trigger the
    /// stay-vs-move comparison.
    pub margin_ms: f64,
    /// The move must beat staying by this factor
    /// (`move_cost * hysteresis < stay_cost`) before the task is evacuated.
    /// 1.0 migrates on any predicted win; higher values demand a clearer
    /// one.
    pub hysteresis: f64,
    /// Maximum number of evacuations each source node may initiate per run —
    /// the thrash bound.
    pub node_budget: u32,
    /// The interconnect the checkpoint context travels over.
    pub interconnect: InterconnectConfig,
    /// The transfer-custody layer. `None` models a reliable fabric: link
    /// state still prices transfers and gates destinations at decision
    /// time, but a launched transfer always lands.
    pub custody: Option<CustodyConfig>,
}

impl MigrationConfig {
    /// A migration policy answering the given SLA: half-millisecond margin,
    /// 1.25x hysteresis, eight evacuations per node, paper-default fabric,
    /// no custody layer (reliable fabric).
    pub fn new(sla_ms: f64) -> Self {
        MigrationConfig {
            sla_ms,
            margin_ms: 0.5,
            hysteresis: 1.25,
            node_budget: 8,
            interconnect: InterconnectConfig::paper_default(),
            custody: None,
        }
    }

    /// Replaces the hysteresis factor.
    pub fn with_hysteresis(mut self, hysteresis: f64) -> Self {
        self.hysteresis = hysteresis;
        self
    }

    /// Replaces the per-node evacuation budget.
    pub fn with_node_budget(mut self, node_budget: u32) -> Self {
        self.node_budget = node_budget;
        self
    }

    /// Attaches a transfer-custody layer.
    pub fn with_custody(mut self, custody: CustodyConfig) -> Self {
        self.custody = Some(custody);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.sla_ms.is_finite() || self.sla_ms <= 0.0 {
            return Err("migration SLA must be positive and finite".into());
        }
        if !self.margin_ms.is_finite() || self.margin_ms < 0.0 {
            return Err("migration margin must be non-negative and finite".into());
        }
        if !self.hysteresis.is_finite() || self.hysteresis < 1.0 {
            return Err("migration hysteresis must be at least 1.0 and finite".into());
        }
        if let Some(custody) = &self.custody {
            custody.validate()?;
        }
        self.interconnect.validate().map_err(|e| e.to_string())
    }
}

/// One completed evacuation decision — a hop in a task's migration history.
/// Logged at the *decision* instant; the task reaches its destination at
/// [`MigrationRecord::arrive_at`] (custody permitting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// The evacuated task.
    pub task: TaskId,
    /// The straggler it was extracted from.
    pub from_node: usize,
    /// The node it was shipped to.
    pub to_node: usize,
    /// The live checkpoint context that travelled, in bytes.
    pub bytes: u64,
    /// When the arbiter decided (and the checkpoint was taken).
    pub at: Cycles,
    /// When the task lands at the destination (`at` plus the interconnect
    /// transfer time).
    pub arrive_at: Cycles,
}

/// One committed transfer redirect — a failed attempt re-routed after
/// backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedirectRecord {
    /// The re-routed task.
    pub task: TaskId,
    /// The custodian the checkpoint never left.
    pub from_node: usize,
    /// The newly chosen destination.
    pub to_node: usize,
    /// The attempt number of the relaunch (2 = first redirect).
    pub attempt: u32,
    /// When the redirect was committed.
    pub at: Cycles,
}

/// What happens when an in-flight heap entry comes due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TransferEvent {
    /// The payload lands at `to_node` (custody may still fail it there if
    /// the destination is down).
    Land,
    /// The attempt fails before landing — a mid-flight link drop or a
    /// delivery timeout, resolved against the offline schedule at launch.
    Fail(TransferFailReason),
    /// A failed attempt's backoff expires: re-price and re-route now.
    Redirect,
}

/// A checkpointed task in flight over the interconnect (or held by its
/// custodian between attempts).
#[derive(Debug)]
pub(crate) struct PendingMigration {
    due: Cycles,
    /// Tie-break for identical delivery instants: decision order.
    seq: u64,
    pub(crate) salvage: SalvagedTask,
    pub(crate) to_node: usize,
    /// The custodian: the node the checkpoint was extracted from. Custody
    /// stays here until the payload lands.
    pub(crate) from_node: usize,
    /// Which transfer attempt this entry belongs to (1 = the original
    /// launch).
    pub(crate) attempt: u32,
    /// What happens at `due`.
    pub(crate) event: TransferEvent,
}

impl PartialEq for PendingMigration {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}

impl Eq for PendingMigration {}

impl PartialOrd for PendingMigration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingMigration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Everything the migration machinery contributes to an
/// [`crate::OnlineOutcome`].
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct MigrationTally {
    pub(crate) migrations: u64,
    pub(crate) migration_bytes: u64,
    pub(crate) migration_log: Vec<MigrationRecord>,
    pub(crate) transfer_failures: u64,
    pub(crate) redirects: u64,
    pub(crate) redirect_log: Vec<RedirectRecord>,
    /// Tasks abandoned after the transfer retry budget was exhausted.
    pub(crate) abandoned: Vec<TaskRequest>,
    /// Tasks still in flight at end of run — the custody reconciliation
    /// failure [`MigrationDriver::finish`] reports instead of asserting.
    pub(crate) undelivered: Vec<TaskId>,
}

/// Which exactly-one state a task under migration custody is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CustodyState {
    /// Extracted from its source; the custodian holds the checkpoint while
    /// the payload is in flight or waiting out a backoff.
    InFlight,
    /// Delivered: resident at the given node.
    Resident(usize),
    /// Given up after budget exhaustion; may never reappear.
    Abandoned,
}

/// The exactly-once ownership ledger over every task the migration layer
/// ever took custody of. Transitions are hard-asserted — a task observed
/// in two places at once (the orphan/duplicate bug class this layer
/// exists to rule out) panics rather than corrupting accounting.
#[derive(Debug, Default)]
struct CustodyLedger {
    state: HashMap<TaskId, CustodyState>,
    in_flight: u32,
    landed: u64,
    abandoned: u64,
}

impl CustodyLedger {
    /// A task leaves a node's custody into flight. Legal from fresh
    /// (first evacuation) or `Resident` (a later re-evacuation); a task
    /// already in flight or abandoned can never depart again.
    fn depart(&mut self, task: TaskId) {
        let prior = self.state.insert(task, CustodyState::InFlight);
        assert!(
            !matches!(
                prior,
                Some(CustodyState::InFlight) | Some(CustodyState::Abandoned)
            ),
            "custody violation: task #{} departed while {:?}",
            task.0,
            prior
        );
        self.in_flight += 1;
    }

    /// The payload lands: exactly one in-flight entry becomes resident.
    fn land(&mut self, task: TaskId, node: usize) {
        let prior = self.state.insert(task, CustodyState::Resident(node));
        assert_eq!(
            prior,
            Some(CustodyState::InFlight),
            "custody violation: task #{} landed while not in flight",
            task.0
        );
        self.in_flight -= 1;
        self.landed += 1;
    }

    /// The retry budget ran out: the in-flight entry is abandoned.
    fn abandon(&mut self, task: TaskId) {
        let prior = self.state.insert(task, CustodyState::Abandoned);
        assert_eq!(
            prior,
            Some(CustodyState::InFlight),
            "custody violation: task #{} abandoned while not in flight",
            task.0
        );
        self.in_flight -= 1;
        self.abandoned += 1;
    }

    /// The in-flight tasks, sorted by id — non-empty at end of run means
    /// custody reconciliation failed.
    fn undelivered(&self) -> Vec<TaskId> {
        let mut tasks: Vec<TaskId> = self
            .state
            .iter()
            .filter(|(_, state)| **state == CustodyState::InFlight)
            .map(|(task, _)| *task)
            .collect();
        tasks.sort();
        tasks
    }

    /// Cross-checks the ledger against the in-flight heap: every task in
    /// flight has exactly one pending entry, and vice versa.
    fn check(&self, pending: usize) {
        assert_eq!(
            self.in_flight as usize, pending,
            "custody violation: {} task(s) in flight but {} pending transfer entries",
            self.in_flight, pending
        );
    }
}

/// The shared migration decision machine both closed-loop drivers consume
/// (see the module docs): the deadline monitor, the stay-vs-move arbiter,
/// the in-flight transfer heap, the custody ledger and the outcome tally.
/// Every method must be called with all sessions materialized at the
/// decision instant — the loops' global synchronization points.
#[derive(Debug)]
pub(crate) struct MigrationDriver<'a> {
    config: &'a MigrationConfig,
    checkpoint: CheckpointModel,
    /// `sla + margin`, in cycles: each task's deadline is its arrival plus
    /// this.
    deadline_offset: Cycles,
    /// Per-directed-link fault windows, shared vocabulary with the fault
    /// driver; empty means a perfect fabric (uniform pricing, everything
    /// reachable).
    links: LinkTopology,
    /// The per-attempt delivery deadline, when custody is configured.
    timeout: Option<Cycles>,
    /// Transfer retry budget (attempts beyond `budget + 1` abandon).
    retry_budget: u32,
    /// `backoffs[k-1]` is the hold after failed attempt `k`, in cycles
    /// (`backoff_base_ms * 2^(k-1)`).
    backoffs: Vec<Cycles>,
    pending: BinaryHeap<Reverse<PendingMigration>>,
    seq: u64,
    budget_used: Vec<u32>,
    /// Scratch for one source node's resident scan.
    residents: Vec<ResidentTask>,
    ledger: CustodyLedger,
    tally: MigrationTally,
}

impl<'a> MigrationDriver<'a> {
    pub(crate) fn new(
        config: &'a MigrationConfig,
        npu: &NpuConfig,
        nodes: usize,
        links: &[LinkFault],
    ) -> Self {
        let (timeout, retry_budget, backoffs) = match &config.custody {
            Some(custody) => (
                Some(npu.millis_to_cycles(custody.delivery_timeout_ms)),
                custody.recovery.retry_budget,
                (1..=custody.recovery.retry_budget.max(1))
                    .map(|k| {
                        let backoff_ms =
                            custody.recovery.backoff_base_ms * f64::powi(2.0, k as i32 - 1);
                        npu.millis_to_cycles(backoff_ms)
                    })
                    .collect(),
            ),
            None => (None, 0, Vec::new()),
        };
        MigrationDriver {
            config,
            checkpoint: CheckpointModel::new(npu),
            deadline_offset: npu.millis_to_cycles(config.sla_ms + config.margin_ms),
            links: LinkTopology::new(links),
            timeout,
            retry_budget,
            backoffs,
            pending: BinaryHeap::new(),
            seq: 0,
            budget_used: vec![0; nodes],
            residents: Vec::new(),
            ledger: CustodyLedger::default(),
            tally: MigrationTally::default(),
        }
    }

    /// Whether the custody layer (timeouts, redirects, landing checks) is
    /// active. Off, link state still prices and gates transfer decisions,
    /// but a launched transfer always lands.
    pub(crate) fn custody_enabled(&self) -> bool {
        self.timeout.is_some()
    }

    /// The due instant of the earliest in-flight transfer event, if any.
    pub(crate) fn next_due(&self) -> Option<Cycles> {
        self.pending.peek().map(|Reverse(p)| p.due)
    }

    /// Pops the next transfer event due at or before `t` (the loop routes
    /// it through `deliver_due_migrations`).
    pub(crate) fn pop_due(&mut self, t: Cycles) -> Option<PendingMigration> {
        if self.next_due().is_some_and(|due| due <= t) {
            let Reverse(pending) = self.pending.pop().expect("peeked entry");
            return Some(pending);
        }
        None
    }

    /// One migration round at global instant `t` over sessions all
    /// materialized at `t`: per source node in index order, find the first
    /// deadline-blown started task in drain order, price stay-vs-move over
    /// the live link state, and (budget and hysteresis permitting) extract
    /// it and put it in flight. At most one evacuation per source per
    /// round. Closes with the custody reconciliation check.
    ///
    /// The trace sink is borrowed only *between* session calls — the
    /// sessions' own taps borrow the same cell from inside `checkpoint_out`.
    pub(crate) fn round<S: TraceSink, C: ClusterTraceSink>(
        &mut self,
        sessions: &mut [SimSession<S>],
        t: Cycles,
        trace: &RefCell<C>,
    ) {
        for from in 0..sessions.len() {
            if sessions[from].stalled_until().is_some()
                || self.budget_used[from] >= self.config.node_budget
            {
                continue;
            }
            let Some((id, priority, remaining, stay)) = self.deadline_candidate(&sessions[from])
            else {
                continue;
            };
            let (_, bytes) = sessions[from]
                .checkpoint_preview(id)
                .expect("a started resident is checkpointable");
            let restore = self.checkpoint.restore_cycles(bytes);
            // The cheapest reachable healthy target: link-state-priced
            // transfer + restore + the scaled wall time of the work that
            // outranks the newcomer there. Downed or partitioned links
            // reject the destination up front. Ties break to the lowest
            // index.
            let mut best: Option<(Cycles, usize, Cycles)> = None;
            for (to, target) in sessions.iter().enumerate() {
                if to == from || target.stalled_until().is_some() {
                    continue;
                }
                let Some(transfer) =
                    self.links
                        .transfer_cycles(&self.config.interconnect, from, to, bytes, t)
                else {
                    continue;
                };
                let queue = target.predicted_blocking_work(priority) + remaining;
                let move_cost = transfer + restore + target.scaled_wall_for_work(queue);
                if best.is_none_or(|(cost, _, _)| move_cost < cost) {
                    best = Some((move_cost, to, transfer));
                }
            }
            let Some((move_cost, to, transfer)) = best else {
                continue;
            };
            if move_cost.get() as f64 * self.config.hysteresis >= stay.get() as f64 {
                continue;
            }
            let salvage = sessions[from]
                .checkpoint_out(id)
                .expect("the previewed task is still checkpointable");
            self.budget_used[from] += 1;
            let due = t + transfer;
            self.tally.migrations += 1;
            self.tally.migration_bytes += bytes;
            self.tally.migration_log.push(MigrationRecord {
                task: id,
                from_node: from,
                to_node: to,
                bytes,
                at: t,
                arrive_at: due,
            });
            if C::ENABLED {
                trace.borrow_mut().cluster_event(
                    t,
                    ClusterTraceEvent::MigrationOut {
                        task: id,
                        from,
                        to,
                        bytes,
                        stay_cost: stay,
                        move_cost,
                        arrive_at: due,
                    },
                );
            }
            self.ledger.depart(id);
            self.launch(salvage, from, to, 1, transfer, t);
        }
        self.ledger.check(self.pending.len());
        if C::ENABLED && self.custody_enabled() {
            trace.borrow_mut().cluster_event(
                t,
                ClusterTraceEvent::CustodyCheck {
                    in_flight: self.ledger.in_flight,
                    landed: self.ledger.landed,
                    abandoned: self.ledger.abandoned,
                },
            );
        }
    }

    /// The deadline monitor over one source node: walks residents in drain
    /// order accumulating the backlog; the first *started* task whose
    /// clock-scaled predicted completion slips past `arrival + sla + margin`
    /// is the candidate. Returns `(id, priority, estimated remaining, stay
    /// cost)` — the stay cost is the scaled wall time of everything at or
    /// ahead of the candidate.
    fn deadline_candidate<S: TraceSink>(
        &mut self,
        session: &SimSession<S>,
    ) -> Option<(TaskId, prema_core::Priority, Cycles, Cycles)> {
        self.residents.clear();
        session.resident_tasks_into(&mut self.residents);
        self.residents
            .sort_by_key(|r| (Reverse(r.priority), r.arrival, r.id));
        let now = session.now();
        let mut backlog = Cycles::ZERO;
        for resident in &self.residents {
            backlog += resident.estimated_remaining();
            if !resident.started {
                continue;
            }
            let stay = session.scaled_wall_for_work(backlog);
            if now + stay > resident.arrival + self.deadline_offset {
                return Some((
                    resident.id,
                    resident.priority,
                    resident.estimated_remaining(),
                    stay,
                ));
            }
        }
        None
    }

    /// Puts one attempt in flight, resolving its fate against the offline
    /// link schedule: a mid-flight link drop fails it at the drop instant,
    /// a landing past the delivery deadline fails it at the deadline,
    /// otherwise it lands at `t + transfer`. Without custody the fabric is
    /// reliable and every launch lands.
    fn launch(
        &mut self,
        salvage: SalvagedTask,
        from: usize,
        to: usize,
        attempt: u32,
        transfer: Cycles,
        t: Cycles,
    ) {
        let arrive = t + transfer;
        let (due, event) = match self.timeout {
            Some(timeout) => {
                let deadline = t + timeout;
                let horizon = arrive.min(deadline);
                if let Some(drop_at) = self.links.first_down_within(from, to, t, horizon) {
                    (drop_at, TransferEvent::Fail(TransferFailReason::LinkDown))
                } else if arrive > deadline {
                    (deadline, TransferEvent::Fail(TransferFailReason::Timeout))
                } else {
                    (arrive, TransferEvent::Land)
                }
            }
            None => (arrive, TransferEvent::Land),
        };
        self.pending.push(Reverse(PendingMigration {
            due,
            seq: self.seq,
            salvage,
            to_node: to,
            from_node: from,
            attempt,
            event,
        }));
        self.seq += 1;
    }

    /// Books a successful delivery: the ledger's in-flight entry becomes
    /// resident at `node`.
    pub(crate) fn on_landed(&mut self, task: TaskId, node: usize) {
        self.ledger.land(task, node);
    }

    /// Handles one failed attempt at `t`: accounts the failure, then
    /// either schedules a redirect after exponential backoff or abandons
    /// the task once the retry budget is exhausted.
    pub(crate) fn on_transfer_failed<C: ClusterTraceSink>(
        &mut self,
        pending: PendingMigration,
        reason: TransferFailReason,
        t: Cycles,
        trace: &RefCell<C>,
    ) {
        self.tally.transfer_failures += 1;
        if C::ENABLED {
            trace.borrow_mut().cluster_event(
                t,
                ClusterTraceEvent::TransferTimeout {
                    task: pending.salvage.prepared.request.id,
                    from: pending.from_node,
                    to: pending.to_node,
                    attempt: pending.attempt,
                    reason,
                },
            );
        }
        self.schedule_retry(pending, t, trace);
    }

    /// After failed attempt `k`: within budget, hold the checkpoint for
    /// `backoff_base * 2^(k-1)` and then redirect; beyond it, abandon with
    /// full accounting.
    fn schedule_retry<C: ClusterTraceSink>(
        &mut self,
        pending: PendingMigration,
        t: Cycles,
        trace: &RefCell<C>,
    ) {
        let task = pending.salvage.prepared.request.id;
        if pending.attempt > self.retry_budget {
            self.ledger.abandon(task);
            if C::ENABLED {
                trace.borrow_mut().cluster_event(
                    t,
                    ClusterTraceEvent::Abandon {
                        task,
                        node: pending.from_node,
                        attempts: pending.attempt,
                    },
                );
            }
            self.tally.abandoned.push(pending.salvage.prepared.request);
            return;
        }
        let due = t + self.backoffs[(pending.attempt - 1) as usize];
        self.pending.push(Reverse(PendingMigration {
            due,
            seq: self.seq,
            salvage: pending.salvage,
            to_node: pending.to_node,
            from_node: pending.from_node,
            attempt: pending.attempt,
            event: TransferEvent::Redirect,
        }));
        self.seq += 1;
    }

    /// A due redirect: re-price the held checkpoint against the live link
    /// and node state and relaunch it toward the cheapest reachable
    /// healthy destination (the custodian itself is a zero-transfer
    /// candidate). If nothing is reachable the attempt is spent waiting
    /// out another backoff.
    pub(crate) fn redirect<S: TraceSink, C: ClusterTraceSink>(
        &mut self,
        pending: PendingMigration,
        sessions: &[SimSession<S>],
        faults: Option<&FaultDriver<'_>>,
        t: Cycles,
        trace: &RefCell<C>,
    ) {
        let from = pending.from_node;
        let task = pending.salvage.prepared.request.id;
        let priority = pending.salvage.prepared.request.priority;
        let bytes = pending.salvage.checkpoint_bytes;
        let restore = self.checkpoint.restore_cycles(bytes);
        let mut best: Option<(Cycles, usize, Cycles)> = None;
        for (to, target) in sessions.iter().enumerate() {
            if target.stalled_until().is_some() || faults.is_some_and(|f| f.is_down(to, t)) {
                continue;
            }
            let Some(transfer) =
                self.links
                    .transfer_cycles(&self.config.interconnect, from, to, bytes, t)
            else {
                continue;
            };
            let cost = transfer
                + restore
                + target.scaled_wall_for_work(target.predicted_blocking_work(priority));
            if best.is_none_or(|(c, _, _)| cost < c) {
                best = Some((cost, to, transfer));
            }
        }
        match best {
            Some((_, to, transfer)) => {
                let attempt = pending.attempt + 1;
                self.tally.redirects += 1;
                self.tally.redirect_log.push(RedirectRecord {
                    task,
                    from_node: from,
                    to_node: to,
                    attempt,
                    at: t,
                });
                if C::ENABLED {
                    trace.borrow_mut().cluster_event(
                        t,
                        ClusterTraceEvent::Redirect {
                            task,
                            from,
                            to,
                            attempt,
                        },
                    );
                }
                self.launch(pending.salvage, from, to, attempt, transfer, t);
            }
            None => {
                let spent = PendingMigration {
                    attempt: pending.attempt + 1,
                    ..pending
                };
                self.on_transfer_failed(spent, TransferFailReason::NoRoute, t, trace);
            }
        }
    }

    /// Consumes the driver into its outcome tally, reconciling custody:
    /// any task still in flight is reported as `undelivered` (surfaced as
    /// [`CustodyError`] in the outcome) instead of silently dropped.
    pub(crate) fn finish(mut self) -> MigrationTally {
        let mut undelivered: Vec<TaskId> = self
            .pending
            .into_iter()
            .map(|Reverse(p)| p.salvage.prepared.request.id)
            .collect();
        undelivered.sort();
        assert_eq!(
            undelivered,
            self.ledger.undelivered(),
            "custody violation: the in-flight heap and ledger disagree at end of run"
        );
        self.tally.undelivered = undelivered;
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn salvage_for(npu: &NpuConfig, id: u64) -> SalvagedTask {
        use dnn_models::ModelKind;
        use prema_core::{PreparedTask, TaskRequest};
        SalvagedTask {
            prepared: PreparedTask::prepare(
                TaskRequest::new(TaskId(id), ModelKind::CnnAlexNet),
                npu,
            ),
            resume_executed: Cycles::ZERO,
            checkpoint_bytes: 0,
            first_start: None,
            preemption_count: 0,
            kill_restarts: 0,
            checkpoint_overhead: Cycles::ZERO,
            restore_overhead: Cycles::ZERO,
            max_checkpoint_bytes: 0,
        }
    }

    #[test]
    fn validation_covers_every_field() {
        assert!(MigrationConfig::new(8.0).validate().is_ok());
        let bad = [
            MigrationConfig {
                sla_ms: 0.0,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                sla_ms: f64::NAN,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                margin_ms: -0.1,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                hysteresis: 0.9,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                hysteresis: f64::INFINITY,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                interconnect: InterconnectConfig {
                    bytes_per_cycle: 0,
                    ..InterconnectConfig::paper_default()
                },
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig::new(8.0).with_custody(CustodyConfig::redirect().with_timeout_ms(0.0)),
            MigrationConfig::new(8.0).with_custody(CustodyConfig {
                recovery: RecoveryConfig {
                    backoff_base_ms: f64::NAN,
                    ..RecoveryConfig::checkpointed()
                },
                ..CustodyConfig::redirect()
            }),
        ];
        for config in bad {
            assert!(config.validate().is_err(), "{config:?}");
        }
    }

    #[test]
    fn in_flight_heap_orders_by_due_then_decision_order() {
        let npu = NpuConfig::paper_default();
        let config = MigrationConfig::new(8.0);
        let mut driver = MigrationDriver::new(&config, &npu, 2, &[]);
        for (due, id) in [(500u64, 1u64), (300, 2), (500, 3)] {
            driver.ledger.depart(TaskId(id));
            driver.pending.push(Reverse(PendingMigration {
                due: Cycles::new(due),
                seq: driver.seq,
                salvage: salvage_for(&npu, id),
                to_node: 0,
                from_node: 1,
                attempt: 1,
                event: TransferEvent::Land,
            }));
            driver.seq += 1;
        }
        assert_eq!(driver.next_due(), Some(Cycles::new(300)));
        assert!(driver.pop_due(Cycles::new(299)).is_none());
        let mut order: Vec<u64> = Vec::new();
        while let Some(p) = driver.pop_due(Cycles::MAX) {
            let id = p.salvage.prepared.request.id;
            driver.ledger.land(id, p.to_node);
            order.push(id.0);
        }
        assert_eq!(order, vec![2, 1, 3]);
        let tally = driver.finish();
        assert_eq!(tally.migrations, 0);
        assert!(tally.undelivered.is_empty());
    }

    #[test]
    fn launch_resolves_fate_against_the_link_schedule() {
        use prema_workload::LinkFaultKind;
        let npu = NpuConfig::paper_default();
        // Paper fabric: 2000 cycles latency + bytes/16 serialization.
        let links = [LinkFault {
            from: 0,
            to: 1,
            start: Cycles::new(2_500),
            end: Cycles::new(3_000),
            kind: LinkFaultKind::Down,
        }];
        let config = MigrationConfig::new(8.0).with_custody(CustodyConfig::redirect());
        let mut driver = MigrationDriver::new(&config, &npu, 2, &links);

        // Attempt over the doomed link: drops mid-flight at the window
        // start (launch at 1000, arrival would be 1000 + 2000 + 64 = 3064).
        driver.ledger.depart(TaskId(1));
        driver.launch(
            salvage_for(&npu, 1),
            0,
            1,
            1,
            Cycles::new(2_064),
            Cycles::new(1_000),
        );
        let dropped = driver.pop_due(Cycles::MAX).expect("one entry");
        assert_eq!(dropped.due, Cycles::new(2_500));
        assert_eq!(
            dropped.event,
            TransferEvent::Fail(TransferFailReason::LinkDown)
        );

        // The reverse direction is unaffected: lands on schedule.
        driver.ledger.depart(TaskId(2));
        driver.launch(
            salvage_for(&npu, 2),
            1,
            0,
            1,
            Cycles::new(2_064),
            Cycles::new(1_000),
        );
        let landed = driver.pop_due(Cycles::MAX).expect("one entry");
        assert_eq!(landed.due, Cycles::new(3_064));
        assert_eq!(landed.event, TransferEvent::Land);

        // A transfer slower than the delivery deadline times out at the
        // deadline instant.
        let deadline = npu.millis_to_cycles(4.0);
        driver.ledger.depart(TaskId(3));
        driver.launch(
            salvage_for(&npu, 3),
            1,
            0,
            1,
            deadline + Cycles::new(1_000),
            Cycles::new(10_000),
        );
        let timed_out = driver.pop_due(Cycles::MAX).expect("one entry");
        assert_eq!(timed_out.due, Cycles::new(10_000) + deadline);
        assert_eq!(
            timed_out.event,
            TransferEvent::Fail(TransferFailReason::Timeout)
        );
        driver.pending.clear();
        driver.ledger = CustodyLedger::default();
        let _ = driver.finish();
    }

    #[test]
    fn exhausted_retry_budget_abandons_with_accounting() {
        let npu = NpuConfig::paper_default();
        let config = MigrationConfig::new(8.0).with_custody(CustodyConfig::abandon_on_failure());
        let mut driver = MigrationDriver::new(&config, &npu, 2, &[]);
        driver.ledger.depart(TaskId(7));
        let pending = PendingMigration {
            due: Cycles::new(100),
            seq: 0,
            salvage: salvage_for(&npu, 7),
            to_node: 1,
            from_node: 0,
            attempt: 1,
            event: TransferEvent::Fail(TransferFailReason::LinkDown),
        };
        let trace = RefCell::new(crate::trace::NullClusterSink);
        driver.on_transfer_failed(
            pending,
            TransferFailReason::LinkDown,
            Cycles::new(100),
            &trace,
        );
        let tally = driver.finish();
        assert_eq!(tally.transfer_failures, 1);
        assert_eq!(tally.redirects, 0);
        assert_eq!(tally.abandoned.len(), 1);
        assert_eq!(tally.abandoned[0].id, TaskId(7));
        assert!(tally.undelivered.is_empty());
    }

    #[test]
    fn finish_reports_undelivered_tasks_instead_of_asserting() {
        let npu = NpuConfig::paper_default();
        let config = MigrationConfig::new(8.0).with_custody(CustodyConfig::redirect());
        let mut driver = MigrationDriver::new(&config, &npu, 2, &[]);
        driver.ledger.depart(TaskId(9));
        driver.launch(
            salvage_for(&npu, 9),
            0,
            1,
            1,
            Cycles::new(2_064),
            Cycles::new(1_000),
        );
        let tally = driver.finish();
        assert_eq!(tally.undelivered, vec![TaskId(9)]);
    }

    #[test]
    fn custody_ledger_rejects_double_ownership() {
        let mut ledger = CustodyLedger::default();
        ledger.depart(TaskId(1));
        let boom =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ledger.depart(TaskId(1))));
        assert!(boom.is_err(), "departing an in-flight task must panic");
    }
}
