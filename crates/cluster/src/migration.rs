//! Deadline-triggered checkpoint migration: evacuating started tasks off
//! straggler nodes over the priced interconnect.
//!
//! PR 6's fault tolerance reacts to nodes that *die*; this module reacts to
//! nodes that merely *slow down* (the degrade windows of
//! [`prema_workload::FaultKind::Degrade`]). Work stealing cannot help a
//! straggler's started tasks — stealing moves only never-started work — but
//! the engine's checkpoint machinery can:
//! [`prema_core::SimSession::checkpoint_out`] extracts a started resident
//! at its last `GEMM_OP` commit point, the voluntary twin of crash salvage,
//! and [`prema_core::SimSession::inject_salvaged`] restores it elsewhere
//! for exactly the restore-DMA price the paper's CHECKPOINT mechanism
//! defines.
//!
//! The crate-private `MigrationDriver` is — like the fault driver — one
//! shared decision machine both closed-loop drivers consume, so the
//! heap-vs-reference bit-identity contract extends over migration by
//! construction. (Migration is a *synchronized* mechanism: with it
//! enabled the event-heap loop steps all nodes to each decision instant
//! and the crate-private `contender` dispatch index stays unbuilt —
//! every migration round reads every node anyway.) At every global
//! synchronization instant it runs a *migration round*:
//!
//! 1. **Deadline check.** Per source node, residents are walked in the
//!    preemptive scheduler's drain order (priority, then arrival, then id);
//!    each task's predicted completion is the node clock plus the
//!    *clock-scaled* wall time of the backlog at or ahead of it. The first
//!    started task whose prediction slips past `arrival + sla + margin` is
//!    the evacuation candidate.
//! 2. **Stay-vs-move pricing.** Staying costs the scaled wall time of the
//!    candidate's backlog on the straggler. Moving to a target costs the
//!    interconnect transfer of its `live_checkpoint_bytes`
//!    ([`crate::InterconnectConfig::transfer_cycles`]), plus the restore
//!    DMA ([`npu_sim::CheckpointModel`]), plus the scaled wall time of the
//!    target's blocking work ahead of the newcomer. The cheapest healthy
//!    target wins, ties to the lowest index.
//! 3. **Hysteresis and budget.** The move must beat staying by the
//!    configured hysteresis factor, and each source node may initiate at
//!    most `node_budget` evacuations per run — together these prevent
//!    migration thrash when every node is slow.
//!
//! A decided migration extracts the task immediately and schedules its
//! *delivery* (`decision instant + transfer time`) on an in-flight heap;
//! the loops treat deliveries as arrival events at the destination, global
//! synchronization points exactly like fault instants.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use npu_sim::{CheckpointModel, Cycles, NpuConfig};
use prema_core::{ResidentTask, SalvagedTask, SimSession, TaskId, TraceSink};

use crate::interconnect::InterconnectConfig;
use crate::trace::{ClusterTraceEvent, ClusterTraceSink};

/// Configuration of deadline-triggered checkpoint migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// The per-task turnaround SLA, in milliseconds: each task's deadline is
    /// its arrival plus this (plus the margin).
    pub sla_ms: f64,
    /// Slack past the SLA before the arbiter reacts, in milliseconds — a
    /// prediction has to slip *this far* beyond the target to trigger the
    /// stay-vs-move comparison.
    pub margin_ms: f64,
    /// The move must beat staying by this factor
    /// (`move_cost * hysteresis < stay_cost`) before the task is evacuated.
    /// 1.0 migrates on any predicted win; higher values demand a clearer
    /// one.
    pub hysteresis: f64,
    /// Maximum number of evacuations each source node may initiate per run —
    /// the thrash bound.
    pub node_budget: u32,
    /// The interconnect the checkpoint context travels over.
    pub interconnect: InterconnectConfig,
}

impl MigrationConfig {
    /// A migration policy answering the given SLA: half-millisecond margin,
    /// 1.25x hysteresis, eight evacuations per node, paper-default fabric.
    pub fn new(sla_ms: f64) -> Self {
        MigrationConfig {
            sla_ms,
            margin_ms: 0.5,
            hysteresis: 1.25,
            node_budget: 8,
            interconnect: InterconnectConfig::paper_default(),
        }
    }

    /// Replaces the hysteresis factor.
    pub fn with_hysteresis(mut self, hysteresis: f64) -> Self {
        self.hysteresis = hysteresis;
        self
    }

    /// Replaces the per-node evacuation budget.
    pub fn with_node_budget(mut self, node_budget: u32) -> Self {
        self.node_budget = node_budget;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.sla_ms.is_finite() || self.sla_ms <= 0.0 {
            return Err("migration SLA must be positive and finite".into());
        }
        if !self.margin_ms.is_finite() || self.margin_ms < 0.0 {
            return Err("migration margin must be non-negative and finite".into());
        }
        if !self.hysteresis.is_finite() || self.hysteresis < 1.0 {
            return Err("migration hysteresis must be at least 1.0 and finite".into());
        }
        self.interconnect.validate()
    }
}

/// One completed evacuation decision — a hop in a task's migration history.
/// Logged at the *decision* instant; the task reaches its destination at
/// [`MigrationRecord::arrive_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// The evacuated task.
    pub task: TaskId,
    /// The straggler it was extracted from.
    pub from_node: usize,
    /// The node it was shipped to.
    pub to_node: usize,
    /// The live checkpoint context that travelled, in bytes.
    pub bytes: u64,
    /// When the arbiter decided (and the checkpoint was taken).
    pub at: Cycles,
    /// When the task lands at the destination (`at` plus the interconnect
    /// transfer time).
    pub arrive_at: Cycles,
}

/// A checkpointed task in flight over the interconnect.
#[derive(Debug)]
pub(crate) struct PendingMigration {
    due: Cycles,
    /// Tie-break for identical delivery instants: decision order.
    seq: u64,
    pub(crate) salvage: SalvagedTask,
    pub(crate) to_node: usize,
}

impl PartialEq for PendingMigration {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}

impl Eq for PendingMigration {}

impl PartialOrd for PendingMigration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingMigration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Everything the migration machinery contributes to an
/// [`crate::OnlineOutcome`].
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct MigrationTally {
    pub(crate) migrations: u64,
    pub(crate) migration_bytes: u64,
    pub(crate) migration_log: Vec<MigrationRecord>,
}

/// The shared migration decision machine both closed-loop drivers consume
/// (see the module docs): the deadline monitor, the stay-vs-move arbiter,
/// the in-flight transfer heap and the outcome tally. Every method must be
/// called with all sessions materialized at the decision instant — the
/// loops' global synchronization points.
#[derive(Debug)]
pub(crate) struct MigrationDriver<'a> {
    config: &'a MigrationConfig,
    checkpoint: CheckpointModel,
    /// `sla + margin`, in cycles: each task's deadline is its arrival plus
    /// this.
    deadline_offset: Cycles,
    pending: BinaryHeap<Reverse<PendingMigration>>,
    seq: u64,
    budget_used: Vec<u32>,
    /// Scratch for one source node's resident scan.
    residents: Vec<ResidentTask>,
    tally: MigrationTally,
}

impl<'a> MigrationDriver<'a> {
    pub(crate) fn new(config: &'a MigrationConfig, npu: &NpuConfig, nodes: usize) -> Self {
        MigrationDriver {
            config,
            checkpoint: CheckpointModel::new(npu),
            deadline_offset: npu.millis_to_cycles(config.sla_ms + config.margin_ms),
            pending: BinaryHeap::new(),
            seq: 0,
            budget_used: vec![0; nodes],
            residents: Vec::new(),
            tally: MigrationTally::default(),
        }
    }

    /// The delivery instant of the earliest in-flight migration, if any.
    pub(crate) fn next_due(&self) -> Option<Cycles> {
        self.pending.peek().map(|Reverse(p)| p.due)
    }

    /// Pops the next delivery due at or before `t` (the loop injects the
    /// salvage at the destination).
    pub(crate) fn pop_due(&mut self, t: Cycles) -> Option<PendingMigration> {
        if self.next_due().is_some_and(|due| due <= t) {
            let Reverse(pending) = self.pending.pop().expect("peeked entry");
            return Some(pending);
        }
        None
    }

    /// One migration round at global instant `t` over sessions all
    /// materialized at `t`: per source node in index order, find the first
    /// deadline-blown started task in drain order, price stay-vs-move, and
    /// (budget and hysteresis permitting) extract it and put it in flight.
    /// At most one evacuation per source per round.
    ///
    /// The trace sink is borrowed only *between* session calls — the
    /// sessions' own taps borrow the same cell from inside `checkpoint_out`.
    pub(crate) fn round<S: TraceSink, C: ClusterTraceSink>(
        &mut self,
        sessions: &mut [SimSession<S>],
        t: Cycles,
        trace: &RefCell<C>,
    ) {
        for from in 0..sessions.len() {
            if sessions[from].stalled_until().is_some()
                || self.budget_used[from] >= self.config.node_budget
            {
                continue;
            }
            let Some((id, priority, remaining, stay)) = self.deadline_candidate(&sessions[from])
            else {
                continue;
            };
            let (_, bytes) = sessions[from]
                .checkpoint_preview(id)
                .expect("a started resident is checkpointable");
            let transfer = self.config.interconnect.transfer_cycles(bytes);
            let restore = self.checkpoint.restore_cycles(bytes);
            // The cheapest healthy target: transfer + restore + the scaled
            // wall time of the work that outranks the newcomer there. Ties
            // break to the lowest index.
            let mut best: Option<(Cycles, usize)> = None;
            for (to, target) in sessions.iter().enumerate() {
                if to == from || target.stalled_until().is_some() {
                    continue;
                }
                let queue = target.predicted_blocking_work(priority) + remaining;
                let move_cost = transfer + restore + target.scaled_wall_for_work(queue);
                if best.is_none_or(|(cost, _)| move_cost < cost) {
                    best = Some((move_cost, to));
                }
            }
            let Some((move_cost, to)) = best else {
                continue;
            };
            if move_cost.get() as f64 * self.config.hysteresis >= stay.get() as f64 {
                continue;
            }
            let salvage = sessions[from]
                .checkpoint_out(id)
                .expect("the previewed task is still checkpointable");
            self.budget_used[from] += 1;
            let due = t + transfer;
            self.tally.migrations += 1;
            self.tally.migration_bytes += bytes;
            self.tally.migration_log.push(MigrationRecord {
                task: id,
                from_node: from,
                to_node: to,
                bytes,
                at: t,
                arrive_at: due,
            });
            if C::ENABLED {
                trace.borrow_mut().cluster_event(
                    t,
                    ClusterTraceEvent::MigrationOut {
                        task: id,
                        from,
                        to,
                        bytes,
                        stay_cost: stay,
                        move_cost,
                        arrive_at: due,
                    },
                );
            }
            self.pending.push(Reverse(PendingMigration {
                due,
                seq: self.seq,
                salvage,
                to_node: to,
            }));
            self.seq += 1;
        }
    }

    /// The deadline monitor over one source node: walks residents in drain
    /// order accumulating the backlog; the first *started* task whose
    /// clock-scaled predicted completion slips past `arrival + sla + margin`
    /// is the candidate. Returns `(id, priority, estimated remaining, stay
    /// cost)` — the stay cost is the scaled wall time of everything at or
    /// ahead of the candidate.
    fn deadline_candidate<S: TraceSink>(
        &mut self,
        session: &SimSession<S>,
    ) -> Option<(TaskId, prema_core::Priority, Cycles, Cycles)> {
        self.residents.clear();
        session.resident_tasks_into(&mut self.residents);
        self.residents
            .sort_by_key(|r| (Reverse(r.priority), r.arrival, r.id));
        let now = session.now();
        let mut backlog = Cycles::ZERO;
        for resident in &self.residents {
            backlog += resident.estimated_remaining();
            if !resident.started {
                continue;
            }
            let stay = session.scaled_wall_for_work(backlog);
            if now + stay > resident.arrival + self.deadline_offset {
                return Some((
                    resident.id,
                    resident.priority,
                    resident.estimated_remaining(),
                    stay,
                ));
            }
        }
        None
    }

    /// Consumes the driver into its outcome tally.
    ///
    /// # Panics
    ///
    /// Debug-asserts every in-flight migration was delivered.
    pub(crate) fn finish(self) -> MigrationTally {
        debug_assert!(self.pending.is_empty(), "no migration left in flight");
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_covers_every_field() {
        assert!(MigrationConfig::new(8.0).validate().is_ok());
        let bad = [
            MigrationConfig {
                sla_ms: 0.0,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                sla_ms: f64::NAN,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                margin_ms: -0.1,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                hysteresis: 0.9,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                hysteresis: f64::INFINITY,
                ..MigrationConfig::new(8.0)
            },
            MigrationConfig {
                interconnect: InterconnectConfig {
                    bytes_per_cycle: 0,
                    ..InterconnectConfig::paper_default()
                },
                ..MigrationConfig::new(8.0)
            },
        ];
        for config in bad {
            assert!(config.validate().is_err(), "{config:?}");
        }
    }

    #[test]
    fn in_flight_heap_orders_by_due_then_decision_order() {
        use dnn_models::ModelKind;
        use prema_core::{PreparedTask, TaskRequest};
        let npu = NpuConfig::paper_default();
        let config = MigrationConfig::new(8.0);
        let mut driver = MigrationDriver::new(&config, &npu, 2);
        let salvage = |id: u64| SalvagedTask {
            prepared: PreparedTask::prepare(
                TaskRequest::new(TaskId(id), ModelKind::CnnAlexNet),
                &npu,
            ),
            resume_executed: Cycles::ZERO,
            checkpoint_bytes: 0,
            first_start: None,
            preemption_count: 0,
            kill_restarts: 0,
            checkpoint_overhead: Cycles::ZERO,
            restore_overhead: Cycles::ZERO,
            max_checkpoint_bytes: 0,
        };
        for (due, id) in [(500u64, 1u64), (300, 2), (500, 3)] {
            driver.pending.push(Reverse(PendingMigration {
                due: Cycles::new(due),
                seq: driver.seq,
                salvage: salvage(id),
                to_node: 0,
            }));
            driver.seq += 1;
        }
        assert_eq!(driver.next_due(), Some(Cycles::new(300)));
        assert!(driver.pop_due(Cycles::new(299)).is_none());
        let order: Vec<u64> = std::iter::from_fn(|| driver.pop_due(Cycles::MAX))
            .map(|p| p.salvage.prepared.request.id.0)
            .collect();
        assert_eq!(order, vec![2, 1, 3]);
        let tally = driver.finish();
        assert_eq!(tally.migrations, 0);
    }
}
