//! Cluster-wide serving metrics and the deterministic outcome hash.
//!
//! The single-NPU evaluation reports the Eyerman multi-program metrics per
//! run; a serving cluster additionally needs the queueing view: how long
//! requests waited before first receiving *any* NPU, how long they then
//! resided in service, how the tail of the turnaround distribution behaves
//! as offered load approaches saturation, and how evenly the nodes were
//! utilized. [`ClusterMetrics`] computes all of that in one pass over a
//! [`ClusterOutcome`]'s merged records.

use serde::{Deserialize, Serialize};

use npu_sim::{Cycles, NpuConfig};
use prema_metrics::{MultiTaskMetrics, Percentiles, SlaCurve, TaskOutcome};
use prema_workload::prepare::outcomes_of;

use crate::cluster::ClusterOutcome;
use crate::online::OnlineOutcome;

/// Aggregate serving metrics of one cluster simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Number of served tasks across the cluster.
    pub task_count: usize,
    /// Cluster-wide average normalized turnaround time (Equation 1 over the
    /// merged records).
    pub antt: f64,
    /// Cluster-wide system throughput (sum of per-task progress).
    pub stp: f64,
    /// Mean queueing delay: arrival until the task first received an NPU,
    /// in milliseconds.
    pub mean_queueing_delay_ms: f64,
    /// Mean service residency: first start until completion (includes any
    /// preemption-induced inflation on the node), in milliseconds.
    pub mean_service_ms: f64,
    /// Median turnaround latency, in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile turnaround latency, in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile turnaround latency, in milliseconds.
    pub p99_ms: f64,
    /// SLA violation curve over `N x isolated` targets, `N` swept 2..=20
    /// (the Figure 13 definition applied cluster-wide).
    pub sla: SlaCurve,
    /// Per-node utilization: useful busy cycles (isolated work plus
    /// checkpoint/restore DMA) over the cluster makespan.
    pub node_utilization: Vec<f64>,
    /// Completion time of the last task on any node, in milliseconds.
    pub makespan_ms: f64,
    /// Fraction of total node-time the nodes were *up* (not inside a fault
    /// window): `1 - downtime / (nodes x makespan)`. Exactly 1.0 for
    /// fault-free runs.
    pub availability: f64,
    /// Useful served work per unit of provisioned capacity: the served
    /// tasks' isolated cycles over `nodes x makespan`. Unlike utilization
    /// it excludes checkpoint/restore DMA and work repeated after a crash
    /// or kill — throughput that reached a completion, not cycles burnt.
    pub goodput: f64,
    /// Requests shed by admission control (a pre-service policy decision).
    pub shed_count: usize,
    /// Requests abandoned after exhausting the recovery retry budget (a
    /// post-admission fault-tolerance failure). Counted as SLA violations
    /// at every target in [`ClusterMetrics::sla`]; sheds are excluded from
    /// the curve entirely.
    pub abandoned_count: usize,
    /// Deadline-triggered checkpoint evacuations performed.
    pub migrations: u64,
    /// Checkpoint context shipped over the interconnect, in bytes.
    pub migration_bytes: u64,
    /// Mean evacuation latency (decision instant until delivery at the
    /// destination), in milliseconds. Zero when nothing migrated.
    pub mean_evacuation_ms: f64,
    /// Fraction of total node-time spent inside a degrade window. Degraded
    /// nodes are *up* (see [`ClusterMetrics::availability`]) — this tracks
    /// how much of the provisioned capacity ran at reduced speed.
    pub degraded_fraction: f64,
}

impl ClusterMetrics {
    /// Computes the metrics of one cluster outcome. An empty outcome yields
    /// all-zero metrics (and an empty SLA curve).
    pub fn from_outcome(outcome: &ClusterOutcome, npu: &NpuConfig) -> Self {
        let records = outcome.merged_records();
        let makespan = outcome.makespan();
        let node_utilization = outcome
            .node_outcomes
            .iter()
            .map(|node| {
                let busy: Cycles = node
                    .records
                    .iter()
                    .map(|r| r.isolated_cycles + r.checkpoint_overhead + r.restore_overhead)
                    .sum();
                if makespan.is_zero() {
                    0.0
                } else {
                    busy.ratio(makespan)
                }
            })
            .collect();
        let provisioned = makespan.get() as f64 * outcome.node_outcomes.len() as f64;
        let goodput = if provisioned == 0.0 {
            0.0
        } else {
            let useful: Cycles = records.iter().map(|r| r.isolated_cycles).sum();
            useful.get() as f64 / provisioned
        };
        if records.is_empty() {
            return ClusterMetrics {
                task_count: 0,
                antt: 0.0,
                stp: 0.0,
                mean_queueing_delay_ms: 0.0,
                mean_service_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                sla: SlaCurve::default(),
                node_utilization,
                makespan_ms: 0.0,
                availability: 1.0,
                goodput: 0.0,
                shed_count: 0,
                abandoned_count: 0,
                migrations: 0,
                migration_bytes: 0,
                mean_evacuation_ms: 0.0,
                degraded_fraction: 0.0,
            };
        }

        let outcomes = outcomes_of(&records);
        let eyerman = MultiTaskMetrics::from_outcomes(&outcomes);
        let n = records.len() as f64;
        let queueing_ms: f64 = records
            .iter()
            .map(|r| npu.cycles_to_millis(r.waiting()))
            .sum();
        let service_ms: f64 = records
            .iter()
            .map(|r| npu.cycles_to_millis(r.completion - r.first_start))
            .sum();
        let turnaround_ms: Vec<f64> = records
            .iter()
            .map(|r| npu.cycles_to_millis(r.turnaround()))
            .collect();
        let percentiles = Percentiles::summarize(&turnaround_ms).expect("records are non-empty");

        ClusterMetrics {
            task_count: records.len(),
            antt: eyerman.antt,
            stp: eyerman.stp,
            mean_queueing_delay_ms: queueing_ms / n,
            mean_service_ms: service_ms / n,
            p50_ms: percentiles.p50,
            p95_ms: percentiles.p95,
            p99_ms: percentiles.p99,
            sla: SlaCurve::sweep(&outcomes, (2..=20).map(|n| n as f64)),
            node_utilization,
            makespan_ms: npu.cycles_to_millis(makespan),
            availability: 1.0,
            goodput,
            shed_count: 0,
            abandoned_count: 0,
            migrations: 0,
            migration_bytes: 0,
            mean_evacuation_ms: 0.0,
            degraded_fraction: 0.0,
        }
    }

    /// Computes the metrics of one *closed-loop* outcome, folding in its
    /// extras: the shed/abandoned separation, fault-window availability,
    /// and the SLA curve's treatment of abandoned work. An abandoned task
    /// has no completion, so it enters the curve as an infinite turnaround
    /// — a violation at every target — while a shed request (a deliberate
    /// refusal, not a missed promise) stays out of the curve and is only
    /// counted.
    pub fn from_online(outcome: &OnlineOutcome, npu: &NpuConfig) -> Self {
        let mut metrics = ClusterMetrics::from_outcome(&outcome.cluster, npu);
        metrics.shed_count = outcome.shed.len();
        metrics.abandoned_count = outcome.abandoned.len();
        let provisioned =
            outcome.cluster.makespan().get() as f64 * outcome.cluster.node_outcomes.len() as f64;
        if provisioned > 0.0 {
            let downtime: Cycles = outcome.node_downtime.iter().copied().sum();
            metrics.availability = (1.0 - downtime.get() as f64 / provisioned).max(0.0);
            let degraded: Cycles = outcome.node_degraded_time.iter().copied().sum();
            metrics.degraded_fraction = (degraded.get() as f64 / provisioned).min(1.0);
        }
        metrics.migrations = outcome.migrations;
        metrics.migration_bytes = outcome.migration_bytes;
        if !outcome.migration_log.is_empty() {
            let total_ms: f64 = outcome
                .migration_log
                .iter()
                .map(|record| npu.cycles_to_millis(record.arrive_at - record.at))
                .sum();
            metrics.mean_evacuation_ms = total_ms / outcome.migration_log.len() as f64;
        }
        if !outcome.abandoned.is_empty() {
            let mut outcomes = outcomes_of(&outcome.cluster.merged_records());
            outcomes.extend(outcome.abandoned.iter().map(|request| TaskOutcome {
                isolated_time: 1.0,
                turnaround_time: f64::INFINITY,
                priority_weight: request.priority.weight(),
            }));
            metrics.sla = SlaCurve::sweep(&outcomes, (2..=20).map(|n| n as f64));
        }
        metrics
    }

    /// Mean utilization across the nodes.
    pub fn mean_utilization(&self) -> f64 {
        if self.node_utilization.is_empty() {
            return 0.0;
        }
        self.node_utilization.iter().sum::<f64>() / self.node_utilization.len() as f64
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix_u64(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn mix_bytes(hash: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Folds a sequence of digests (e.g. per-cell [`outcome_hash`] values) into
/// one combined FNV-1a digest, with the same primitive the per-outcome
/// digest uses.
pub fn fold_hashes(hashes: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = FNV_OFFSET;
    for value in hashes {
        mix_u64(&mut hash, value);
    }
    hash
}

/// A deterministic FNV-1a digest of a cluster outcome: every assignment and
/// every per-task record field that is exact (integer cycles and counts —
/// no floats), so the digest is independent of thread count, fan-out order
/// and optimization level. The cluster baseline gate compares this digest
/// to detect any behavioural divergence, not just throughput regressions.
///
/// One caveat on portability: the *inputs* (open-loop arrival cycles)
/// derive from `f64::ln` in the arrival samplers, whose last-ulp rounding
/// is up to the platform libm. On one platform the digest is exact; if a
/// fresh checkout on a different OS/libc disagrees with a committed
/// baseline without any code change, regenerate the baseline on the CI
/// platform rather than loosening the gate.
pub fn outcome_hash(outcome: &ClusterOutcome) -> u64 {
    let mut hash = FNV_OFFSET;
    mix_u64(&mut hash, outcome.node_outcomes.len() as u64);
    for assignment in &outcome.assignments {
        mix_u64(&mut hash, assignment.task.0);
        mix_u64(&mut hash, assignment.node as u64);
    }
    for node in &outcome.node_outcomes {
        mix_u64(&mut hash, node.scheduler_invocations);
        mix_u64(&mut hash, node.checkpoint_preemptions);
        mix_u64(&mut hash, node.kill_preemptions);
        mix_u64(&mut hash, node.drain_decisions);
        mix_u64(&mut hash, node.makespan.get());
        for record in &node.records {
            mix_u64(&mut hash, record.id.0);
            mix_bytes(&mut hash, record.model.paper_name().as_bytes());
            mix_u64(&mut hash, record.batch);
            mix_u64(&mut hash, record.priority.weight() as u64);
            mix_u64(&mut hash, record.arrival.get());
            mix_u64(&mut hash, record.first_start.get());
            mix_u64(&mut hash, record.completion.get());
            mix_u64(&mut hash, record.isolated_cycles.get());
            mix_u64(&mut hash, record.estimated_cycles.get());
            mix_u64(&mut hash, record.preemption_count);
            mix_u64(&mut hash, record.kill_restarts);
            mix_u64(&mut hash, record.checkpoint_overhead.get());
            mix_u64(&mut hash, record.restore_overhead.get());
            mix_u64(&mut hash, record.max_checkpoint_bytes);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ClusterSimulator};
    use crate::dispatch::DispatchPolicy;
    use prema_core::SchedulerConfig;
    use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn outcome(dispatch: DispatchPolicy, seed: u64) -> ClusterOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = generate_open_loop(&OpenLoopConfig::poisson(0.8, 40.0), &mut rng);
        ClusterSimulator::new(ClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            dispatch,
        ))
        .run_requests(&spec.requests, None)
    }

    #[test]
    fn metrics_are_plausible_for_a_moderate_load() {
        let outcome = outcome(DispatchPolicy::Predictive, 0x11);
        let npu = NpuConfig::paper_default();
        let metrics = ClusterMetrics::from_outcome(&outcome, &npu);
        assert_eq!(metrics.task_count, outcome.task_count());
        assert!(metrics.antt >= 1.0 - 1e-9);
        assert!(metrics.stp > 0.0 && metrics.stp <= metrics.task_count as f64 + 1e-9);
        assert!(metrics.mean_queueing_delay_ms >= 0.0);
        assert!(metrics.mean_service_ms > 0.0);
        assert!(metrics.p50_ms <= metrics.p95_ms && metrics.p95_ms <= metrics.p99_ms);
        assert_eq!(metrics.node_utilization.len(), 4);
        assert!(metrics
            .node_utilization
            .iter()
            .all(|u| (0.0..=1.0 + 1e-9).contains(u)));
        assert!(metrics.mean_utilization() > 0.0);
        assert!(metrics.makespan_ms > 0.0);
        assert!(!metrics.sla.points().is_empty());
        // Turnaround decomposes into queueing + service residency.
        let turnaround = metrics.mean_queueing_delay_ms + metrics.mean_service_ms;
        let direct: f64 = outcome
            .merged_records()
            .iter()
            .map(|r| npu.cycles_to_millis(r.turnaround()))
            .sum::<f64>()
            / metrics.task_count as f64;
        assert!((turnaround - direct).abs() < 1e-6);
    }

    #[test]
    fn empty_outcome_yields_zero_metrics() {
        let sim = ClusterSimulator::new(ClusterConfig::new(
            2,
            SchedulerConfig::paper_default(),
            DispatchPolicy::Random,
        ));
        let outcome = sim.run(&[]);
        let metrics = ClusterMetrics::from_outcome(&outcome, &NpuConfig::paper_default());
        assert_eq!(metrics.task_count, 0);
        assert_eq!(metrics.antt, 0.0);
        assert_eq!(metrics.node_utilization, vec![0.0, 0.0]);
        assert!(metrics.sla.points().is_empty());
        assert_eq!(metrics.mean_utilization(), 0.0);
    }

    #[test]
    fn online_metrics_separate_sheds_from_abandonment_and_price_downtime() {
        use crate::faults::{ClusterFaultPlan, RecoveryConfig};
        use crate::online::{OnlineClusterConfig, OnlineClusterSimulator, OnlineDispatchPolicy};
        use prema_workload::prepare::prepare_requests;
        use prema_workload::FaultProcess;

        let npu = NpuConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(0x33);
        let spec = generate_open_loop(&OpenLoopConfig::poisson(0.8, 50.0), &mut rng);
        let tasks = prepare_requests(&spec.requests, &npu, None);
        let schedule = FaultProcess::crashes(2, 10.0, 2.0, 50.0).generate(&mut rng);
        assert!(!schedule.is_empty());
        // A zero retry budget abandons every crashed-while-resident task.
        let config = OnlineClusterConfig::new(
            2,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_admission(8.0)
        .with_faults(
            ClusterFaultPlan::new(schedule).with_recovery(RecoveryConfig {
                retry_budget: 0,
                ..RecoveryConfig::checkpointed()
            }),
        );
        let outcome = OnlineClusterSimulator::new(config).run(&tasks);
        assert!(!outcome.abandoned.is_empty(), "crashes must strand work");
        assert!(!outcome.shed.is_empty(), "the tight target must shed");
        let metrics = ClusterMetrics::from_online(&outcome, &npu);
        assert_eq!(metrics.shed_count, outcome.shed.len());
        assert_eq!(metrics.abandoned_count, outcome.abandoned.len());
        assert!(metrics.availability < 1.0 && metrics.availability > 0.0);
        assert!(metrics.goodput > 0.0 && metrics.goodput <= 1.0 + 1e-9);
        // Abandoned tasks violate the SLA at every target: each point's
        // violation rate is at least abandoned / (served + abandoned).
        let floor =
            metrics.abandoned_count as f64 / (metrics.task_count + metrics.abandoned_count) as f64;
        assert!(!metrics.sla.points().is_empty());
        for point in metrics.sla.points() {
            assert!(point.violation_rate >= floor - 1e-12);
        }
        // The open-loop view of the same served records reports full
        // availability and no shed/abandoned counts.
        let plain = ClusterMetrics::from_outcome(&outcome.cluster, &npu);
        assert_eq!(plain.availability, 1.0);
        assert_eq!(plain.shed_count + plain.abandoned_count, 0);
        assert_eq!(plain.goodput, metrics.goodput);
    }

    #[test]
    fn hash_is_stable_per_outcome_and_sensitive_to_changes() {
        let a = outcome(DispatchPolicy::Predictive, 0x22);
        let b = outcome(DispatchPolicy::Predictive, 0x22);
        assert_eq!(outcome_hash(&a), outcome_hash(&b));
        let different_seed = outcome(DispatchPolicy::Predictive, 0x23);
        assert_ne!(outcome_hash(&a), outcome_hash(&different_seed));
        let different_policy = outcome(DispatchPolicy::RoundRobin, 0x22);
        assert_ne!(outcome_hash(&a), outcome_hash(&different_policy));
    }
}
