//! Cluster-level flight-recorder telemetry: per-node engine taps, cluster
//! decision events, and the recording sinks.
//!
//! The engine's [`prema_core::trace`] layer streams *per-node* scheduling
//! events; this module adds the *cluster* vocabulary on top — dispatch
//! decisions with the per-node branch-and-bound keys actually compared,
//! steal / shed / fault / recovery hops, migration decisions with their
//! priced stay-vs-move alternatives, certificate-heap traffic, and per-node
//! queue-depth/remaining-work samples taken at global events.
//!
//! The wiring mirrors the engine's: every closed-loop driver is generic
//! over a [`ClusterTraceSink`] whose default [`NullClusterSink`] carries
//! `ENABLED = false`, so the untraced loops compile to exactly the
//! pre-tracing code and their outcome digests stay byte-identical. A traced
//! run shares one sink between the cluster loop and every node session: the
//! loop holds an `Rc<RefCell<C>>` and each session's [`NodeTap`] holds a
//! clone, stamping its node index onto the engine events it forwards.
//!
//! The same observe-never-perturb invariant applies: attaching any sink
//! must leave the [`crate::OnlineOutcome`] bit-identical to the untraced
//! run (property-tested by `tests/trace.rs` and the chaos harness, which
//! drives every mechanism at once with a [`FlightRecorder`] attached and
//! dumps it on divergence).
//!
//! Two recording sinks ship here:
//!
//! * [`FlightRecorder`] — a bounded ring of the last N events plus
//!   fixed-width per-node sample rings, allocation-free after
//!   construction; the chaos tests dump it when an assertion fails.
//! * [`JsonTraceSink`] — a full Chrome/Perfetto `trace_event` exporter
//!   (one pid per node, task executions as duration slices, cluster
//!   decisions as instant events, node samples as counter tracks) behind
//!   the `throughput trace` subcommand and the bench bins' `--trace-out`.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use npu_sim::{Cycles, NpuConfig};
use prema_core::{SimSession, TaskId, TraceEvent, TraceSink};

/// How many per-node branch-and-bound keys a [`NodeKeySet`] stores inline.
/// Decisions over larger clusters record the first four nodes in index
/// order plus the true total.
pub const MAX_TRACE_NODES: usize = 4;

/// One node's standing in a dispatch decision: the key the front-end
/// actually compared for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeKey {
    /// The node this key scores.
    pub node: usize,
    /// The failure-aware penalty tier (0 healthy, 1 cooling-down or
    /// degraded, 2 down).
    pub penalty: u8,
    /// The live-state score under the configured dispatch policy
    /// (signal, total remaining work).
    pub key: (u64, u64),
    /// Whether this is a branch-and-bound *lower bound* (the event-heap
    /// loop skipped the node without materializing it) rather than an
    /// exact score.
    pub lower_bounded: bool,
}

/// A fixed-width capture of the per-node keys one dispatch decision
/// compared: the first [`MAX_TRACE_NODES`] in comparison order plus the
/// true total, so the event stays `Copy` at any cluster size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeKeySet {
    keys: [Option<NodeKey>; MAX_TRACE_NODES],
    total: u32,
}

impl NodeKeySet {
    /// Appends one node's key (dropped, but still counted, once the inline
    /// slots are full).
    pub fn push(&mut self, key: NodeKey) {
        if let Some(slot) = self.keys.iter_mut().find(|slot| slot.is_none()) {
            *slot = Some(key);
        }
        self.total += 1;
    }

    /// The recorded leading keys, in comparison order.
    pub fn recorded(&self) -> impl Iterator<Item = &NodeKey> {
        self.keys.iter().flatten()
    }

    /// How many nodes the decision actually compared (may exceed the number
    /// recorded inline).
    pub fn total(&self) -> usize {
        self.total as usize
    }
}

/// The fault-window species a [`ClusterTraceEvent::Fault`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTraceKind {
    /// The node crashed: residents salvaged, downtime until the window end.
    Crash,
    /// The node froze: no progress until the window end.
    Freeze,
    /// A degrade window began: the node runs at `num / den` speed.
    Degrade {
        /// Plan-progress cycles per...
        num: u32,
        /// ...wall cycles.
        den: u32,
    },
    /// A degrade window ended: the node returns to full speed.
    DegradeEnd,
}

/// The link-window species a [`ClusterTraceEvent::LinkFault`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkTraceKind {
    /// The directed link went down: unreachable until the window end.
    Down,
    /// A degraded-bandwidth window began: transfers launched on the link
    /// are priced at `num / den` of nominal bandwidth.
    Degraded {
        /// Numerator of the bandwidth fraction.
        num: u32,
        /// Denominator of the bandwidth fraction.
        den: u32,
    },
    /// A link window ended: the link returns to nominal service.
    Restored,
}

/// Why one transfer attempt failed (see
/// [`ClusterTraceEvent::TransferTimeout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFailReason {
    /// The link carrying the transfer went down mid-flight.
    LinkDown,
    /// The attempt's landing would have slipped past its delivery
    /// deadline.
    Timeout,
    /// The destination node was down when the payload arrived.
    DestinationDown,
    /// A redirect instant found no reachable healthy destination at all;
    /// the attempt was spent waiting out another backoff.
    NoRoute,
}

impl TransferFailReason {
    /// A short stable label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            TransferFailReason::LinkDown => "link-down",
            TransferFailReason::Timeout => "timeout",
            TransferFailReason::DestinationDown => "destination-down",
            TransferFailReason::NoRoute => "no-route",
        }
    }
}

/// One cluster-level trace event. Compact and `Copy`, like the engine's
/// [`TraceEvent`], so a bounded ring of them is allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterTraceEvent {
    /// The front-end dispatched (or re-dispatched) a task: the chosen node
    /// and the per-node keys compared, including branch-and-bound lower
    /// bounds for nodes skipped unmaterialized.
    DispatchDecision {
        /// The dispatched task.
        task: TaskId,
        /// The winning node.
        chosen: usize,
        /// The leading per-node keys compared.
        keys: NodeKeySet,
    },
    /// An idle node stole a never-started task from a loaded peer.
    Steal {
        /// The stolen task.
        task: TaskId,
        /// The victim node.
        from: usize,
        /// The thief node.
        to: usize,
    },
    /// Admission control shed a task (the victim of one shed step — possibly
    /// the newcomer itself).
    Shed {
        /// The shed task.
        task: TaskId,
        /// The node it was revoked from (the would-be target when the
        /// newcomer itself is rejected).
        node: usize,
    },
    /// A fault window event on one node.
    Fault {
        /// The faulted node.
        node: usize,
        /// What kind of window (crash / freeze / degrade edge).
        kind: FaultTraceKind,
        /// When the window ends (the instant itself for `DegradeEnd`).
        until: Cycles,
    },
    /// A salvaged task's backoff expired and it was re-dispatched.
    Recovery {
        /// The recovered task.
        task: TaskId,
        /// The node whose crash salvaged it.
        from: usize,
        /// The node it re-entered.
        to: usize,
        /// Which lifetime attempt this was (1 = first recovery).
        attempt: u32,
    },
    /// A salvaged task exhausted its retry budget and was abandoned.
    Abandon {
        /// The abandoned task.
        task: TaskId,
        /// The node whose crash orphaned it.
        node: usize,
        /// The attempt count that blew the budget.
        attempts: u32,
    },
    /// The migration arbiter evacuated a task off a straggler: the priced
    /// alternatives it compared.
    MigrationOut {
        /// The evacuated task.
        task: TaskId,
        /// The straggler it left.
        from: usize,
        /// The destination.
        to: usize,
        /// The checkpoint context in flight, in bytes.
        bytes: u64,
        /// The rejected alternative: scaled wall cycles to completion if the
        /// task had stayed.
        stay_cost: Cycles,
        /// The accepted alternative: transfer + restore + queueing at the
        /// destination.
        move_cost: Cycles,
        /// When the task lands at the destination.
        arrive_at: Cycles,
    },
    /// An in-flight migration landed at its destination.
    MigrationLand {
        /// The migrated task.
        task: TaskId,
        /// The destination node.
        node: usize,
    },
    /// A directed-link fault window opened or closed.
    LinkFault {
        /// The sending side of the directed link.
        from: usize,
        /// The receiving side of the directed link.
        to: usize,
        /// What happened to the link.
        kind: LinkTraceKind,
        /// When the current window ends (for `Restored`, the instant
        /// itself).
        until: Cycles,
    },
    /// One transfer attempt failed: the payload never landed.
    TransferTimeout {
        /// The task whose transfer failed.
        task: TaskId,
        /// The node that retains custody of the checkpoint.
        from: usize,
        /// The destination the attempt was routed to.
        to: usize,
        /// Which attempt failed (1 = the original launch).
        attempt: u32,
        /// Why the attempt failed.
        reason: TransferFailReason,
    },
    /// A failed transfer was re-routed to a new destination after
    /// backoff.
    Redirect {
        /// The re-routed task.
        task: TaskId,
        /// The node that retained custody between attempts.
        from: usize,
        /// The newly chosen destination.
        to: usize,
        /// The attempt number of the relaunch.
        attempt: u32,
    },
    /// Custody reconciliation at a synchronization instant: every task
    /// the migration layer ever took custody of is in exactly one state.
    CustodyCheck {
        /// Transfers currently in flight (including backoff holds).
        in_flight: u32,
        /// Cumulative payloads delivered to a destination.
        landed: u64,
        /// Cumulative transfers abandoned after budget exhaustion.
        abandoned: u64,
    },
    /// The event-heap loop pushed a node's completion certificate.
    HeapPush {
        /// The node whose bound was pushed.
        node: usize,
        /// The completion lower bound.
        bound: Cycles,
    },
    /// The event-heap loop popped a due, still-current certificate.
    HeapPop {
        /// The node whose bound was due.
        node: usize,
        /// The popped bound.
        bound: Cycles,
    },
    /// The event-heap loop discarded a stale (lazily invalidated)
    /// certificate at pop time.
    HeapStaleDrop {
        /// The node the stale entry named.
        node: usize,
        /// The stale bound.
        bound: Cycles,
    },
    /// One node's state sampled at a global event.
    NodeSample {
        /// The sampled node.
        node: usize,
        /// Its live queue depth (running + waiting).
        queue_depth: u32,
        /// Its predicted remaining work.
        remaining_work: Cycles,
    },
    /// The contender index re-keyed one node (lazy dispatch only): emitted
    /// at every index refresh — heap events, fault instants, injections.
    /// Like the certificate events, the timestamp is the node-local clock
    /// at the refresh, which may trail the global event time.
    IndexUpdate {
        /// The re-keyed node.
        node: usize,
        /// The fault-penalty tier stored as the index's major key.
        penalty: u8,
        /// The stored policy key pair, in absolute (clock-anchored) form.
        key: (u64, u64),
        /// Whether the node sits in the ordered structures (`true`) or in
        /// the linearly scanned stalled/degraded side set (`false`).
        indexed: bool,
    },
}

/// A destination for cluster telemetry. Mirrors the engine's
/// [`TraceSink`] contract: every emission site is guarded by `ENABLED`, a
/// disabled sink compiles to nothing, and implementations must only
/// *observe* — traced and untraced runs stay bit-identical.
pub trait ClusterTraceSink: std::fmt::Debug {
    /// Whether emission sites are compiled in for this sink.
    const ENABLED: bool = true;

    /// Records one engine event from node `node`'s session at its local
    /// clock `now`.
    fn node_event(&mut self, node: usize, now: Cycles, event: TraceEvent);

    /// Records one cluster-level event at global instant `now`.
    fn cluster_event(&mut self, now: Cycles, event: ClusterTraceEvent);
}

/// The default cluster sink: telemetry disabled, every emission site
/// compiled away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullClusterSink;

impl ClusterTraceSink for NullClusterSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn node_event(&mut self, _node: usize, _now: Cycles, _event: TraceEvent) {}

    #[inline(always)]
    fn cluster_event(&mut self, _now: Cycles, _event: ClusterTraceEvent) {}
}

/// The per-node engine tap: a [`TraceSink`] that stamps its node index onto
/// every engine event and forwards it to the shared cluster sink. The
/// cluster loops give each [`SimSession`] one of these; its `ENABLED`
/// mirrors the cluster sink's, so untraced loops compile the engine's
/// emission sites away exactly as [`prema_core::NullSink`] does.
#[derive(Debug)]
pub struct NodeTap<C: ClusterTraceSink> {
    node: usize,
    sink: Rc<RefCell<C>>,
}

impl<C: ClusterTraceSink> NodeTap<C> {
    /// A tap forwarding node `node`'s engine events into the shared sink.
    pub fn new(node: usize, sink: Rc<RefCell<C>>) -> Self {
        NodeTap { node, sink }
    }
}

impl<C: ClusterTraceSink> TraceSink for NodeTap<C> {
    const ENABLED: bool = C::ENABLED;

    fn record(&mut self, now: Cycles, event: TraceEvent) {
        self.sink.borrow_mut().node_event(self.node, now, event);
    }
}

/// Samples every node's queue depth and predicted remaining work into the
/// cluster sink — called by the loops at global events (arrivals and
/// fault/migration synchronization instants). O(1) per node, compiled away
/// when the sink is disabled.
pub(crate) fn sample_nodes<S: TraceSink, C: ClusterTraceSink>(
    sessions: &[SimSession<S>],
    now: Cycles,
    trace: &RefCell<C>,
) {
    if !C::ENABLED {
        return;
    }
    let mut sink = trace.borrow_mut();
    for (node, session) in sessions.iter().enumerate() {
        sink.cluster_event(
            now,
            ClusterTraceEvent::NodeSample {
                node,
                queue_depth: session.queue_depth() as u32,
                remaining_work: session.predicted_remaining_work(),
            },
        );
    }
}

/// One entry of the [`FlightRecorder`] ring: an engine event stamped with
/// its node, or a cluster-level event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlightEntry {
    /// An engine event from one node's session.
    Node {
        /// The originating node.
        node: usize,
        /// The node's local clock at emission.
        now: Cycles,
        /// The engine event.
        event: TraceEvent,
    },
    /// A cluster-level event.
    Cluster {
        /// The global instant.
        now: Cycles,
        /// The cluster event.
        event: ClusterTraceEvent,
    },
}

impl FlightEntry {
    /// The entry's timestamp.
    pub fn at(&self) -> Cycles {
        match self {
            FlightEntry::Node { now, .. } | FlightEntry::Cluster { now, .. } => *now,
        }
    }
}

/// One point of a node's sampled time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeSamplePoint {
    /// The global instant of the sample.
    pub at: Cycles,
    /// The node's live queue depth.
    pub queue_depth: u32,
    /// The node's predicted remaining work.
    pub remaining_work: Cycles,
}

/// A fixed-capacity overwrite-oldest ring.
#[derive(Debug, Clone)]
struct Ring<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Next write position once the ring is full.
    next: usize,
    /// Total entries ever recorded (≥ `buf.len()`).
    total: u64,
}

impl<T: Clone> Ring<T> {
    fn new(capacity: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
        }
    }

    fn push(&mut self, value: T) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[self.next] = value;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Retained entries, oldest first.
    fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.buf.split_at(self.next.min(self.buf.len()));
        head.iter().chain(tail.iter())
    }
}

/// The bounded in-memory flight recorder: the last N events (engine and
/// cluster interleaved, in emission order) plus a fixed-width sample ring
/// per node. All buffers are preallocated at construction — recording never
/// allocates — so the recorder can ride along any run, however long, at
/// constant memory; the chaos tests attach one and dump it when an
/// assertion fails.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    events: Ring<FlightEntry>,
    samples: Vec<Ring<NodeSamplePoint>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `event_capacity` events and the last
    /// `samples_per_node` samples of each of `nodes` nodes.
    pub fn new(nodes: usize, event_capacity: usize, samples_per_node: usize) -> Self {
        FlightRecorder {
            events: Ring::new(event_capacity),
            samples: (0..nodes).map(|_| Ring::new(samples_per_node)).collect(),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEntry> {
        self.events.iter()
    }

    /// Total events ever recorded (retained or overwritten).
    pub fn total_events(&self) -> u64 {
        self.events.total
    }

    /// One node's retained samples, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_samples(&self, node: usize) -> impl Iterator<Item = &NodeSamplePoint> {
        self.samples[node].iter()
    }

    /// The human-readable dump the chaos harness prints on assertion
    /// failure: one line per retained event (oldest first), then each
    /// node's latest sample. Lines are `t=<cycles> [node <i>] <event>`;
    /// event payloads print in their `Debug` form.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== flight recorder: {} of {} events retained ===",
            self.events.buf.len(),
            self.events.total
        );
        for entry in self.events() {
            match entry {
                FlightEntry::Node { node, now, event } => {
                    let _ = writeln!(out, "t={} [node {node}] {event:?}", now.get());
                }
                FlightEntry::Cluster { now, event } => {
                    let _ = writeln!(out, "t={} [cluster] {event:?}", now.get());
                }
            }
        }
        for (node, ring) in self.samples.iter().enumerate() {
            if let Some(last) = ring.iter().last() {
                let _ = writeln!(
                    out,
                    "node {node}: last sample t={} queue={} remaining={} ({} samples total)",
                    last.at.get(),
                    last.queue_depth,
                    last.remaining_work.get(),
                    ring.total
                );
            }
        }
        out
    }
}

impl ClusterTraceSink for FlightRecorder {
    fn node_event(&mut self, node: usize, now: Cycles, event: TraceEvent) {
        self.events.push(FlightEntry::Node { node, now, event });
    }

    fn cluster_event(&mut self, now: Cycles, event: ClusterTraceEvent) {
        if let ClusterTraceEvent::NodeSample {
            node,
            queue_depth,
            remaining_work,
        } = event
        {
            if let Some(ring) = self.samples.get_mut(node) {
                ring.push(NodeSamplePoint {
                    at: now,
                    queue_depth,
                    remaining_work,
                });
            }
            return;
        }
        self.events.push(FlightEntry::Cluster { now, event });
    }
}

/// Counts a [`JsonTraceSink`] keeps for reconciling its trace against the
/// run's [`crate::OnlineOutcome`]: every served task must own at least one
/// execution slice, and the instant-event counts must match the outcome's
/// steal / migration / recovery tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceReconciliation {
    /// Execution slices emitted (one per node occupancy span).
    pub slices: u64,
    /// Distinct tasks owning at least one slice.
    pub slice_tasks: usize,
    /// `Steal` instants emitted.
    pub steals: u64,
    /// `MigrationOut` instants emitted.
    pub migrations: u64,
    /// `Recovery` instants emitted.
    pub recoveries: u64,
    /// `Fault` instants emitted (crash / freeze / degrade edges).
    pub faults: u64,
    /// `Shed` instants emitted.
    pub sheds: u64,
    /// `DispatchDecision` instants emitted.
    pub dispatch_decisions: u64,
}

/// A full-fidelity Chrome/Perfetto `trace_event` exporter: every node is a
/// pid (named process), task executions are duration slices (`ph: "X"`),
/// cluster decisions are instant events on the node they concern, and node
/// samples become counter tracks. Load the written file at
/// <https://ui.perfetto.dev> or `chrome://tracing`.
///
/// Unlike [`FlightRecorder`] this sink allocates freely — it exists for
/// offline inspection, not for riding along hot runs.
#[derive(Debug)]
pub struct JsonTraceSink {
    us_per_cycle: f64,
    events: Vec<String>,
    /// Per node: the currently executing task and its dispatch instant.
    open: Vec<Option<(TaskId, Cycles)>>,
    slice_tasks: BTreeSet<TaskId>,
    counts: TraceReconciliation,
}

impl JsonTraceSink {
    /// An exporter for a cluster of `nodes` NPUs on `npu`'s clock (cycle
    /// timestamps convert to trace microseconds through it).
    pub fn new(nodes: usize, npu: &NpuConfig) -> Self {
        let us_per_cycle = npu.cycles_to_millis(Cycles::new(1_000_000)) / 1_000.0;
        let mut events = Vec::new();
        for node in 0..nodes {
            events.push(format!(
                r#"{{"name":"process_name","ph":"M","pid":{node},"tid":0,"args":{{"name":"node {node}"}}}}"#
            ));
        }
        JsonTraceSink {
            us_per_cycle,
            events,
            open: vec![None; nodes],
            slice_tasks: BTreeSet::new(),
            counts: TraceReconciliation::default(),
        }
    }

    fn us(&self, at: Cycles) -> f64 {
        at.get() as f64 * self.us_per_cycle
    }

    fn close_slice(&mut self, node: usize, task: TaskId, end: Cycles, reason: &str) {
        let Some((open_task, start)) = self.open[node] else {
            return;
        };
        if open_task != task {
            return;
        }
        self.open[node] = None;
        let ts = self.us(start);
        let dur = self.us(end) - ts;
        self.counts.slices += 1;
        self.slice_tasks.insert(task);
        self.events.push(format!(
            r#"{{"name":"task {}","cat":"exec","ph":"X","ts":{ts:.3},"dur":{dur:.3},"pid":{node},"tid":0,"args":{{"end":"{reason}"}}}}"#,
            task.0
        ));
    }

    fn instant(&mut self, node: usize, now: Cycles, name: &str, cat: &str, args: String) {
        let ts = self.us(now);
        self.events.push(format!(
            r#"{{"name":"{name}","cat":"{cat}","ph":"i","s":"p","ts":{ts:.3},"pid":{node},"tid":0,"args":{{{args}}}}}"#
        ));
    }

    /// The reconciliation counters accumulated so far.
    pub fn reconciliation(&self) -> TraceReconciliation {
        TraceReconciliation {
            slice_tasks: self.slice_tasks.len(),
            ..self.counts
        }
    }

    /// Serializes the accumulated trace as Chrome `trace_event` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(event);
        }
        out.push_str("\n]}\n");
        out
    }
}

impl ClusterTraceSink for JsonTraceSink {
    fn node_event(&mut self, node: usize, now: Cycles, event: TraceEvent) {
        match event {
            TraceEvent::Dispatch { task, .. } => {
                // A dangling open slice here would be an engine bug (the NPU
                // dispatches only when free); close it defensively so the
                // trace stays well-formed either way.
                if let Some((open_task, _)) = self.open[node] {
                    self.close_slice(node, open_task, now, "preempted");
                }
                self.open[node] = Some((task, now));
            }
            TraceEvent::PreemptEnd { task, .. } => self.close_slice(node, task, now, "preempted"),
            TraceEvent::Complete { task } => self.close_slice(node, task, now, "complete"),
            TraceEvent::Salvage { task, .. } => self.close_slice(node, task, now, "salvaged"),
            _ => {}
        }
    }

    fn cluster_event(&mut self, now: Cycles, event: ClusterTraceEvent) {
        match event {
            ClusterTraceEvent::DispatchDecision { task, chosen, keys } => {
                self.counts.dispatch_decisions += 1;
                self.instant(
                    chosen,
                    now,
                    "dispatch",
                    "dispatch",
                    format!(r#""task":{},"candidates":{}"#, task.0, keys.total()),
                );
            }
            ClusterTraceEvent::Steal { task, from, to } => {
                self.counts.steals += 1;
                self.instant(
                    to,
                    now,
                    "steal",
                    "steal",
                    format!(r#""task":{},"from":{from}"#, task.0),
                );
            }
            ClusterTraceEvent::Shed { task, node } => {
                self.counts.sheds += 1;
                self.instant(
                    node,
                    now,
                    "shed",
                    "admission",
                    format!(r#""task":{}"#, task.0),
                );
            }
            ClusterTraceEvent::Fault { node, kind, until } => {
                self.counts.faults += 1;
                let name = match kind {
                    FaultTraceKind::Crash => "crash",
                    FaultTraceKind::Freeze => "freeze",
                    FaultTraceKind::Degrade { .. } => "degrade",
                    FaultTraceKind::DegradeEnd => "degrade-end",
                };
                self.instant(
                    node,
                    now,
                    name,
                    "fault",
                    format!(r#""until_us":{:.3}"#, self.us(until)),
                );
            }
            ClusterTraceEvent::Recovery {
                task,
                from,
                to,
                attempt,
            } => {
                self.counts.recoveries += 1;
                self.instant(
                    to,
                    now,
                    "recovery",
                    "fault",
                    format!(r#""task":{},"from":{from},"attempt":{attempt}"#, task.0),
                );
            }
            ClusterTraceEvent::Abandon {
                task,
                node,
                attempts,
            } => {
                self.instant(
                    node,
                    now,
                    "abandon",
                    "fault",
                    format!(r#""task":{},"attempts":{attempts}"#, task.0),
                );
            }
            ClusterTraceEvent::MigrationOut {
                task,
                from,
                to,
                bytes,
                stay_cost,
                move_cost,
                ..
            } => {
                self.counts.migrations += 1;
                self.instant(
                    from,
                    now,
                    "migrate-out",
                    "migration",
                    format!(
                        r#""task":{},"to":{to},"bytes":{bytes},"stay_cycles":{},"move_cycles":{}"#,
                        task.0,
                        stay_cost.get(),
                        move_cost.get()
                    ),
                );
            }
            ClusterTraceEvent::MigrationLand { task, node } => {
                self.instant(
                    node,
                    now,
                    "migrate-land",
                    "migration",
                    format!(r#""task":{}"#, task.0),
                );
            }
            ClusterTraceEvent::LinkFault {
                from,
                to,
                kind,
                until,
            } => {
                let label = match kind {
                    LinkTraceKind::Down => "link-down",
                    LinkTraceKind::Degraded { .. } => "link-degraded",
                    LinkTraceKind::Restored => "link-restored",
                };
                self.instant(
                    from,
                    now,
                    label,
                    "interconnect",
                    format!(r#""to":{},"until_us":{}"#, to, self.us(until)),
                );
            }
            ClusterTraceEvent::TransferTimeout {
                task,
                from,
                to,
                attempt,
                reason,
            } => {
                self.instant(
                    from,
                    now,
                    "transfer-fail",
                    "custody",
                    format!(
                        r#""task":{},"to":{},"attempt":{},"reason":"{}""#,
                        task.0,
                        to,
                        attempt,
                        reason.label()
                    ),
                );
            }
            ClusterTraceEvent::Redirect {
                task,
                from,
                to,
                attempt,
            } => {
                self.instant(
                    from,
                    now,
                    "redirect",
                    "custody",
                    format!(r#""task":{},"to":{},"attempt":{}"#, task.0, to, attempt),
                );
            }
            // Custody reconciliation is a counter heartbeat: valuable in
            // the FlightRecorder's dump, noise on a visual timeline.
            ClusterTraceEvent::CustodyCheck { .. } => {}
            ClusterTraceEvent::NodeSample {
                node,
                queue_depth,
                remaining_work,
            } => {
                let ts = self.us(now);
                self.events.push(format!(
                    r#"{{"name":"queue depth","ph":"C","ts":{ts:.3},"pid":{node},"tid":0,"args":{{"depth":{queue_depth}}}}}"#
                ));
                self.events.push(format!(
                    r#"{{"name":"remaining work","ph":"C","ts":{ts:.3},"pid":{node},"tid":0,"args":{{"cycles":{}}}}}"#,
                    remaining_work.get()
                ));
            }
            // Heap and index traffic is interesting in the FlightRecorder's
            // dump but noise in a visual timeline.
            ClusterTraceEvent::HeapPush { .. }
            | ClusterTraceEvent::HeapPop { .. }
            | ClusterTraceEvent::HeapStaleDrop { .. }
            | ClusterTraceEvent::IndexUpdate { .. } => {}
        }
    }
}

/// An unbounded in-memory cluster event log, for tests.
#[derive(Debug, Clone, Default)]
pub struct VecClusterSink {
    /// Every recorded entry, in emission order.
    pub entries: Vec<FlightEntry>,
}

impl ClusterTraceSink for VecClusterSink {
    fn node_event(&mut self, node: usize, now: Cycles, event: TraceEvent) {
        self.entries.push(FlightEntry::Node { node, now, event });
    }

    fn cluster_event(&mut self, now: Cycles, event: ClusterTraceEvent) {
        self.entries.push(FlightEntry::Cluster { now, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_key_set_truncates_but_keeps_the_true_total() {
        let mut set = NodeKeySet::default();
        for node in 0..6 {
            set.push(NodeKey {
                node,
                penalty: 0,
                key: (node as u64, 0),
                lower_bounded: node % 2 == 1,
            });
        }
        assert_eq!(set.total(), 6);
        let recorded: Vec<usize> = set.recorded().map(|k| k.node).collect();
        assert_eq!(recorded, vec![0, 1, 2, 3]);
    }

    #[test]
    fn flight_recorder_ring_overwrites_oldest() {
        let mut recorder = FlightRecorder::new(1, 3, 2);
        for i in 0..5u64 {
            recorder.cluster_event(
                Cycles::new(i),
                ClusterTraceEvent::HeapPush {
                    node: 0,
                    bound: Cycles::new(i),
                },
            );
        }
        assert_eq!(recorder.total_events(), 5);
        let times: Vec<u64> = recorder.events().map(|e| e.at().get()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        for i in 0..4u32 {
            recorder.cluster_event(
                Cycles::new(u64::from(i) * 10),
                ClusterTraceEvent::NodeSample {
                    node: 0,
                    queue_depth: i,
                    remaining_work: Cycles::ZERO,
                },
            );
        }
        let depths: Vec<u32> = recorder.node_samples(0).map(|s| s.queue_depth).collect();
        assert_eq!(depths, vec![2, 3]);
        // Samples live in their own rings, not the event ring.
        assert_eq!(recorder.events().count(), 3);
        let dump = recorder.dump();
        assert!(dump.contains("flight recorder"));
        assert!(dump.contains("node 0: last sample"));
    }

    #[test]
    fn json_sink_emits_slices_and_instants() {
        let npu = NpuConfig::paper_default();
        let mut sink = JsonTraceSink::new(2, &npu);
        sink.node_event(
            0,
            Cycles::new(100),
            TraceEvent::Dispatch {
                task: TaskId(7),
                restore: Cycles::ZERO,
            },
        );
        sink.node_event(
            0,
            Cycles::new(900),
            TraceEvent::Complete { task: TaskId(7) },
        );
        sink.cluster_event(
            Cycles::new(950),
            ClusterTraceEvent::Steal {
                task: TaskId(9),
                from: 0,
                to: 1,
            },
        );
        let counts = sink.reconciliation();
        assert_eq!(counts.slices, 1);
        assert_eq!(counts.slice_tasks, 1);
        assert_eq!(counts.steals, 1);
        let json = sink.to_json();
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""name":"task 7""#));
        assert!(json.contains(r#""name":"steal""#));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullClusterSink::ENABLED) };
        const { assert!(!<NodeTap<NullClusterSink> as TraceSink>::ENABLED) };
        const { assert!(<NodeTap<FlightRecorder> as TraceSink>::ENABLED) };
    }
}
