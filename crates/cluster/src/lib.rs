//! Multi-NPU cluster serving layer for the PREMA reproduction.
//!
//! The paper's motivating scenario (Section I) is a cloud ML-as-a-Service
//! fleet: consolidated NPUs serving sustained multi-tenant inference
//! traffic with mixed priorities, where a latency-critical request must not
//! sit behind a batch job. The evaluation then studies one preemptible NPU
//! under a fixed batch of requests; this crate closes the loop back to the
//! serving scenario by composing N *unmodified* single-NPU engines
//! ([`prema_core::NpuSimulator`]) behind a front-end dispatcher and driving
//! them with open-loop arrival streams
//! ([`prema_workload::arrivals`]) — the standard methodology for
//! characterizing sustained-throughput server behaviour.
//!
//! ```text
//!                      +--------------------------+
//!   open-loop stream   |  Dispatcher (policy)     |     node 0: NpuSimulator
//!   Poisson / bursty / |  random | round-robin |  | --> node 1: NpuSimulator
//!   diurnal arrivals   |  jsq | least-work |      | --> node 2: NpuSimulator
//!   w/ priority mix    |  predictive              |     node 3: NpuSimulator
//!                      +--------------------------+
//!                        front-end ledgers only         per-node scheduler
//!                        (predictor estimates)          (NP-FCFS ... PREMA)
//! ```
//!
//! * [`dispatch`] — the five front-end policies. The *predictive* policy
//!   reuses the same [`prema_predictor::AnalyticalPredictor`] estimates
//!   PREMA's token scheduler consumes (Algorithm 1 / Section V-B) together
//!   with request priorities, picking the node that minimizes the request's
//!   estimated completion given the work that actually outranks it there —
//!   PREMA's predictor-plus-priority reasoning lifted to cluster scope.
//! * [`cluster`] — the deterministic two-stage *open-loop* simulation:
//!   commit every request to a node in arrival order, then run each node's
//!   engine to completion (optionally fanned out over cores,
//!   bit-identically).
//! * [`online`] — the *closed-loop* path: a global event queue interleaves
//!   arrivals with node execution (each node a resumable
//!   [`prema_core::SimSession`]), so every dispatch decision reads the
//!   nodes' actual state — live queue depth, true remaining work — and two
//!   policies impossible open-loop become expressible: work stealing on
//!   node idle and SLA-aware admission shedding.
//! * [`faults`] — node fault injection for the closed-loop path: a
//!   [`prema_workload::FaultSchedule`] crashes (salvaging resident work at
//!   its last checkpoint commit point), freezes, or *degrades* nodes
//!   mid-run (a straggler window at a fractional clock), and a
//!   [`RecoveryConfig`] governs re-dispatch — retry budget, exponential
//!   backoff, failure-aware dispatch cooldown, and checkpoint-priced resume
//!   versus the restart-from-zero baseline.
//! * [`interconnect`] + [`migration`] — the straggler answer: a priced
//!   cluster fabric (`latency + ceil(bytes / bandwidth)`) and a deadline
//!   monitor that, when a started task's predicted completion slips past
//!   its SLA, compares stay-vs-move cost and evacuates the task's
//!   checkpoint context to a healthier node, with hysteresis and a
//!   per-node budget preventing thrash.
//! * [`metrics`] — cluster-wide ANTT/STP, queueing-delay vs service-time
//!   breakdown, p50/p95/p99 turnaround tails, Figure 13-style SLA curves,
//!   per-node utilization, and the deterministic outcome digest the bench
//!   baseline gate compares (shared by both paths).
//!
//! # Example
//!
//! ```
//! use prema_cluster::{ClusterConfig, ClusterMetrics, ClusterSimulator, DispatchPolicy};
//! use prema_core::SchedulerConfig;
//! use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
//! use npu_sim::NpuConfig;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let stream = generate_open_loop(&OpenLoopConfig::poisson(0.5, 30.0), &mut rng);
//! let cluster = ClusterSimulator::new(ClusterConfig::new(
//!     4,
//!     SchedulerConfig::paper_default(),
//!     DispatchPolicy::Predictive,
//! ));
//! let outcome = cluster.run_requests(&stream.requests, None);
//! assert_eq!(outcome.task_count(), stream.requests.len());
//! let metrics = ClusterMetrics::from_outcome(&outcome, &NpuConfig::paper_default());
//! assert!(metrics.antt >= 1.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
mod contender;
pub mod dispatch;
mod event_heap;
pub mod faults;
pub mod interconnect;
pub mod metrics;
pub mod migration;
pub mod online;
pub mod trace;

pub use cluster::{ClusterConfig, ClusterOutcome, ClusterSimulator, NodeAssignment};
pub use dispatch::{DispatchPolicy, Dispatcher};
pub use faults::{ClusterFaultPlan, RecoveryConfig, RecoveryRecord};
pub use interconnect::{InterconnectConfig, LinkState, LinkTopology};
pub use metrics::{fold_hashes, outcome_hash, ClusterMetrics};
pub use migration::{
    CustodyConfig, CustodyError, MigrationConfig, MigrationRecord, RedirectRecord,
};
pub use online::{
    online_outcome_hash, OnlineClusterConfig, OnlineClusterSimulator, OnlineDispatchPolicy,
    OnlineOutcome, SlaAdmissionConfig,
};
pub use trace::{
    ClusterTraceEvent, ClusterTraceSink, FaultTraceKind, FlightEntry, FlightRecorder,
    JsonTraceSink, LinkTraceKind, NodeKey, NodeKeySet, NodeSamplePoint, NodeTap, NullClusterSink,
    TraceReconciliation, TransferFailReason, VecClusterSink, MAX_TRACE_NODES,
};
