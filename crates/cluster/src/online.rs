//! Closed-loop (online) multi-NPU cluster simulation: dispatch on *observed*
//! node state.
//!
//! The open-loop path ([`crate::cluster`]) commits every request to a node
//! up front against front-end FCFS-approximation ledgers and only then
//! simulates the nodes; the dispatcher never sees a real queue. This module
//! closes that loop, which is PREMA's core architectural claim applied at
//! cluster scope: scheduling decisions should react to *observed* system
//! state (live queue depths, the predictor's remaining-work estimates over
//! each task's true progress) rather than static assignment.
//!
//! [`OnlineClusterSimulator`] runs a global event queue that interleaves
//! request arrivals with node execution. Every node is a paused
//! [`prema_core::SimSession`]; at each arrival the dispatcher inspects the
//! nodes' *actual* state through the session's closed-loop surface, commits
//! the request to the best node ([`SimSession::inject`]), and execution
//! resumes. Two drivers produce bit-identical results:
//!
//! * [`OnlineClusterSimulator::run`] — the production *event-heap* loop
//!   (see the crate-private `event_heap` module): per-node completion certificates in a
//!   lazily invalidated min-heap, branch-and-bound dispatch, and the
//!   engine's O(1) incremental aggregates, so a global event advances only
//!   the nodes it actually concerns.
//! * [`OnlineClusterSimulator::run_reference`] — the naive stepping loop
//!   PR 4 shipped, kept in this module as the semantic oracle (and the
//!   baseline of the `cluster-scale` bench): every global event advances
//!   *all* sessions via [`SimSession::run_until`], and every decision
//!   rescans every node's residents.
//!
//! Two mechanisms that only a closed loop can express ride on the same
//! surface:
//!
//! * **Work stealing** ([`OnlineClusterConfig::work_stealing`]) — when a
//!   node drains while others hold never-started waiting work, the idle
//!   node takes over the largest such task ([`SimSession::revoke`] on the
//!   victim, inject on the thief). The global loop steps node execution to
//!   every completion bound between arrivals, so idleness is detected at
//!   the completion that caused it, not at the next arrival.
//! * **SLA-aware admission** ([`OnlineClusterConfig::admission`]) — at each
//!   arrival the front-end predicts the p99 turnaround over all resident
//!   work plus the newcomer (per node: remaining work drained in
//!   priority-then-arrival order); while the prediction exceeds the target,
//!   the lowest-priority never-started task cluster-wide (possibly the
//!   newcomer itself) is shed instead of served.
//!
//! Both the open- and closed-loop paths produce a [`ClusterOutcome`], so
//! [`crate::metrics::ClusterMetrics`] and the deterministic
//! [`crate::metrics::outcome_hash`] apply to either; the closed-loop extras
//! (shed requests, steal count) live in [`OnlineOutcome`] and fold into
//! [`online_outcome_hash`]. Everything is a pure function of the inputs —
//! no RNG at all on the closed-loop path — pinned by `tests/determinism.rs`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use npu_sim::{Cycles, NpuConfig};
use prema_core::{
    NpuSimulator, PreparedTask, Priority, ResidentTask, SchedulerConfig, SimSession, TaskId,
    TaskRequest,
};
use prema_metrics::Percentiles;

use crate::cluster::{ClusterOutcome, NodeAssignment};
use crate::metrics::fold_hashes;

/// Which live-state signal the closed-loop dispatcher minimizes at each
/// arrival. These mirror the open-loop policies of
/// [`crate::dispatch::DispatchPolicy`], but read the nodes' *actual* state
/// instead of front-end ledger approximations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OnlineDispatchPolicy {
    /// Join-shortest-queue over the live queue depth (running + waiting).
    ShortestQueue,
    /// Least predicted remaining work over resident tasks, using each
    /// task's true progress.
    LeastWork,
    /// Priority-aware: least predicted remaining work of equal-or-higher
    /// priority (the work the node's preemptive scheduler will actually run
    /// before the newcomer).
    Predictive,
}

impl OnlineDispatchPolicy {
    /// A short stable label for reports and baselines.
    pub fn label(self) -> &'static str {
        match self {
            OnlineDispatchPolicy::ShortestQueue => "jsq-live",
            OnlineDispatchPolicy::LeastWork => "least-work-live",
            OnlineDispatchPolicy::Predictive => "predictive-live",
        }
    }
}

impl std::fmt::Display for OnlineDispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// SLA-aware admission control: shed lowest-priority work whenever the
/// predicted p99 turnaround exceeds the target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaAdmissionConfig {
    /// The p99 turnaround target, in milliseconds on the cluster NPU's
    /// clock. When an arrival pushes the *predicted* p99 over this value,
    /// never-started lowest-priority work is shed until the prediction
    /// recovers (or nothing sheddable remains).
    pub target_p99_ms: f64,
}

/// Configuration of a closed-loop cluster simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineClusterConfig {
    /// Number of NPU nodes behind the front-end.
    pub nodes: usize,
    /// The NPU configuration every node runs (homogeneous cluster).
    pub npu: NpuConfig,
    /// The scheduler every node runs (e.g. NP-FCFS or Dynamic-PREMA).
    pub scheduler: SchedulerConfig,
    /// The live-state signal the dispatcher minimizes.
    pub dispatch: OnlineDispatchPolicy,
    /// Whether idle nodes steal never-started waiting work from loaded
    /// peers.
    pub work_stealing: bool,
    /// Optional SLA-aware admission control.
    pub admission: Option<SlaAdmissionConfig>,
}

impl OnlineClusterConfig {
    /// A closed-loop cluster of `nodes` paper-default NPUs: no stealing, no
    /// admission control.
    pub fn new(nodes: usize, scheduler: SchedulerConfig, dispatch: OnlineDispatchPolicy) -> Self {
        OnlineClusterConfig {
            nodes,
            npu: NpuConfig::paper_default(),
            scheduler,
            dispatch,
            work_stealing: false,
            admission: None,
        }
    }

    /// Enables work stealing on node idle.
    pub fn with_work_stealing(mut self) -> Self {
        self.work_stealing = true;
        self
    }

    /// Enables SLA-aware admission at the given p99 target.
    pub fn with_admission(mut self, target_p99_ms: f64) -> Self {
        self.admission = Some(SlaAdmissionConfig { target_p99_ms });
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster must have at least one node".into());
        }
        self.npu.validate()?;
        self.scheduler.validate()?;
        if let Some(admission) = &self.admission {
            if !admission.target_p99_ms.is_finite() || admission.target_p99_ms <= 0.0 {
                return Err("admission p99 target must be positive and finite".into());
            }
        }
        Ok(())
    }
}

/// Results of one closed-loop cluster simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// The served work, in the same shape the open-loop path produces:
    /// per-node engine outcomes plus the assignments (each request's *final*
    /// serving node — a stolen task reports the thief). Shed requests appear
    /// in neither.
    pub cluster: ClusterOutcome,
    /// Requests shed by admission control, in shed order.
    pub shed: Vec<TaskRequest>,
    /// Number of work-stealing migrations performed.
    pub steals: u64,
}

impl OnlineOutcome {
    /// Number of served tasks.
    pub fn served(&self) -> usize {
        self.cluster.task_count()
    }
}

/// The deterministic digest of a closed-loop outcome: the open-loop
/// [`crate::metrics::outcome_hash`] over the served work, folded with the
/// shed request IDs and the steal count.
pub fn online_outcome_hash(outcome: &OnlineOutcome) -> u64 {
    fold_hashes(
        std::iter::once(crate::metrics::outcome_hash(&outcome.cluster))
            .chain(outcome.shed.iter().map(|request| request.id.0))
            .chain(std::iter::once(outcome.steals)),
    )
}

/// The closed-loop multi-NPU cluster simulator.
#[derive(Debug, Clone)]
pub struct OnlineClusterSimulator {
    config: OnlineClusterConfig,
}

impl OnlineClusterSimulator {
    /// Creates a closed-loop cluster simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: OnlineClusterConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid OnlineClusterConfig: {msg}");
        }
        OnlineClusterSimulator { config }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &OnlineClusterConfig {
        &self.config
    }

    /// Runs the closed-loop simulation over the prepared tasks: arrivals
    /// interleaved with node execution, each arrival dispatched on the
    /// nodes' live state. An empty task list yields an empty outcome.
    ///
    /// This is the production *event-heap* loop (see
    /// the `event_heap` module): node completion bounds live in a lazily
    /// invalidated binary min-heap, only nodes whose events are due (or
    /// that genuinely contend for a dispatch decision) are advanced per
    /// global event, and all dispatch / stealing / admission signals come
    /// from the engine's O(1) incremental aggregates. It is bit-identical
    /// to [`OnlineClusterSimulator::run_reference`] — same records, same
    /// assignments, same shed and steal sequences, same
    /// [`online_outcome_hash`] — pinned by a property test across random
    /// node counts, policies and arrival processes.
    ///
    /// # Panics
    ///
    /// Panics if task IDs are not unique across the whole cluster workload.
    pub fn run(&self, tasks: &[PreparedTask]) -> OnlineOutcome {
        assert_unique_ids(tasks);
        crate::event_heap::run(&self.config, tasks)
    }

    /// The naive stepping loop PR 4 shipped, kept as the semantic oracle
    /// for [`OnlineClusterSimulator::run`] and as the baseline the
    /// `cluster-scale` bench measures the event-heap loop against: every
    /// global event (arrival, and with stealing every completion bound)
    /// advances *all* node sessions, and every dispatch / admission /
    /// stealing decision rescans every node's residents — O(events x
    /// nodes) and worse. Deliberately computes its signals from resident
    /// scans rather than the engine's incremental aggregates, so the
    /// equivalence property test cross-checks the aggregates against an
    /// independent implementation.
    ///
    /// # Panics
    ///
    /// Panics if task IDs are not unique across the whole cluster workload.
    pub fn run_reference(&self, tasks: &[PreparedTask]) -> OnlineOutcome {
        assert_unique_ids(tasks);

        let simulator = NpuSimulator::new(self.config.npu.clone(), self.config.scheduler.clone());
        let mut sessions: Vec<SimSession> = (0..self.config.nodes)
            .map(|_| simulator.session(&[]))
            .collect();

        let order = arrival_order(tasks);
        let mut assignments: Vec<NodeAssignment> = Vec::with_capacity(tasks.len());
        // Index into `assignments` per task, so steals can rewrite the
        // serving node (lookups only — never iterated).
        let mut assignment_index: HashMap<TaskId, usize> = HashMap::with_capacity(tasks.len());
        let mut shed: Vec<TaskRequest> = Vec::new();
        let mut steals = 0u64;

        for &i in &order {
            let task = &tasks[i];
            let now = task.request.arrival;
            self.advance_to(
                &mut sessions,
                now,
                &mut steals,
                &mut assignments,
                &assignment_index,
            );

            let node = self.pick_node(&sessions, task);
            if let Some(admission) = self.config.admission {
                if !self.admit(&mut sessions, task, node, admission, &mut shed) {
                    continue;
                }
            }
            assignment_index.insert(task.request.id, assignments.len());
            assignments.push(NodeAssignment {
                task: task.request.id,
                node,
            });
            sessions[node].inject(task.clone());
        }

        // Drain every node (still stealing at each completion bound).
        self.advance_to(
            &mut sessions,
            Cycles::MAX,
            &mut steals,
            &mut assignments,
            &assignment_index,
        );

        finish_outcome(sessions, assignments, shed, steals)
    }

    /// Advances every node to `t`. With work stealing enabled, execution is
    /// stepped to every completion bound on the way, so a node that drains
    /// between arrivals steals at its drain moment rather than at the next
    /// arrival.
    fn advance_to(
        &self,
        sessions: &mut [SimSession],
        t: Cycles,
        steals: &mut u64,
        assignments: &mut [NodeAssignment],
        assignment_index: &HashMap<TaskId, usize>,
    ) {
        if !self.config.work_stealing {
            for session in sessions.iter_mut() {
                let _ = session.run_until(t);
            }
            return;
        }
        loop {
            // The earliest moment any node's task set can shrink. Bounds are
            // strictly in the future (a paused node is running or idle), so
            // every iteration advances the clock and the loop terminates.
            let bound = sessions
                .iter()
                .filter_map(SimSession::next_completion_time)
                .min();
            let step = match bound {
                Some(bound) if bound < t => bound,
                _ => t,
            };
            for session in sessions.iter_mut() {
                let _ = session.run_until(step);
            }
            *steals += steal_onto_idle_nodes(sessions, assignments, assignment_index);
            if step == t {
                return;
            }
        }
    }

    /// The dispatch decision: the node minimizing the configured live-state
    /// signal. Ties break toward the node with the least total remaining
    /// work, then the lowest index — without the load-aware tie-break, a
    /// high-priority arrival in a mostly-low-priority mix sees near-zero
    /// blocking work on *every* node and the whole high tier would pile
    /// onto node 0.
    ///
    /// Deliberately computes the work signals by scanning every node's
    /// residents — the PR 4 implementation this reference path preserves —
    /// rather than through the engine's incremental totals, so the
    /// equivalence property test cross-checks those totals against an
    /// independent computation.
    fn pick_node(&self, sessions: &[SimSession], task: &PreparedTask) -> usize {
        let priority = task.request.priority;
        let score = |session: &SimSession| -> (u64, u64) {
            let residents = session.resident_tasks();
            let remaining: Cycles = residents
                .iter()
                .map(ResidentTask::estimated_remaining)
                .sum();
            let remaining = remaining.get();
            match self.config.dispatch {
                OnlineDispatchPolicy::ShortestQueue => (session.queue_depth() as u64, remaining),
                OnlineDispatchPolicy::LeastWork => (remaining, remaining),
                OnlineDispatchPolicy::Predictive => {
                    let blocking: Cycles = residents
                        .iter()
                        .filter(|resident| resident.priority >= priority)
                        .map(ResidentTask::estimated_remaining)
                        .sum();
                    (blocking.get(), remaining)
                }
            }
        };
        sessions
            .iter()
            .enumerate()
            .min_by_key(|(index, session)| (score(session), *index))
            .expect("at least one node")
            .0
    }

    /// SLA-aware admission: predicts the cluster-wide p99 turnaround over
    /// all resident tasks plus the newcomer (headed for `node`); while it
    /// exceeds the target, sheds the lowest-priority never-started task
    /// cluster-wide. Returns whether the newcomer survived (it is pushed to
    /// `shed` itself otherwise).
    fn admit(
        &self,
        sessions: &mut [SimSession],
        task: &PreparedTask,
        node: usize,
        admission: SlaAdmissionConfig,
        shed: &mut Vec<TaskRequest>,
    ) -> bool {
        let npu = &self.config.npu;
        let incoming_priority = task.request.priority;
        let incoming_estimate = task.estimated_cycles();
        loop {
            let mut predicted_ms: Vec<f64> = Vec::new();
            for session in sessions.iter() {
                predicted_turnarounds_ms(session, npu, &mut predicted_ms);
            }
            // The newcomer's own predicted turnaround, from a resident scan
            // like everything else on this reference path.
            let blocking: Cycles = sessions[node]
                .resident_tasks()
                .iter()
                .filter(|resident| resident.priority >= incoming_priority)
                .map(ResidentTask::estimated_remaining)
                .sum();
            let incoming_turnaround = blocking + incoming_estimate;
            predicted_ms.push(npu.cycles_to_millis(incoming_turnaround));
            let p99 = Percentiles::summarize(&predicted_ms)
                .expect("the newcomer is always present")
                .p99;
            if p99 <= admission.target_p99_ms {
                return true;
            }

            // Shed candidate: lowest priority first, then the largest
            // predicted remaining work, then the highest (newest) id. The
            // newcomer competes with the same key.
            let mut candidate: Option<(ShedKey, usize, TaskId)> = None;
            for (index, session) in sessions.iter().enumerate() {
                for resident in session.resident_tasks() {
                    if !resident.revocable {
                        continue;
                    }
                    let key = ShedKey::of(
                        resident.priority,
                        resident.estimated_remaining(),
                        resident.id,
                    );
                    if candidate.as_ref().is_none_or(|(best, _, _)| key < *best) {
                        candidate = Some((key, index, resident.id));
                    }
                }
            }
            let incoming_key = ShedKey::of(incoming_priority, incoming_estimate, task.request.id);
            match candidate {
                Some((key, victim_node, victim_id)) if key < incoming_key => {
                    let revoked = sessions[victim_node]
                        .revoke(victim_id)
                        .expect("resident was reported revocable");
                    shed.push(revoked.request);
                }
                _ => {
                    // The newcomer is itself the lowest-priority work (or
                    // nothing else is sheddable): reject it.
                    shed.push(task.request);
                    return false;
                }
            }
        }
    }
}

/// The shed-preference ordering: lowest priority, then largest predicted
/// remaining work, then newest id. Smaller keys shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct ShedKey(
    Priority,
    std::cmp::Reverse<Cycles>,
    std::cmp::Reverse<TaskId>,
);

impl ShedKey {
    pub(crate) fn of(priority: Priority, remaining: Cycles, id: TaskId) -> Self {
        ShedKey(
            priority,
            std::cmp::Reverse(remaining),
            std::cmp::Reverse(id),
        )
    }
}

/// Panics unless every task id is unique.
pub(crate) fn assert_unique_ids(tasks: &[PreparedTask]) {
    let mut ids: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), tasks.len(), "task IDs must be unique");
}

/// The global arrival queue: task indices in the order a front-end sees
/// requests — (arrival, id)-sorted.
pub(crate) fn arrival_order(tasks: &[PreparedTask]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (tasks[i].request.arrival, tasks[i].request.id));
    order
}

/// Finishes every session and assembles the [`OnlineOutcome`], dropping
/// shed tasks' assignment entries so assignments biject onto records.
pub(crate) fn finish_outcome(
    sessions: Vec<SimSession>,
    mut assignments: Vec<NodeAssignment>,
    shed: Vec<TaskRequest>,
    steals: u64,
) -> OnlineOutcome {
    if !shed.is_empty() {
        let shed_ids: std::collections::HashSet<TaskId> =
            shed.iter().map(|request| request.id).collect();
        assignments.retain(|assignment| !shed_ids.contains(&assignment.task));
    }
    let node_outcomes = sessions.into_iter().map(SimSession::finish).collect();
    OnlineOutcome {
        cluster: ClusterOutcome {
            node_outcomes,
            assignments,
        },
        shed,
        steals,
    }
}

/// Appends the predicted turnaround (milliseconds) of every resident task of
/// one node: remaining work is drained in priority-then-arrival order (the
/// preemptive scheduler's effective order), so task `k`'s predicted
/// completion is the node clock plus the remaining work at or ahead of it.
fn predicted_turnarounds_ms(session: &SimSession, npu: &NpuConfig, out: &mut Vec<f64>) {
    let mut residents: Vec<ResidentTask> = session.resident_tasks();
    residents.sort_by_key(|resident| {
        (
            std::cmp::Reverse(resident.priority),
            resident.arrival,
            resident.id,
        )
    });
    let now = session.now();
    let mut backlog = Cycles::ZERO;
    for resident in residents {
        backlog += resident.estimated_remaining();
        let completion = now + backlog;
        out.push(npu.cycles_to_millis(completion - resident.arrival));
    }
}

/// One round of work stealing: every idle node (live queue depth zero) takes
/// the largest never-started waiting task from the peer holding the most
/// such work. Rewrites the victim's assignment to the thief. Returns the
/// number of migrations.
fn steal_onto_idle_nodes(
    sessions: &mut [SimSession],
    assignments: &mut [NodeAssignment],
    assignment_index: &HashMap<TaskId, usize>,
) -> u64 {
    let mut steals = 0u64;
    loop {
        let Some(thief) = sessions.iter().position(|s| s.queue_depth() == 0) else {
            return steals;
        };
        // Victim: the node with the most stealable (never-started) predicted
        // work, provided it keeps at least one task for itself. One pass per
        // node finds both the stealable sum and the task to take — the
        // revocable task with the largest remaining work, ties to the
        // lowest id.
        let mut victim: Option<(Cycles, usize, ResidentTask)> = None;
        for (index, session) in sessions.iter().enumerate() {
            if session.queue_depth() < 2 {
                continue;
            }
            let mut stealable = Cycles::ZERO;
            let mut best: Option<ResidentTask> = None;
            for resident in session.resident_tasks() {
                if !resident.revocable {
                    continue;
                }
                stealable += resident.estimated_remaining();
                let better = best.as_ref().is_none_or(|current| {
                    (
                        resident.estimated_remaining(),
                        std::cmp::Reverse(resident.id),
                    ) > (current.estimated_remaining(), std::cmp::Reverse(current.id))
                });
                if better {
                    best = Some(resident);
                }
            }
            if stealable.is_zero() {
                continue;
            }
            if victim.as_ref().is_none_or(|(most, _, _)| stealable > *most) {
                victim = Some((
                    stealable,
                    index,
                    best.expect("nonzero stealable work has a best task"),
                ));
            }
        }
        let Some((_, victim, stolen)) = victim else {
            return steals;
        };
        let prepared = sessions[victim]
            .revoke(stolen.id)
            .expect("stolen task was revocable");
        sessions[thief].inject(prepared);
        if let Some(&slot) = assignment_index.get(&stolen.id) {
            assignments[slot].node = thief;
        }
        steals += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
    use prema_workload::prepare::prepare_requests;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prepared(rate: f64, duration: f64, seed: u64) -> Vec<PreparedTask> {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = generate_open_loop(&OpenLoopConfig::poisson(rate, duration), &mut rng);
        prepare_requests(&spec.requests, &NpuConfig::paper_default(), None)
    }

    fn simulator(dispatch: OnlineDispatchPolicy) -> OnlineClusterSimulator {
        OnlineClusterSimulator::new(OnlineClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            dispatch,
        ))
    }

    #[test]
    fn every_request_is_served_exactly_once_without_admission() {
        let tasks = prepared(0.6, 60.0, 0xA11);
        for dispatch in [
            OnlineDispatchPolicy::ShortestQueue,
            OnlineDispatchPolicy::LeastWork,
            OnlineDispatchPolicy::Predictive,
        ] {
            let outcome = simulator(dispatch).run(&tasks);
            assert!(outcome.shed.is_empty(), "{dispatch}");
            assert_eq!(outcome.served(), tasks.len(), "{dispatch}");
            let mut expected: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
            expected.sort_unstable();
            let served: Vec<TaskId> = outcome
                .cluster
                .merged_records()
                .iter()
                .map(|r| r.id)
                .collect();
            assert_eq!(served, expected, "{dispatch}");
            // Each record lives on the node its assignment names.
            assert_eq!(outcome.cluster.assignments.len(), tasks.len());
            for assignment in &outcome.cluster.assignments {
                let node = &outcome.cluster.node_outcomes[assignment.node];
                assert!(node.record(assignment.task).is_some(), "{dispatch}");
            }
        }
    }

    #[test]
    fn closed_loop_runs_are_reproducible() {
        let tasks = prepared(0.8, 60.0, 0xB22);
        let config = OnlineClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_work_stealing();
        let a = OnlineClusterSimulator::new(config.clone()).run(&tasks);
        let b = OnlineClusterSimulator::new(config).run(&tasks);
        assert_eq!(a, b);
        assert_eq!(online_outcome_hash(&a), online_outcome_hash(&b));
    }

    #[test]
    fn work_stealing_rewrites_assignments_consistently() {
        // A two-node cluster with one long queue invites stealing: all
        // requests arrive nearly at once, so the live signals are near-equal
        // at dispatch and completions expose idleness later.
        let tasks = prepared(2.0, 20.0, 0xC33);
        let config = OnlineClusterConfig::new(
            2,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::ShortestQueue,
        )
        .with_work_stealing();
        let outcome = OnlineClusterSimulator::new(config).run(&tasks);
        assert_eq!(outcome.served(), tasks.len());
        // Every assignment matches the node that actually served the task,
        // steals included.
        for assignment in &outcome.cluster.assignments {
            let node = &outcome.cluster.node_outcomes[assignment.node];
            assert!(node.record(assignment.task).is_some());
        }
    }

    #[test]
    fn admission_stays_bit_identical_when_estimates_undershoot() {
        // Regression: with an underestimating predictor, a running task's
        // estimated remaining clamps at zero while it keeps executing, so a
        // node's predicted turnarounds *grow with the clock* between state
        // versions. The heap loop's admission cache froze the runner-pinned
        // entries as absolute constants and reused them across a shed-only
        // arrival (which changes no node's state version), disagreeing with
        // the reference's fresh recomputation inside exactly that overrun
        // window. Estimates at half the true plan length, a shed-prone p99
        // target and an arrival landing in the overrun window pin the fix.
        use dnn_models::ModelKind;
        let npu = NpuConfig::paper_default();
        let half = |model: ModelKind, id: u64, arrival: u64| {
            let exact =
                prema_core::PreparedTask::prepare(TaskRequest::new(TaskId(id), model), &npu)
                    .isolated_cycles();
            prema_core::PreparedTask::prepare(
                TaskRequest::new(TaskId(id), model)
                    .with_arrival(Cycles::new(arrival))
                    .with_estimate(exact / 2),
                &npu,
            )
        };
        let vgg = prema_core::PreparedTask::prepare(
            TaskRequest::new(TaskId(0), ModelKind::CnnVggNet),
            &npu,
        )
        .isolated_cycles()
        .get();
        // Arrival 1 lands before the VggNet runner exhausts its halved
        // estimate (and should be shed); arrival 2 lands in the overrun
        // window (estimate exhausted at vgg/2, true completion at vgg).
        let tasks = vec![
            half(ModelKind::CnnVggNet, 0, 0),
            half(ModelKind::CnnAlexNet, 1, vgg / 10),
            half(ModelKind::CnnAlexNet, 2, vgg / 2 + vgg / 4),
        ];
        for target_ms in [1.0, 2.0, 3.0, 3.5, 4.0, 5.0, 8.0] {
            let config = OnlineClusterConfig::new(
                1,
                SchedulerConfig::np_fcfs(),
                OnlineDispatchPolicy::Predictive,
            )
            .with_admission(target_ms);
            let simulator = OnlineClusterSimulator::new(config);
            let heap = simulator.run(&tasks);
            let reference = simulator.run_reference(&tasks);
            assert_eq!(heap, reference, "target {target_ms} ms");
        }
    }

    #[test]
    fn admission_sheds_under_an_impossible_target_and_serves_the_rest() {
        let tasks = prepared(0.8, 60.0, 0xD44);
        let config = OnlineClusterConfig::new(
            2,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_admission(1e-3);
        let outcome = OnlineClusterSimulator::new(config).run(&tasks);
        // A microsecond-scale p99 target is unattainable: work is shed.
        assert!(!outcome.shed.is_empty());
        assert_eq!(outcome.served() + outcome.shed.len(), tasks.len());
        // Serving and shedding partition the request ids.
        let mut all: Vec<TaskId> = outcome
            .cluster
            .merged_records()
            .iter()
            .map(|r| r.id)
            .chain(outcome.shed.iter().map(|r| r.id))
            .collect();
        all.sort_unstable();
        let mut expected: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
        // Assignments cover exactly the served tasks.
        assert_eq!(outcome.cluster.assignments.len(), outcome.served());
    }

    #[test]
    fn generous_admission_target_sheds_nothing() {
        let tasks = prepared(0.4, 40.0, 0xE55);
        let config = OnlineClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_admission(1e9);
        let outcome = OnlineClusterSimulator::new(config).run(&tasks);
        assert!(outcome.shed.is_empty());
        assert_eq!(outcome.served(), tasks.len());
    }

    #[test]
    fn empty_workload_yields_empty_outcome() {
        let outcome = simulator(OnlineDispatchPolicy::LeastWork).run(&[]);
        assert_eq!(outcome.served(), 0);
        assert!(outcome.shed.is_empty());
        assert_eq!(outcome.steals, 0);
        assert_eq!(outcome.cluster.makespan(), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "task IDs must be unique")]
    fn duplicate_ids_rejected() {
        use dnn_models::ModelKind;
        let tasks = prepare_requests(
            &[
                TaskRequest::new(TaskId(1), ModelKind::CnnAlexNet),
                TaskRequest::new(TaskId(1), ModelKind::CnnMobileNet),
            ],
            &NpuConfig::paper_default(),
            None,
        );
        let _ = simulator(OnlineDispatchPolicy::ShortestQueue).run(&tasks);
    }

    #[test]
    #[should_panic(expected = "invalid OnlineClusterConfig")]
    fn invalid_config_rejected() {
        let _ = OnlineClusterSimulator::new(OnlineClusterConfig::new(
            0,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        ));
    }
}
