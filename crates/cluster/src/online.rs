//! Closed-loop (online) multi-NPU cluster simulation: dispatch on *observed*
//! node state.
//!
//! The open-loop path ([`crate::cluster`]) commits every request to a node
//! up front against front-end FCFS-approximation ledgers and only then
//! simulates the nodes; the dispatcher never sees a real queue. This module
//! closes that loop, which is PREMA's core architectural claim applied at
//! cluster scope: scheduling decisions should react to *observed* system
//! state (live queue depths, the predictor's remaining-work estimates over
//! each task's true progress) rather than static assignment.
//!
//! [`OnlineClusterSimulator`] runs a global event queue that interleaves
//! request arrivals with node execution. Every node is a paused
//! [`prema_core::SimSession`]; at each arrival the dispatcher inspects the
//! nodes' *actual* state through the session's closed-loop surface, commits
//! the request to the best node ([`SimSession::inject`]), and execution
//! resumes. Two drivers produce bit-identical results:
//!
//! * [`OnlineClusterSimulator::run`] — the production *event-heap* loop
//!   (see the crate-private `event_heap` module): per-node completion certificates in a
//!   lazily invalidated min-heap, branch-and-bound dispatch over an
//!   indexed contender structure (the crate-private `contender` module:
//!   penalty-tiered depth buckets / tournament trees, O(log nodes) per
//!   arrival in lazy modes), and the engine's O(1) incremental
//!   aggregates, so a global event advances only the nodes it actually
//!   concerns.
//! * [`OnlineClusterSimulator::run_reference`] — the naive stepping loop
//!   PR 4 shipped, kept in this module as the semantic oracle (and the
//!   baseline of the `cluster-scale` bench): every global event advances
//!   *all* sessions via [`SimSession::run_until`], and every decision
//!   rescans every node's residents.
//!
//! Two mechanisms that only a closed loop can express ride on the same
//! surface:
//!
//! * **Work stealing** ([`OnlineClusterConfig::work_stealing`]) — when a
//!   node drains while others hold never-started waiting work, the idle
//!   node takes over the largest such task ([`SimSession::revoke`] on the
//!   victim, inject on the thief). The global loop steps node execution to
//!   every completion bound between arrivals, so idleness is detected at
//!   the completion that caused it, not at the next arrival.
//! * **SLA-aware admission** ([`OnlineClusterConfig::admission`]) — at each
//!   arrival the front-end predicts the p99 turnaround over all resident
//!   work plus the newcomer (per node: remaining work drained in
//!   priority-then-arrival order); while the prediction exceeds the target,
//!   the lowest-priority never-started task cluster-wide (possibly the
//!   newcomer itself) is shed instead of served.
//!
//! A third mechanism, **fault tolerance**
//! ([`OnlineClusterConfig::with_faults`]), injects a
//! [`prema_workload::FaultSchedule`] into the same global timeline: a
//! *crash* fails the node ([`SimSession::fail`]), salvaging every resident
//! task at its last checkpoint commit point, and a *freeze* stalls it
//! (a straggler that makes no progress until the window ends). Salvaged
//! work re-enters dispatch under the [`crate::RecoveryConfig`] policy —
//! exponential backoff, a per-task retry budget (exhaustion *abandons* the
//! task, reported separately from admission sheds), and checkpoint-priced
//! resume versus restart-from-zero. Dispatch becomes failure-aware (down
//! and cooling-down nodes are deprioritized) and admission degrades
//! gracefully (the p99 target tightens to the surviving-capacity
//! fraction). Recoveries bypass admission — the task was already admitted
//! once, and re-shedding it would double-count the decision.
//!
//! A fourth mechanism, **straggler tolerance**
//! ([`OnlineClusterConfig::with_migration`]), answers *degrade* windows —
//! nodes that stay up but run at a fractional clock
//! ([`prema_core::SimSession::set_clock_scale`]). A deadline monitor
//! re-checks per-task completion predictions at every global
//! synchronization point; when a started task's prediction slips past its
//! SLA-derived deadline, a stay-vs-move arbiter prices evacuation over the
//! [`crate::InterconnectConfig`] fabric (checkpoint transfer plus restore
//! DMA plus queueing at the target, against the scaled remaining time on
//! the straggler) and, hysteresis and budget permitting, extracts the task at
//! its last checkpoint commit point
//! ([`prema_core::SimSession::checkpoint_out`]) and ships it — in-flight
//! tasks land as arrival events at the destination. See [`crate::migration`]'s
//! module docs for the full decision pipeline.
//!
//! Both the open- and closed-loop paths produce a [`ClusterOutcome`], so
//! [`crate::metrics::ClusterMetrics`] and the deterministic
//! [`crate::metrics::outcome_hash`] apply to either; the closed-loop extras
//! (shed requests, steal count) live in [`OnlineOutcome`] and fold into
//! [`online_outcome_hash`]. Everything is a pure function of the inputs —
//! no RNG at all on the closed-loop path — pinned by `tests/determinism.rs`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use npu_sim::{Cycles, NpuConfig};
use prema_core::{
    NpuSimulator, PreparedTask, Priority, ResidentTask, SchedulerConfig, SimSession, TaskId,
    TaskRequest, TraceSink,
};
use prema_metrics::Percentiles;

use prema_workload::FaultKind;

use crate::cluster::{ClusterOutcome, NodeAssignment};
use crate::faults::{ClusterFaultPlan, FaultDriver, FaultEvent, FaultTally, RecoveryRecord};
use crate::metrics::fold_hashes;
use crate::migration::{
    CustodyError, MigrationConfig, MigrationDriver, MigrationRecord, MigrationTally,
    RedirectRecord, TransferEvent,
};
use crate::trace::{
    sample_nodes, ClusterTraceEvent, ClusterTraceSink, FaultTraceKind, NodeKey, NodeKeySet,
    NodeTap, NullClusterSink, TransferFailReason,
};

/// Which live-state signal the closed-loop dispatcher minimizes at each
/// arrival. These mirror the open-loop policies of
/// [`crate::dispatch::DispatchPolicy`], but read the nodes' *actual* state
/// instead of front-end ledger approximations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OnlineDispatchPolicy {
    /// Join-shortest-queue over the live queue depth (running + waiting).
    ShortestQueue,
    /// Least predicted remaining work over resident tasks, using each
    /// task's true progress.
    LeastWork,
    /// Priority-aware: least predicted remaining work of equal-or-higher
    /// priority (the work the node's preemptive scheduler will actually run
    /// before the newcomer).
    Predictive,
}

impl OnlineDispatchPolicy {
    /// A short stable label for reports and baselines.
    pub fn label(self) -> &'static str {
        match self {
            OnlineDispatchPolicy::ShortestQueue => "jsq-live",
            OnlineDispatchPolicy::LeastWork => "least-work-live",
            OnlineDispatchPolicy::Predictive => "predictive-live",
        }
    }
}

impl std::fmt::Display for OnlineDispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// SLA-aware admission control: shed lowest-priority work whenever the
/// predicted p99 turnaround exceeds the target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaAdmissionConfig {
    /// The p99 turnaround target, in milliseconds on the cluster NPU's
    /// clock. When an arrival pushes the *predicted* p99 over this value,
    /// never-started lowest-priority work is shed until the prediction
    /// recovers (or nothing sheddable remains).
    pub target_p99_ms: f64,
}

/// Configuration of a closed-loop cluster simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineClusterConfig {
    /// Number of NPU nodes behind the front-end.
    pub nodes: usize,
    /// The NPU configuration every node runs (homogeneous cluster).
    pub npu: NpuConfig,
    /// The scheduler every node runs (e.g. NP-FCFS or Dynamic-PREMA).
    pub scheduler: SchedulerConfig,
    /// The live-state signal the dispatcher minimizes.
    pub dispatch: OnlineDispatchPolicy,
    /// Whether idle nodes steal never-started waiting work from loaded
    /// peers.
    pub work_stealing: bool,
    /// Optional SLA-aware admission control.
    pub admission: Option<SlaAdmissionConfig>,
    /// Optional node fault injection and the recovery policy answering it.
    pub faults: Option<ClusterFaultPlan>,
    /// Optional deadline-triggered checkpoint migration (the straggler
    /// answer — see [`crate::MigrationConfig`]).
    pub migration: Option<MigrationConfig>,
}

impl OnlineClusterConfig {
    /// A closed-loop cluster of `nodes` paper-default NPUs: no stealing, no
    /// admission control.
    pub fn new(nodes: usize, scheduler: SchedulerConfig, dispatch: OnlineDispatchPolicy) -> Self {
        OnlineClusterConfig {
            nodes,
            npu: NpuConfig::paper_default(),
            scheduler,
            dispatch,
            work_stealing: false,
            admission: None,
            faults: None,
            migration: None,
        }
    }

    /// Enables work stealing on node idle.
    pub fn with_work_stealing(mut self) -> Self {
        self.work_stealing = true;
        self
    }

    /// Enables SLA-aware admission at the given p99 target.
    pub fn with_admission(mut self, target_p99_ms: f64) -> Self {
        self.admission = Some(SlaAdmissionConfig { target_p99_ms });
        self
    }

    /// Injects the given fault plan into the run's global timeline.
    pub fn with_faults(mut self, faults: ClusterFaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables deadline-triggered checkpoint migration under the given
    /// policy.
    pub fn with_migration(mut self, migration: MigrationConfig) -> Self {
        self.migration = Some(migration);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster must have at least one node".into());
        }
        self.npu.validate()?;
        self.scheduler.validate()?;
        if let Some(admission) = &self.admission {
            if !admission.target_p99_ms.is_finite() || admission.target_p99_ms <= 0.0 {
                return Err("admission p99 target must be positive and finite".into());
            }
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
            if let Some(event) = faults
                .schedule
                .events
                .iter()
                .find(|event| event.node >= self.nodes)
            {
                return Err(format!(
                    "fault schedule names node {} but the cluster has {} nodes",
                    event.node, self.nodes
                ));
            }
            if let Some(link) = faults
                .schedule
                .links
                .iter()
                .find(|link| link.from >= self.nodes || link.to >= self.nodes)
            {
                return Err(format!(
                    "link fault window names node {} but the cluster has {} nodes",
                    link.from.max(link.to),
                    self.nodes
                ));
            }
        }
        if let Some(migration) = &self.migration {
            migration.validate()?;
            if self.nodes < 2 {
                return Err("migration needs at least two nodes (there is nowhere to move)".into());
            }
        }
        Ok(())
    }
}

/// Results of one closed-loop cluster simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// The served work, in the same shape the open-loop path produces:
    /// per-node engine outcomes plus the assignments (each request's *final*
    /// serving node — a stolen task reports the thief). Shed requests appear
    /// in neither.
    pub cluster: ClusterOutcome,
    /// Requests shed by admission control, in shed order. Disjoint from
    /// [`OnlineOutcome::abandoned`]: shedding is a *policy* decision made
    /// before service, abandonment is a fault-tolerance failure after it.
    pub shed: Vec<TaskRequest>,
    /// Number of work-stealing migrations performed.
    pub steals: u64,
    /// Requests abandoned after exhausting the recovery retry budget, in
    /// abandonment order.
    pub abandoned: Vec<TaskRequest>,
    /// Number of node crash windows that began.
    pub crashes: u64,
    /// Number of node freeze windows that began.
    pub freezes: u64,
    /// Number of salvaged-task re-dispatches performed.
    pub recoveries: u64,
    /// Every recovery hop, in re-dispatch order.
    pub recovery_log: Vec<RecoveryRecord>,
    /// Per-node total fault-window downtime.
    pub node_downtime: Vec<Cycles>,
    /// Number of degrade windows that began (straggler intervals — the node
    /// stayed up at a fractional clock, so these contribute no downtime).
    pub degrades: u64,
    /// Per-node total time spent inside degrade windows.
    pub node_degraded_time: Vec<Cycles>,
    /// Number of deadline-triggered checkpoint migrations performed.
    pub migrations: u64,
    /// Total checkpoint context moved over the interconnect, in bytes.
    pub migration_bytes: u64,
    /// Every migration hop, in decision order.
    pub migration_log: Vec<MigrationRecord>,
    /// Number of failed in-flight transfer attempts (link drop mid-flight,
    /// delivery deadline expiry, destination down at landing, or no
    /// reachable redirect target). Tasks abandoned after the custody retry
    /// budget runs out join [`OnlineOutcome::abandoned`].
    pub transfer_failures: u64,
    /// Number of redirect relaunches performed after transfer failures.
    pub redirects: u64,
    /// Every redirect hop, in relaunch order.
    pub redirect_log: Vec<RedirectRecord>,
    /// The custody reconciliation verdict: `Some` when tasks were still in
    /// flight when the run ended — every task the cluster took custody of
    /// must land, be abandoned with accounting, or be reported here.
    pub custody_error: Option<CustodyError>,
}

impl OnlineOutcome {
    /// Number of served tasks.
    pub fn served(&self) -> usize {
        self.cluster.task_count()
    }

    /// Whether any fault-tolerance machinery actually fired in this run.
    /// False for fault-free runs *and* for runs configured with an empty
    /// (or never-triggering) schedule, keeping their digests identical.
    pub fn has_fault_activity(&self) -> bool {
        self.crashes > 0
            || self.freezes > 0
            || self.degrades > 0
            || self.recoveries > 0
            || !self.abandoned.is_empty()
    }
}

/// The deterministic digest of a closed-loop outcome: the open-loop
/// [`crate::metrics::outcome_hash`] over the served work, folded with the
/// shed request IDs and the steal count. When fault machinery fired
/// ([`OnlineOutcome::has_fault_activity`]) the fold extends over the
/// abandoned IDs, the fault counters, every recovery hop and the per-node
/// downtime; when degrade windows fired it further extends over the degrade
/// tally, when migrations fired over the migration tally and every
/// migration hop, and when in-flight transfers failed or redirected over
/// the custody tally, every redirect hop and any unreconciled custody
/// verdict. Each extension is gated on its own activity, so runs predating
/// a mechanism (and runs where it never triggers) keep their historical
/// digests byte-for-byte.
pub fn online_outcome_hash(outcome: &OnlineOutcome) -> u64 {
    let mut parts: Vec<u64> = vec![crate::metrics::outcome_hash(&outcome.cluster)];
    parts.extend(outcome.shed.iter().map(|request| request.id.0));
    parts.push(outcome.steals);
    if outcome.has_fault_activity() {
        parts.extend(outcome.abandoned.iter().map(|request| request.id.0));
        parts.extend([outcome.crashes, outcome.freezes, outcome.recoveries]);
        for record in &outcome.recovery_log {
            parts.extend([
                record.task.0,
                record.from_node as u64,
                record.to_node as u64,
                u64::from(record.attempt),
                record.resume_executed.get(),
                record.at.get(),
            ]);
        }
        parts.extend(outcome.node_downtime.iter().map(|downtime| downtime.get()));
    }
    if outcome.degrades > 0 {
        parts.push(outcome.degrades);
        parts.extend(outcome.node_degraded_time.iter().map(|time| time.get()));
    }
    if outcome.migrations > 0 {
        parts.extend([outcome.migrations, outcome.migration_bytes]);
        for record in &outcome.migration_log {
            parts.extend([
                record.task.0,
                record.from_node as u64,
                record.to_node as u64,
                record.bytes,
                record.at.get(),
                record.arrive_at.get(),
            ]);
        }
    }
    if outcome.transfer_failures > 0 || outcome.redirects > 0 {
        parts.extend([outcome.transfer_failures, outcome.redirects]);
        for record in &outcome.redirect_log {
            parts.extend([
                record.task.0,
                record.from_node as u64,
                record.to_node as u64,
                u64::from(record.attempt),
                record.at.get(),
            ]);
        }
    }
    if let Some(error) = &outcome.custody_error {
        parts.extend(error.undelivered.iter().map(|task| task.0));
    }
    fold_hashes(parts)
}

/// The closed-loop multi-NPU cluster simulator.
#[derive(Debug, Clone)]
pub struct OnlineClusterSimulator {
    config: OnlineClusterConfig,
}

impl OnlineClusterSimulator {
    /// Creates a closed-loop cluster simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: OnlineClusterConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid OnlineClusterConfig: {msg}");
        }
        OnlineClusterSimulator { config }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &OnlineClusterConfig {
        &self.config
    }

    /// Runs the closed-loop simulation over the prepared tasks: arrivals
    /// interleaved with node execution, each arrival dispatched on the
    /// nodes' live state. An empty task list yields an empty outcome.
    ///
    /// This is the production *event-heap* loop (see
    /// the `event_heap` module): node completion bounds live in a lazily
    /// invalidated binary min-heap, only nodes whose events are due (or
    /// that genuinely contend for a dispatch decision) are advanced per
    /// global event, and all dispatch / stealing / admission signals come
    /// from the engine's O(1) incremental aggregates. It is bit-identical
    /// to [`OnlineClusterSimulator::run_reference`] — same records, same
    /// assignments, same shed and steal sequences, same
    /// [`online_outcome_hash`] — pinned by a property test across random
    /// node counts, policies and arrival processes.
    ///
    /// # Panics
    ///
    /// Panics if task IDs are not unique across the whole cluster workload.
    pub fn run(&self, tasks: &[PreparedTask]) -> OnlineOutcome {
        assert_unique_ids(tasks);
        crate::event_heap::run(&self.config, tasks)
    }

    /// Like [`OnlineClusterSimulator::run`] with a [`ClusterTraceSink`]
    /// attached: every dispatch decision (with the per-node keys actually
    /// compared), steal, shed, fault, recovery, migration and
    /// certificate-heap event is streamed to `sink`, which is returned
    /// alongside the outcome. Tracing never perturbs the simulation — the
    /// outcome is bit-identical to the untraced run (property-tested by
    /// `tests/trace.rs`).
    ///
    /// # Panics
    ///
    /// Panics if task IDs are not unique across the whole cluster workload.
    pub fn run_traced<C: ClusterTraceSink>(
        &self,
        tasks: &[PreparedTask],
        sink: C,
    ) -> (OnlineOutcome, C) {
        assert_unique_ids(tasks);
        let trace = Rc::new(RefCell::new(sink));
        let outcome = crate::event_heap::run_impl(&self.config, tasks, &trace);
        let sink = Rc::try_unwrap(trace)
            .expect("every node tap is dropped with its finished session")
            .into_inner();
        (outcome, sink)
    }

    /// The naive stepping loop PR 4 shipped, kept as the semantic oracle
    /// for [`OnlineClusterSimulator::run`] and as the baseline the
    /// `cluster-scale` bench measures the event-heap loop against: every
    /// global event (arrival, and with stealing every completion bound)
    /// advances *all* node sessions, and every dispatch / admission /
    /// stealing decision rescans every node's residents — O(events x
    /// nodes) and worse. Deliberately computes its signals from resident
    /// scans rather than the engine's incremental aggregates, so the
    /// equivalence property test cross-checks the aggregates against an
    /// independent implementation.
    ///
    /// # Panics
    ///
    /// Panics if task IDs are not unique across the whole cluster workload.
    pub fn run_reference(&self, tasks: &[PreparedTask]) -> OnlineOutcome {
        assert_unique_ids(tasks);
        let trace = Rc::new(RefCell::new(NullClusterSink));
        self.run_reference_impl(tasks, &trace)
    }

    /// Like [`OnlineClusterSimulator::run_reference`] with a
    /// [`ClusterTraceSink`] attached (the oracle counterpart of
    /// [`OnlineClusterSimulator::run_traced`]).
    ///
    /// # Panics
    ///
    /// Panics if task IDs are not unique across the whole cluster workload.
    pub fn run_reference_traced<C: ClusterTraceSink>(
        &self,
        tasks: &[PreparedTask],
        sink: C,
    ) -> (OnlineOutcome, C) {
        assert_unique_ids(tasks);
        let trace = Rc::new(RefCell::new(sink));
        let outcome = self.run_reference_impl(tasks, &trace);
        let sink = Rc::try_unwrap(trace)
            .expect("every node tap is dropped with its finished session")
            .into_inner();
        (outcome, sink)
    }

    fn run_reference_impl<C: ClusterTraceSink>(
        &self,
        tasks: &[PreparedTask],
        trace: &Rc<RefCell<C>>,
    ) -> OnlineOutcome {
        let simulator = NpuSimulator::new(self.config.npu.clone(), self.config.scheduler.clone());
        let mut sessions: Vec<SimSession<NodeTap<C>>> = (0..self.config.nodes)
            .map(|node| simulator.session_with_sink(&[], NodeTap::new(node, Rc::clone(trace))))
            .collect();

        let order = arrival_order(tasks);
        let mut assignments: Vec<NodeAssignment> = Vec::with_capacity(tasks.len());
        // Index into `assignments` per task, so steals and recoveries can
        // rewrite the serving node (lookups only — never iterated).
        let mut assignment_index: HashMap<TaskId, usize> = HashMap::with_capacity(tasks.len());
        let mut shed: Vec<TaskRequest> = Vec::new();
        let mut steals = 0u64;
        let mut driver = self
            .config
            .faults
            .as_ref()
            .map(|plan| FaultDriver::new(plan, &self.config.npu, self.config.nodes));
        let link_faults = self
            .config
            .faults
            .as_ref()
            .map(|plan| plan.schedule.links.as_slice())
            .unwrap_or(&[]);
        let mut migration = self.config.migration.as_ref().map(|config| {
            MigrationDriver::new(config, &self.config.npu, self.config.nodes, link_faults)
        });

        for &i in &order {
            let task = &tasks[i];
            let now = task.request.arrival;
            self.drain_fault_events(
                &mut sessions,
                &mut driver,
                &mut migration,
                now,
                &mut steals,
                &mut assignments,
                &assignment_index,
                trace,
            );
            self.advance_to(
                &mut sessions,
                driver.as_ref(),
                &mut migration,
                now,
                &mut steals,
                &mut assignments,
                &assignment_index,
                trace,
            );
            sample_nodes(&sessions, now, trace);

            let node = self.pick_node(&sessions, task, driver.as_ref(), None, now, trace);
            if let Some(admission) = self.config.admission {
                if !self.admit(&mut sessions, task, node, admission, &mut shed, trace) {
                    continue;
                }
            }
            assignment_index.insert(task.request.id, assignments.len());
            assignments.push(NodeAssignment {
                task: task.request.id,
                node,
            });
            sessions[node]
                .inject(task.clone())
                .expect("arrival ids are unique");
        }

        // Play out the remaining fault/migration timeline (crashes spawn
        // recoveries that re-enter it, migration rounds put new transfers
        // in flight), then drain every node (still stealing and migrating
        // at each completion bound).
        self.drain_fault_events(
            &mut sessions,
            &mut driver,
            &mut migration,
            Cycles::MAX,
            &mut steals,
            &mut assignments,
            &assignment_index,
            trace,
        );
        self.advance_to(
            &mut sessions,
            driver.as_ref(),
            &mut migration,
            Cycles::MAX,
            &mut steals,
            &mut assignments,
            &assignment_index,
            trace,
        );

        finish_outcome(
            sessions,
            assignments,
            shed,
            steals,
            driver.map(FaultDriver::finish),
            migration.map(MigrationDriver::finish),
        )
    }

    /// Processes every fault- and migration-timeline event due at or before
    /// `limit`, in timeline order: advance the cluster to the event
    /// instant, then fail (crash), stall (freeze), scale (degrade start /
    /// end), re-dispatch (due recovery) or deliver (due migration). Each
    /// instant ends with a migration round over the synchronized cluster.
    /// Crashes push their salvage manifests back into the fault driver and
    /// migration rounds put new transfers in flight, so the timeline grows
    /// while it drains; the retry and per-node migration budgets bound it.
    #[allow(clippy::too_many_arguments)]
    fn drain_fault_events<S: TraceSink, C: ClusterTraceSink>(
        &self,
        sessions: &mut [SimSession<S>],
        driver: &mut Option<FaultDriver<'_>>,
        migration: &mut Option<MigrationDriver<'_>>,
        limit: Cycles,
        steals: &mut u64,
        assignments: &mut [NodeAssignment],
        assignment_index: &HashMap<TaskId, usize>,
        trace: &RefCell<C>,
    ) {
        loop {
            let fault_next = driver.as_ref().and_then(FaultDriver::next_event_time);
            let migration_next = migration.as_ref().and_then(MigrationDriver::next_due);
            let Some(t) = [fault_next, migration_next]
                .into_iter()
                .flatten()
                .min()
                .filter(|&t| t <= limit)
            else {
                return;
            };
            self.advance_to(
                sessions,
                driver.as_ref(),
                migration,
                t,
                steals,
                assignments,
                assignment_index,
                trace,
            );
            if let Some(driver) = driver.as_mut() {
                while let Some(event) = driver.pop_due(t) {
                    match event {
                        FaultEvent::Fault(fault) => {
                            if C::ENABLED {
                                let kind = match fault.kind {
                                    FaultKind::Crash => FaultTraceKind::Crash,
                                    FaultKind::Freeze => FaultTraceKind::Freeze,
                                    FaultKind::Degrade {
                                        speed_num,
                                        speed_den,
                                    } => FaultTraceKind::Degrade {
                                        num: speed_num,
                                        den: speed_den,
                                    },
                                };
                                trace.borrow_mut().cluster_event(
                                    t,
                                    ClusterTraceEvent::Fault {
                                        node: fault.node,
                                        kind,
                                        until: fault.end,
                                    },
                                );
                            }
                            match fault.kind {
                                FaultKind::Crash => {
                                    let salvaged = sessions[fault.node].fail();
                                    driver.on_salvaged(fault.node, t, salvaged, trace);
                                    sessions[fault.node].stall(fault.end);
                                }
                                FaultKind::Freeze => sessions[fault.node].stall(fault.end),
                                FaultKind::Degrade {
                                    speed_num,
                                    speed_den,
                                } => sessions[fault.node].set_clock_scale(speed_num, speed_den),
                            }
                        }
                        FaultEvent::DegradeEnd { node } => {
                            if C::ENABLED {
                                trace.borrow_mut().cluster_event(
                                    t,
                                    ClusterTraceEvent::Fault {
                                        node,
                                        kind: FaultTraceKind::DegradeEnd,
                                        until: t,
                                    },
                                );
                            }
                            sessions[node].set_clock_scale(1, 1);
                        }
                        FaultEvent::Recovery(pending) => {
                            let node = self.pick_node(
                                sessions,
                                &pending.salvage.prepared,
                                Some(driver),
                                Some(pending.from_node),
                                t,
                                trace,
                            );
                            // The scan minimizes the penalty tier, so an
                            // unreachable winner means *no* node is
                            // reachable from the custodian: the attempt is
                            // spent and the salvage re-queues (or is
                            // abandoned) instead of crossing the partition.
                            if driver.topology().reachable(pending.from_node, node, t) {
                                let origin = (pending.from_node, pending.attempt);
                                let salvage = driver.redispatch(pending, node, t);
                                let id = salvage.prepared.request.id;
                                if C::ENABLED {
                                    trace.borrow_mut().cluster_event(
                                        t,
                                        ClusterTraceEvent::Recovery {
                                            task: id,
                                            from: origin.0,
                                            to: node,
                                            attempt: origin.1,
                                        },
                                    );
                                }
                                sessions[node]
                                    .inject_salvaged(salvage, t)
                                    .expect("salvaged task id is not live");
                                if let Some(&slot) = assignment_index.get(&id) {
                                    assignments[slot].node = node;
                                }
                            } else {
                                driver.on_unreachable(pending, t, trace);
                            }
                        }
                        FaultEvent::LinkEdge(edge) => {
                            // Link windows mutate no session: the topology
                            // answers state queries lazily. The edge exists
                            // so both loops synchronize (and trace) at the
                            // instant routing decisions change.
                            if C::ENABLED {
                                trace.borrow_mut().cluster_event(
                                    t,
                                    ClusterTraceEvent::LinkFault {
                                        from: edge.from,
                                        to: edge.to,
                                        kind: edge.kind,
                                        until: edge.until,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            if let Some(migration) = migration.as_mut() {
                deliver_due_migrations(
                    migration,
                    driver.as_ref(),
                    sessions,
                    t,
                    assignments,
                    assignment_index,
                    trace,
                );
                migration.round(sessions, t, trace);
            }
            sample_nodes(sessions, t, trace);
        }
    }

    /// Advances every node to `t`. With work stealing or migration enabled,
    /// execution is stepped to every completion bound (and every in-flight
    /// migration delivery) on the way, so a node that drains between
    /// arrivals steals at its drain moment — and a deadline that slips at a
    /// completion is caught there — rather than at the next arrival.
    #[allow(clippy::too_many_arguments)]
    fn advance_to<S: TraceSink, C: ClusterTraceSink>(
        &self,
        sessions: &mut [SimSession<S>],
        faults: Option<&FaultDriver<'_>>,
        migration: &mut Option<MigrationDriver<'_>>,
        t: Cycles,
        steals: &mut u64,
        assignments: &mut [NodeAssignment],
        assignment_index: &HashMap<TaskId, usize>,
        trace: &RefCell<C>,
    ) {
        if !self.config.work_stealing && migration.is_none() {
            for session in sessions.iter_mut() {
                let _ = session.run_until(t);
            }
            return;
        }
        loop {
            // The earliest moment any node's task set can shrink. Bounds are
            // strictly in the future (a paused node is running or idle), so
            // every iteration advances the clock and the loop terminates.
            let bound = sessions
                .iter()
                .filter_map(SimSession::next_completion_time)
                .min();
            let mut step = match bound {
                Some(bound) if bound < t => bound,
                _ => t,
            };
            // In-flight deliveries strictly before `t` land mid-advance;
            // one due exactly at `t` belongs to the caller's event batch
            // (the fault drain processes it after the fault events there).
            if let Some(due) = migration
                .as_ref()
                .and_then(MigrationDriver::next_due)
                .filter(|&due| due < step)
            {
                step = due;
            }
            for session in sessions.iter_mut() {
                let _ = session.run_until(step);
            }
            if self.config.work_stealing {
                *steals += steal_onto_idle_nodes(
                    sessions,
                    faults.map(FaultDriver::topology),
                    assignments,
                    assignment_index,
                    trace,
                );
            }
            if let Some(migration) = migration.as_mut() {
                if step < t {
                    deliver_due_migrations(
                        migration,
                        faults,
                        sessions,
                        step,
                        assignments,
                        assignment_index,
                        trace,
                    );
                }
                migration.round(sessions, step, trace);
            }
            if step == t {
                return;
            }
        }
    }

    /// The dispatch decision: the node minimizing the configured live-state
    /// signal. Ties break toward the node with the least total remaining
    /// work, then the lowest index — without the load-aware tie-break, a
    /// high-priority arrival in a mostly-low-priority mix sees near-zero
    /// blocking work on *every* node and the whole high tier would pile
    /// onto node 0.
    ///
    /// Deliberately computes the work signals by scanning every node's
    /// residents — the PR 4 implementation this reference path preserves —
    /// rather than through the engine's incremental totals, so the
    /// equivalence property test cross-checks those totals against an
    /// independent computation.
    ///
    /// Under fault injection the live-state signal is preceded by the
    /// failure-aware penalty tier (down now, inside the post-fault
    /// cooldown, healthy): a down or cooling-down node only wins when every
    /// healthier node is worse *by tier*. Fault-free runs see a uniform
    /// zero tier, leaving the historical ordering untouched.
    ///
    /// `source` is the node the task's bytes must travel *from* — `Some`
    /// for recovery re-dispatch (the salvage lives on the crashed node),
    /// `None` for fresh arrivals, which enter through the front-end control
    /// plane and reach every node regardless of inter-node link state.
    /// Nodes unreachable from `source` sit above every penalty tier, so
    /// they only win when the whole cluster is partitioned away.
    fn pick_node<S: TraceSink, C: ClusterTraceSink>(
        &self,
        sessions: &[SimSession<S>],
        task: &PreparedTask,
        faults: Option<&FaultDriver<'_>>,
        source: Option<usize>,
        now: Cycles,
        trace: &RefCell<C>,
    ) -> usize {
        let priority = task.request.priority;
        let score = |session: &SimSession<S>| -> (u64, u64) {
            let residents = session.resident_tasks();
            let remaining: Cycles = residents
                .iter()
                .map(ResidentTask::estimated_remaining)
                .sum();
            let remaining = remaining.get();
            match self.config.dispatch {
                OnlineDispatchPolicy::ShortestQueue => (session.queue_depth() as u64, remaining),
                OnlineDispatchPolicy::LeastWork => (remaining, remaining),
                OnlineDispatchPolicy::Predictive => {
                    let blocking: Cycles = residents
                        .iter()
                        .filter(|resident| resident.priority >= priority)
                        .map(ResidentTask::estimated_remaining)
                        .sum();
                    (blocking.get(), remaining)
                }
            }
        };
        let penalty =
            |index: usize| faults.map_or(0u8, |driver| driver.route_penalty(source, index, now));
        let chosen = sessions
            .iter()
            .enumerate()
            .min_by_key(|(index, session)| (penalty(*index), score(session), *index))
            .expect("at least one node")
            .0;
        if C::ENABLED {
            // The reference path compares every node exactly; rebuild the
            // keys in a separate pass so the decision code stays untouched.
            let mut keys = NodeKeySet::default();
            for (index, session) in sessions.iter().enumerate() {
                keys.push(NodeKey {
                    node: index,
                    penalty: penalty(index),
                    key: score(session),
                    lower_bounded: false,
                });
            }
            trace.borrow_mut().cluster_event(
                now,
                ClusterTraceEvent::DispatchDecision {
                    task: task.request.id,
                    chosen,
                    keys,
                },
            );
        }
        chosen
    }

    /// SLA-aware admission: predicts the cluster-wide p99 turnaround over
    /// all resident tasks plus the newcomer (headed for `node`); while it
    /// exceeds the target, sheds the lowest-priority never-started task
    /// cluster-wide. Returns whether the newcomer survived (it is pushed to
    /// `shed` itself otherwise).
    #[allow(clippy::too_many_arguments)]
    fn admit<S: TraceSink, C: ClusterTraceSink>(
        &self,
        sessions: &mut [SimSession<S>],
        task: &PreparedTask,
        node: usize,
        admission: SlaAdmissionConfig,
        shed: &mut Vec<TaskRequest>,
        trace: &RefCell<C>,
    ) -> bool {
        let npu = &self.config.npu;
        let incoming_priority = task.request.priority;
        let incoming_estimate = task.estimated_cycles();
        let target_p99_ms = scaled_admission_target(sessions, admission.target_p99_ms);
        loop {
            let mut predicted_ms: Vec<f64> = Vec::new();
            for session in sessions.iter() {
                predicted_turnarounds_ms(session, npu, &mut predicted_ms);
            }
            // The newcomer's own predicted turnaround, from a resident scan
            // like everything else on this reference path.
            let blocking: Cycles = sessions[node]
                .resident_tasks()
                .iter()
                .filter(|resident| resident.priority >= incoming_priority)
                .map(ResidentTask::estimated_remaining)
                .sum();
            let incoming_turnaround = blocking + incoming_estimate;
            predicted_ms.push(npu.cycles_to_millis(incoming_turnaround));
            let p99 = Percentiles::summarize(&predicted_ms)
                .expect("the newcomer is always present")
                .p99;
            if p99 <= target_p99_ms {
                return true;
            }

            // Shed candidate: lowest priority first, then the largest
            // predicted remaining work, then the highest (newest) id. The
            // newcomer competes with the same key.
            let mut candidate: Option<(ShedKey, usize, TaskId)> = None;
            for (index, session) in sessions.iter().enumerate() {
                for resident in session.resident_tasks() {
                    if !resident.revocable {
                        continue;
                    }
                    let key = ShedKey::of(
                        resident.priority,
                        resident.estimated_remaining(),
                        resident.id,
                    );
                    if candidate.as_ref().is_none_or(|(best, _, _)| key < *best) {
                        candidate = Some((key, index, resident.id));
                    }
                }
            }
            let incoming_key = ShedKey::of(incoming_priority, incoming_estimate, task.request.id);
            match candidate {
                Some((key, victim_node, victim_id)) if key < incoming_key => {
                    let revoked = sessions[victim_node]
                        .revoke(victim_id)
                        .expect("resident was reported revocable");
                    if C::ENABLED {
                        trace.borrow_mut().cluster_event(
                            sessions[victim_node].now(),
                            ClusterTraceEvent::Shed {
                                task: victim_id,
                                node: victim_node,
                            },
                        );
                    }
                    shed.push(revoked.request);
                }
                _ => {
                    // The newcomer is itself the lowest-priority work (or
                    // nothing else is sheddable): reject it.
                    if C::ENABLED {
                        trace.borrow_mut().cluster_event(
                            sessions[node].now(),
                            ClusterTraceEvent::Shed {
                                task: task.request.id,
                                node,
                            },
                        );
                    }
                    shed.push(task.request);
                    return false;
                }
            }
        }
    }
}

/// The shed-preference ordering: lowest priority, then largest predicted
/// remaining work, then newest id. Smaller keys shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct ShedKey(
    Priority,
    std::cmp::Reverse<Cycles>,
    std::cmp::Reverse<TaskId>,
);

impl ShedKey {
    pub(crate) fn of(priority: Priority, remaining: Cycles, id: TaskId) -> Self {
        ShedKey(
            priority,
            std::cmp::Reverse(remaining),
            std::cmp::Reverse(id),
        )
    }
}

/// Panics unless every task id is unique.
pub(crate) fn assert_unique_ids(tasks: &[PreparedTask]) {
    let mut ids: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), tasks.len(), "task IDs must be unique");
}

/// The global arrival queue: task indices in the order a front-end sees
/// requests — (arrival, id)-sorted.
pub(crate) fn arrival_order(tasks: &[PreparedTask]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (tasks[i].request.arrival, tasks[i].request.id));
    order
}

/// The SLA admission target under graceful degradation: the configured p99
/// tightened to the fraction of nodes currently up (not inside a fault
/// window), so a degraded cluster sheds proportionally earlier instead of
/// queueing work the surviving capacity cannot absorb. Fault-free (and
/// fault-idle) instants leave the target exactly unchanged.
pub(crate) fn scaled_admission_target<S: TraceSink>(
    sessions: &[SimSession<S>],
    target_p99_ms: f64,
) -> f64 {
    let up = sessions
        .iter()
        .filter(|session| session.stalled_until().is_none())
        .count();
    target_p99_ms * (up.max(1) as f64 / sessions.len() as f64)
}

/// Finishes every session and assembles the [`OnlineOutcome`], dropping
/// shed, abandoned and undelivered tasks' assignment entries so assignments
/// biject onto records. Custody abandonments (transfer retry budget
/// exhausted) are appended after recovery abandonments, in abandonment
/// order within each source; tasks the custody ledger still holds in flight
/// surface as [`OnlineOutcome::custody_error`].
pub(crate) fn finish_outcome<S: TraceSink>(
    sessions: Vec<SimSession<S>>,
    mut assignments: Vec<NodeAssignment>,
    shed: Vec<TaskRequest>,
    steals: u64,
    faults: Option<FaultTally>,
    migration: Option<MigrationTally>,
) -> OnlineOutcome {
    let tally = faults.unwrap_or_else(|| FaultTally::empty(sessions.len()));
    let migration = migration.unwrap_or_default();
    let mut abandoned = tally.abandoned;
    abandoned.extend(migration.abandoned);
    let custody_error = if migration.undelivered.is_empty() {
        None
    } else {
        Some(CustodyError {
            undelivered: migration.undelivered,
        })
    };
    if !shed.is_empty() || !abandoned.is_empty() || custody_error.is_some() {
        let dropped: std::collections::HashSet<TaskId> = shed
            .iter()
            .chain(abandoned.iter())
            .map(|request| request.id)
            .chain(
                custody_error
                    .iter()
                    .flat_map(|error| error.undelivered.iter().copied()),
            )
            .collect();
        assignments.retain(|assignment| !dropped.contains(&assignment.task));
    }
    let node_outcomes = sessions.into_iter().map(SimSession::finish).collect();
    OnlineOutcome {
        cluster: ClusterOutcome {
            node_outcomes,
            assignments,
        },
        shed,
        steals,
        abandoned,
        crashes: tally.crashes,
        freezes: tally.freezes,
        recoveries: tally.recoveries,
        recovery_log: tally.recovery_log,
        node_downtime: tally.node_downtime,
        degrades: tally.degrades,
        node_degraded_time: tally.node_degraded_time,
        migrations: migration.migrations,
        migration_bytes: migration.migration_bytes,
        migration_log: migration.migration_log,
        transfer_failures: migration.transfer_failures,
        redirects: migration.redirects,
        redirect_log: migration.redirect_log,
        custody_error,
    }
}

/// Processes every in-flight transfer event due at or before `t` — the
/// single consumption point of the custody decision machine, shared by the
/// reference loop and (with a certificate refresh on top) mirrored by the
/// event-heap loop:
///
/// * a **landing** injects the salvage at its destination (paying the
///   restore DMA there) and rewrites the task's assignment to the new
///   serving node — unless custody is enabled and the destination is down
///   at the landing instant, which converts it into a failed attempt;
/// * a **failure** (link drop mid-flight, delivery deadline expiry) routes
///   through the retry machinery — exponential backoff under the custody
///   retry budget, abandonment with accounting past it;
/// * a **redirect** re-prices every reachable healthy node and relaunches
///   the transfer toward the cheapest one.
pub(crate) fn deliver_due_migrations<S: TraceSink, C: ClusterTraceSink>(
    migration: &mut MigrationDriver<'_>,
    faults: Option<&FaultDriver<'_>>,
    sessions: &mut [SimSession<S>],
    t: Cycles,
    assignments: &mut [NodeAssignment],
    assignment_index: &HashMap<TaskId, usize>,
    trace: &RefCell<C>,
) {
    while let Some(pending) = migration.pop_due(t) {
        match pending.event {
            TransferEvent::Land => {
                let node = pending.to_node;
                if migration.custody_enabled()
                    && faults.is_some_and(|driver| driver.is_down(node, t))
                {
                    migration.on_transfer_failed(
                        pending,
                        TransferFailReason::DestinationDown,
                        t,
                        trace,
                    );
                    continue;
                }
                let id = pending.salvage.prepared.request.id;
                migration.on_landed(id, node);
                sessions[node]
                    .inject_salvaged(pending.salvage, t)
                    .expect("migrated task id is not live");
                if C::ENABLED {
                    trace
                        .borrow_mut()
                        .cluster_event(t, ClusterTraceEvent::MigrationLand { task: id, node });
                }
                if let Some(&slot) = assignment_index.get(&id) {
                    assignments[slot].node = node;
                }
            }
            TransferEvent::Fail(reason) => {
                migration.on_transfer_failed(pending, reason, t, trace);
            }
            TransferEvent::Redirect => {
                migration.redirect(pending, sessions, faults, t, trace);
            }
        }
    }
}

/// Appends the predicted turnaround (milliseconds) of every resident task of
/// one node: remaining work is drained in priority-then-arrival order (the
/// preemptive scheduler's effective order), so task `k`'s predicted
/// completion is the node clock plus the remaining work at or ahead of it.
fn predicted_turnarounds_ms<S: TraceSink>(
    session: &SimSession<S>,
    npu: &NpuConfig,
    out: &mut Vec<f64>,
) {
    let mut residents: Vec<ResidentTask> = session.resident_tasks();
    residents.sort_by_key(|resident| {
        (
            std::cmp::Reverse(resident.priority),
            resident.arrival,
            resident.id,
        )
    });
    let now = session.now();
    let mut backlog = Cycles::ZERO;
    for resident in residents {
        backlog += resident.estimated_remaining();
        let completion = now + backlog;
        out.push(npu.cycles_to_millis(completion - resident.arrival));
    }
}

/// One round of work stealing: every idle node (live queue depth zero) takes
/// the largest never-started waiting task from the peer holding the most
/// such work. Rewrites the victim's assignment to the thief. Returns the
/// number of migrations. A steal moves the task's bytes victim-to-thief
/// over the fabric, so victims the thief cannot currently reach (link down
/// or partitioned away) are skipped.
fn steal_onto_idle_nodes<S: TraceSink, C: ClusterTraceSink>(
    sessions: &mut [SimSession<S>],
    links: Option<&crate::interconnect::LinkTopology>,
    assignments: &mut [NodeAssignment],
    assignment_index: &HashMap<TaskId, usize>,
    trace: &RefCell<C>,
) -> u64 {
    let mut steals = 0u64;
    loop {
        // A crashed node drains to queue depth zero the instant it fails —
        // the stall check keeps it from masquerading as an eager thief
        // (frozen nodes may still be *victims*: their waiting work is
        // exactly what is worth migrating off a straggler).
        let Some(thief) = sessions
            .iter()
            .position(|s| s.queue_depth() == 0 && s.stalled_until().is_none())
        else {
            return steals;
        };
        // Victim: the node with the most stealable (never-started) predicted
        // work, provided it keeps at least one task for itself. One pass per
        // node finds both the stealable sum and the task to take — the
        // revocable task with the largest remaining work, ties to the
        // lowest id.
        let now = sessions[thief].now();
        let mut victim: Option<(Cycles, usize, ResidentTask)> = None;
        for (index, session) in sessions.iter().enumerate() {
            if session.queue_depth() < 2 {
                continue;
            }
            if links.is_some_and(|links| !links.reachable(index, thief, now)) {
                continue;
            }
            let mut stealable = Cycles::ZERO;
            let mut best: Option<ResidentTask> = None;
            for resident in session.resident_tasks() {
                if !resident.revocable {
                    continue;
                }
                stealable += resident.estimated_remaining();
                let better = best.as_ref().is_none_or(|current| {
                    (
                        resident.estimated_remaining(),
                        std::cmp::Reverse(resident.id),
                    ) > (current.estimated_remaining(), std::cmp::Reverse(current.id))
                });
                if better {
                    best = Some(resident);
                }
            }
            if stealable.is_zero() {
                continue;
            }
            if victim.as_ref().is_none_or(|(most, _, _)| stealable > *most) {
                victim = Some((
                    stealable,
                    index,
                    best.expect("nonzero stealable work has a best task"),
                ));
            }
        }
        let Some((_, victim, stolen)) = victim else {
            return steals;
        };
        let prepared = sessions[victim]
            .revoke(stolen.id)
            .expect("stolen task was revocable");
        sessions[thief]
            .inject(prepared)
            .expect("revoked task re-injects cleanly");
        if C::ENABLED {
            trace.borrow_mut().cluster_event(
                sessions[thief].now(),
                ClusterTraceEvent::Steal {
                    task: stolen.id,
                    from: victim,
                    to: thief,
                },
            );
        }
        if let Some(&slot) = assignment_index.get(&stolen.id) {
            assignments[slot].node = thief;
        }
        steals += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
    use prema_workload::prepare::prepare_requests;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prepared(rate: f64, duration: f64, seed: u64) -> Vec<PreparedTask> {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = generate_open_loop(&OpenLoopConfig::poisson(rate, duration), &mut rng);
        prepare_requests(&spec.requests, &NpuConfig::paper_default(), None)
    }

    fn simulator(dispatch: OnlineDispatchPolicy) -> OnlineClusterSimulator {
        OnlineClusterSimulator::new(OnlineClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            dispatch,
        ))
    }

    #[test]
    fn every_request_is_served_exactly_once_without_admission() {
        let tasks = prepared(0.6, 60.0, 0xA11);
        for dispatch in [
            OnlineDispatchPolicy::ShortestQueue,
            OnlineDispatchPolicy::LeastWork,
            OnlineDispatchPolicy::Predictive,
        ] {
            let outcome = simulator(dispatch).run(&tasks);
            assert!(outcome.shed.is_empty(), "{dispatch}");
            assert_eq!(outcome.served(), tasks.len(), "{dispatch}");
            let mut expected: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
            expected.sort_unstable();
            let served: Vec<TaskId> = outcome
                .cluster
                .merged_records()
                .iter()
                .map(|r| r.id)
                .collect();
            assert_eq!(served, expected, "{dispatch}");
            // Each record lives on the node its assignment names.
            assert_eq!(outcome.cluster.assignments.len(), tasks.len());
            for assignment in &outcome.cluster.assignments {
                let node = &outcome.cluster.node_outcomes[assignment.node];
                assert!(node.record(assignment.task).is_some(), "{dispatch}");
            }
        }
    }

    #[test]
    fn closed_loop_runs_are_reproducible() {
        let tasks = prepared(0.8, 60.0, 0xB22);
        let config = OnlineClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_work_stealing();
        let a = OnlineClusterSimulator::new(config.clone()).run(&tasks);
        let b = OnlineClusterSimulator::new(config).run(&tasks);
        assert_eq!(a, b);
        assert_eq!(online_outcome_hash(&a), online_outcome_hash(&b));
    }

    #[test]
    fn work_stealing_rewrites_assignments_consistently() {
        // A two-node cluster with one long queue invites stealing: all
        // requests arrive nearly at once, so the live signals are near-equal
        // at dispatch and completions expose idleness later.
        let tasks = prepared(2.0, 20.0, 0xC33);
        let config = OnlineClusterConfig::new(
            2,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::ShortestQueue,
        )
        .with_work_stealing();
        let outcome = OnlineClusterSimulator::new(config).run(&tasks);
        assert_eq!(outcome.served(), tasks.len());
        // Every assignment matches the node that actually served the task,
        // steals included.
        for assignment in &outcome.cluster.assignments {
            let node = &outcome.cluster.node_outcomes[assignment.node];
            assert!(node.record(assignment.task).is_some());
        }
    }

    #[test]
    fn admission_stays_bit_identical_when_estimates_undershoot() {
        // Regression: with an underestimating predictor, a running task's
        // estimated remaining clamps at zero while it keeps executing, so a
        // node's predicted turnarounds *grow with the clock* between state
        // versions. The heap loop's admission cache froze the runner-pinned
        // entries as absolute constants and reused them across a shed-only
        // arrival (which changes no node's state version), disagreeing with
        // the reference's fresh recomputation inside exactly that overrun
        // window. Estimates at half the true plan length, a shed-prone p99
        // target and an arrival landing in the overrun window pin the fix.
        use dnn_models::ModelKind;
        let npu = NpuConfig::paper_default();
        let half = |model: ModelKind, id: u64, arrival: u64| {
            let exact =
                prema_core::PreparedTask::prepare(TaskRequest::new(TaskId(id), model), &npu)
                    .isolated_cycles();
            prema_core::PreparedTask::prepare(
                TaskRequest::new(TaskId(id), model)
                    .with_arrival(Cycles::new(arrival))
                    .with_estimate(exact / 2),
                &npu,
            )
        };
        let vgg = prema_core::PreparedTask::prepare(
            TaskRequest::new(TaskId(0), ModelKind::CnnVggNet),
            &npu,
        )
        .isolated_cycles()
        .get();
        // Arrival 1 lands before the VggNet runner exhausts its halved
        // estimate (and should be shed); arrival 2 lands in the overrun
        // window (estimate exhausted at vgg/2, true completion at vgg).
        let tasks = vec![
            half(ModelKind::CnnVggNet, 0, 0),
            half(ModelKind::CnnAlexNet, 1, vgg / 10),
            half(ModelKind::CnnAlexNet, 2, vgg / 2 + vgg / 4),
        ];
        for target_ms in [1.0, 2.0, 3.0, 3.5, 4.0, 5.0, 8.0] {
            let config = OnlineClusterConfig::new(
                1,
                SchedulerConfig::np_fcfs(),
                OnlineDispatchPolicy::Predictive,
            )
            .with_admission(target_ms);
            let simulator = OnlineClusterSimulator::new(config);
            let heap = simulator.run(&tasks);
            let reference = simulator.run_reference(&tasks);
            assert_eq!(heap, reference, "target {target_ms} ms");
        }
    }

    #[test]
    fn admission_sheds_under_an_impossible_target_and_serves_the_rest() {
        let tasks = prepared(0.8, 60.0, 0xD44);
        let config = OnlineClusterConfig::new(
            2,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_admission(1e-3);
        let outcome = OnlineClusterSimulator::new(config).run(&tasks);
        // A microsecond-scale p99 target is unattainable: work is shed.
        assert!(!outcome.shed.is_empty());
        assert_eq!(outcome.served() + outcome.shed.len(), tasks.len());
        // Serving and shedding partition the request ids.
        let mut all: Vec<TaskId> = outcome
            .cluster
            .merged_records()
            .iter()
            .map(|r| r.id)
            .chain(outcome.shed.iter().map(|r| r.id))
            .collect();
        all.sort_unstable();
        let mut expected: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
        // Assignments cover exactly the served tasks.
        assert_eq!(outcome.cluster.assignments.len(), outcome.served());
    }

    #[test]
    fn generous_admission_target_sheds_nothing() {
        let tasks = prepared(0.4, 40.0, 0xE55);
        let config = OnlineClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_admission(1e9);
        let outcome = OnlineClusterSimulator::new(config).run(&tasks);
        assert!(outcome.shed.is_empty());
        assert_eq!(outcome.served(), tasks.len());
    }

    #[test]
    fn faulty_runs_stay_bit_identical_and_conserve_tasks() {
        use prema_workload::FaultProcess;
        let tasks = prepared(0.8, 60.0, 0xF66);
        let mut rng = StdRng::seed_from_u64(0xF77);
        let schedule = FaultProcess::crashes(3, 30.0, 2.0, 60.0)
            .with_freeze_fraction(0.3)
            .generate(&mut rng);
        assert!(!schedule.is_empty(), "the process must actually fault");
        for (stealing, admission) in [(false, None), (true, None), (false, Some(50.0))] {
            let mut config = OnlineClusterConfig::new(
                3,
                SchedulerConfig::paper_default(),
                OnlineDispatchPolicy::Predictive,
            )
            .with_faults(ClusterFaultPlan::new(schedule.clone()));
            if stealing {
                config = config.with_work_stealing();
            }
            if let Some(target) = admission {
                config = config.with_admission(target);
            }
            let simulator = OnlineClusterSimulator::new(config);
            let heap = simulator.run(&tasks);
            let reference = simulator.run_reference(&tasks);
            assert_eq!(
                heap, reference,
                "stealing {stealing}, admission {admission:?}"
            );
            assert_eq!(online_outcome_hash(&heap), online_outcome_hash(&reference));
            // Exactly-once conservation: served, shed and abandoned
            // partition the generated ids.
            let mut all: Vec<TaskId> = heap
                .cluster
                .merged_records()
                .iter()
                .map(|r| r.id)
                .chain(heap.shed.iter().map(|r| r.id))
                .chain(heap.abandoned.iter().map(|r| r.id))
                .collect();
            all.sort_unstable();
            let mut expected: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
            expected.sort_unstable();
            assert_eq!(
                all, expected,
                "stealing {stealing}, admission {admission:?}"
            );
            assert!(heap.has_fault_activity());
            assert_eq!(heap.crashes + heap.freezes, schedule.len() as u64);
        }
    }

    #[test]
    fn degraded_runs_stay_bit_identical_and_lose_no_work() {
        use prema_workload::FaultProcess;
        let tasks = prepared(0.8, 60.0, 0x2A1);
        let mut rng = StdRng::seed_from_u64(0x2B2);
        // degrade_fraction 1.0 turns every sampled fault into a straggler
        // window at quarter speed.
        let schedule = FaultProcess::crashes(3, 20.0, 4.0, 60.0)
            .with_degradation(1.0, 1, 4)
            .generate(&mut rng);
        assert!(!schedule.is_empty(), "the process must actually degrade");
        let plain = OnlineClusterSimulator::new(OnlineClusterConfig::new(
            3,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        ))
        .run(&tasks);
        for stealing in [false, true] {
            let mut config = OnlineClusterConfig::new(
                3,
                SchedulerConfig::paper_default(),
                OnlineDispatchPolicy::Predictive,
            )
            .with_faults(ClusterFaultPlan::new(schedule.clone()));
            if stealing {
                config = config.with_work_stealing();
            }
            let simulator = OnlineClusterSimulator::new(config);
            let heap = simulator.run(&tasks);
            let reference = simulator.run_reference(&tasks);
            assert_eq!(heap, reference, "stealing {stealing}");
            assert_eq!(online_outcome_hash(&heap), online_outcome_hash(&reference));
            // Degradation slows nodes but kills nothing: every request is
            // still served, the windows are tallied as degrades (not
            // downtime), and the digest reflects the activity.
            assert_eq!(heap.served(), tasks.len(), "stealing {stealing}");
            assert!(heap.abandoned.is_empty());
            assert_eq!(heap.degrades, schedule.len() as u64);
            assert_eq!(heap.crashes + heap.freezes, 0);
            assert!(heap
                .node_degraded_time
                .iter()
                .any(|&time| time > Cycles::ZERO));
            assert_eq!(
                heap.node_downtime.iter().copied().sum::<Cycles>(),
                Cycles::ZERO
            );
            assert!(heap.has_fault_activity());
            if !stealing {
                assert_ne!(online_outcome_hash(&plain), online_outcome_hash(&heap));
            }
        }
    }

    #[test]
    fn migration_rescues_stragglers_bit_identically() {
        use prema_workload::{FaultKind, FaultSchedule, NodeFault};
        let tasks = prepared(1.5, 40.0, 0x3C1);
        let npu = NpuConfig::paper_default();
        // One node limps at an eighth of full speed for most of the run; a
        // tight SLA with no hysteresis invites the arbiter to evacuate.
        let schedule = FaultSchedule::from_events(vec![NodeFault {
            node: 0,
            start: npu.millis_to_cycles(2.0),
            end: npu.millis_to_cycles(38.0),
            kind: FaultKind::Degrade {
                speed_num: 1,
                speed_den: 8,
            },
        }]);
        let config = OnlineClusterConfig::new(
            2,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_faults(ClusterFaultPlan::new(schedule))
        .with_migration(MigrationConfig::new(4.0).with_hysteresis(1.0));
        let simulator = OnlineClusterSimulator::new(config);
        let heap = simulator.run(&tasks);
        let reference = simulator.run_reference(&tasks);
        assert_eq!(heap, reference);
        assert_eq!(online_outcome_hash(&heap), online_outcome_hash(&reference));
        assert!(
            heap.migrations > 0,
            "the straggler window must trigger evacuations"
        );
        assert_eq!(heap.migrations as usize, heap.migration_log.len());
        assert_eq!(
            heap.migration_bytes,
            heap.migration_log.iter().map(|r| r.bytes).sum::<u64>()
        );
        for record in &heap.migration_log {
            assert_ne!(record.from_node, record.to_node);
            assert!(record.arrive_at > record.at, "transfers take time");
        }
        // Migration moves work, it never duplicates or loses it: the served
        // ids are exactly the generated ids, once each, and every migrated
        // task's final assignment names the node that actually served it.
        assert_eq!(heap.served(), tasks.len());
        let mut served: Vec<TaskId> = heap.cluster.merged_records().iter().map(|r| r.id).collect();
        served.sort_unstable();
        let mut expected: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
        expected.sort_unstable();
        assert_eq!(served, expected);
        for assignment in &heap.cluster.assignments {
            let node = &heap.cluster.node_outcomes[assignment.node];
            assert!(node.record(assignment.task).is_some());
        }
    }

    #[test]
    fn idle_migration_config_is_digest_neutral() {
        // Enabling migration switches the heap loop to synchronized
        // bound-stepping; a policy that never fires must not perturb the
        // outcome or its digest (stepping purity), and the digest must not
        // grow speculative fields.
        let tasks = prepared(0.5, 40.0, 0x4D1);
        let plain = simulator(OnlineDispatchPolicy::Predictive).run(&tasks);
        let config = OnlineClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_migration(MigrationConfig::new(1e6));
        let idle = OnlineClusterSimulator::new(config).run(&tasks);
        assert_eq!(idle.migrations, 0);
        assert!(idle.migration_log.is_empty());
        assert_eq!(plain.cluster, idle.cluster);
        assert_eq!(online_outcome_hash(&plain), online_outcome_hash(&idle));
    }

    #[test]
    #[should_panic(expected = "nowhere to move")]
    fn migration_needs_a_destination() {
        let _ = OnlineClusterSimulator::new(
            OnlineClusterConfig::new(
                1,
                SchedulerConfig::paper_default(),
                OnlineDispatchPolicy::Predictive,
            )
            .with_migration(MigrationConfig::new(8.0)),
        );
    }

    #[test]
    fn fault_activity_extends_the_digest_and_idle_schedules_do_not() {
        let tasks = prepared(0.5, 40.0, 0x1A2);
        let plain = simulator(OnlineDispatchPolicy::Predictive).run(&tasks);
        // A configured-but-empty schedule must not perturb the digest.
        let idle_config = OnlineClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_faults(ClusterFaultPlan::new(prema_workload::FaultSchedule::none()));
        let idle = OnlineClusterSimulator::new(idle_config).run(&tasks);
        assert!(!idle.has_fault_activity());
        assert_eq!(online_outcome_hash(&plain), online_outcome_hash(&idle));
        assert_eq!(plain.cluster, idle.cluster);
        // A firing schedule flips has_fault_activity and moves the digest.
        let mut rng = StdRng::seed_from_u64(0x1B3);
        let schedule = prema_workload::FaultProcess::crashes(4, 15.0, 1.0, 40.0).generate(&mut rng);
        assert!(!schedule.is_empty());
        let faulty_config = OnlineClusterConfig::new(
            4,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        )
        .with_faults(ClusterFaultPlan::new(schedule));
        let faulty = OnlineClusterSimulator::new(faulty_config).run(&tasks);
        assert!(faulty.has_fault_activity());
        assert_ne!(online_outcome_hash(&plain), online_outcome_hash(&faulty));
    }

    #[test]
    #[should_panic(expected = "names node 7")]
    fn fault_schedule_must_fit_the_cluster() {
        use prema_workload::{FaultKind, NodeFault};
        let schedule = prema_workload::FaultSchedule::from_events(vec![NodeFault {
            node: 7,
            start: Cycles::new(10),
            end: Cycles::new(20),
            kind: FaultKind::Crash,
        }]);
        let _ = OnlineClusterSimulator::new(
            OnlineClusterConfig::new(
                2,
                SchedulerConfig::paper_default(),
                OnlineDispatchPolicy::Predictive,
            )
            .with_faults(ClusterFaultPlan::new(schedule)),
        );
    }

    #[test]
    fn empty_workload_yields_empty_outcome() {
        let outcome = simulator(OnlineDispatchPolicy::LeastWork).run(&[]);
        assert_eq!(outcome.served(), 0);
        assert!(outcome.shed.is_empty());
        assert_eq!(outcome.steals, 0);
        assert_eq!(outcome.cluster.makespan(), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "task IDs must be unique")]
    fn duplicate_ids_rejected() {
        use dnn_models::ModelKind;
        let tasks = prepare_requests(
            &[
                TaskRequest::new(TaskId(1), ModelKind::CnnAlexNet),
                TaskRequest::new(TaskId(1), ModelKind::CnnMobileNet),
            ],
            &NpuConfig::paper_default(),
            None,
        );
        let _ = simulator(OnlineDispatchPolicy::ShortestQueue).run(&tasks);
    }

    #[test]
    #[should_panic(expected = "invalid OnlineClusterConfig")]
    fn invalid_config_rejected() {
        let _ = OnlineClusterSimulator::new(OnlineClusterConfig::new(
            0,
            SchedulerConfig::paper_default(),
            OnlineDispatchPolicy::Predictive,
        ));
    }
}
