//! Indexed contender structures for the live-dispatch branch and bound.
//!
//! The event-heap loop's `pick_node` scans every node per arrival: O(1)
//! work each, but O(nodes) of it, which becomes the wall at hundreds of
//! nodes. This module gives the three live-dispatch policies an ordered
//! index over the *same* branch-and-bound lower bounds the linear scan
//! compares, so each arrival examines O(log nodes) candidates — and, by
//! construction, still picks the byte-identical node.
//!
//! # Absolute keys
//!
//! In lazy mode a paused node's state is frozen between heap events: every
//! mutation (materialize, inject, salvage, fault edge) flows through the
//! loop's `reschedule` hook, which refreshes this index. What changes
//! between refreshes is the *query instant* `t`, not the node: the scan's
//! lower bound for a node paused at `now` with work-signal `v` is
//! `v - (t - now)` saturated at zero. Rewriting it as
//! `max(0, (v + now) - t)` makes the node-side part a constant — the
//! **absolute key** `K = v + now` — so the index can store plain integers
//! and decode any future query's lower bound as `K.saturating_sub(t)`.
//! Zero signals are stored as the literal key `0` (a drained component is
//! exactly zero at every future `t`, not merely bounded by it).
//!
//! # The saturation window, and why the staleness heap exists
//!
//! `saturating_sub` is strictly increasing on `{0} ∪ (t, ∞)` but collapses
//! `(0, t]` onto `0` — and a collapsed component can reorder *lexicographic*
//! comparisons against the tuple order the structures were built with. The
//! index therefore maintains the invariant that **at query time every
//! stored absolute component is either exactly `0` or exceeds `t`**: each
//! refresh pushes its nonzero components onto a min-heap, and each query
//! first drains the heap up to `t`, materializing any node whose stored
//! components actually fell inside the window (the node advances to `t`,
//! its refresh re-anchors the key above `t`, or the signal drained to an
//! exact zero). Under the invariant, decoded lower bounds order exactly
//! like stored keys, so the structure minimum *is* the best remaining lower
//! bound and the branch-and-bound stop rule carries over unchanged.
//!
//! # Fault-penalty tiers as the major key
//!
//! The reference prefixes every score with the failure-aware penalty tier
//! (down > cooling > healthy). Tiers only *rise* at fault-drain instants —
//! which already refresh the index — and *decay* at instants the driver can
//! name in advance ([`crate::faults::FaultDriver`]`::penalty_with_expiry`),
//! so the index stores the tier as the leading key component and keeps a
//! second min-heap of decay instants; queries drain it and re-key the
//! affected nodes before reading the minimum.
//!
//! # The unindexed side set
//!
//! A stalled node (crash/freeze window) parks its clock while `t` advances,
//! and a degraded node's signals shrink slower than its wall clock — for
//! both, materializing does *not* push the absolute key past `t`, so they
//! cannot satisfy the window invariant and would pin the staleness drain.
//! Refresh instead diverts them to a small `unindexed` set that the query
//! scans linearly with the reference's own lag lower bounds; fault-window
//! edges go through `reschedule`, so the node rejoins the ordered
//! structures at its next refresh once healthy. The set is bounded by the
//! number of concurrently open fault windows, which is what keeps the
//! common case at O(log nodes).
//!
//! # Structures
//!
//! * `jsq-live` ([`OnlineDispatchPolicy::ShortestQueue`]): [`DepthBuckets`],
//!   an ordered map of (penalty, queue depth) buckets — depth is exact for
//!   a paused node, never lower-bounded — each holding an ordered set of
//!   (absolute remaining work, node) tiebreakers.
//! * `least-work-live` ([`OnlineDispatchPolicy::LeastWork`]): one
//!   [`TournamentTree`] keyed (penalty, absolute remaining, node).
//! * `predictive-live` ([`OnlineDispatchPolicy::Predictive`]): one
//!   [`TournamentTree`] per arrival priority, keyed (penalty, absolute
//!   blocking work at that priority, absolute remaining, node).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use npu_sim::Cycles;
use prema_core::{DispatchSignals, Priority};

use crate::online::OnlineDispatchPolicy;

/// A stored contender key: (penalty tier, primary, secondary), ordered
/// lexicographically with the node index as the final tiebreak. For
/// `jsq-live` the primary is the exact queue depth; everywhere else both
/// components are absolute (clock-anchored) work signals.
type StoredKey = (u8, u64, u64);

/// The sentinel a [`TournamentTree`] leaf holds when its node is absent
/// (diverted to the unindexed side set). Orders after every real key.
const ABSENT: (u8, u64, u64, u32) = (u8::MAX, u64::MAX, u64::MAX, u32::MAX);

/// Encodes one work signal read at node-local `now` as an absolute key:
/// `0` stays the exact `0`, anything else anchors to the node's clock.
fn absolute(value: Cycles, now: Cycles) -> u64 {
    if value.is_zero() {
        0
    } else {
        value.get() + now.get()
    }
}

/// Decodes an absolute component back to the lower bound it proves at `t`.
/// Exact under the window invariant (component is `0` or exceeds `t`).
fn decode(component: u64, t: u64) -> u64 {
    component.saturating_sub(t)
}

/// A flat min-tournament (segment) tree over node indices: O(log n)
/// re-key, O(1) minimum. Leaves hold (key, node); internal slots the
/// minimum of their children.
#[derive(Debug, Clone)]
pub(crate) struct TournamentTree {
    /// Leaf count, padded to a power of two.
    width: usize,
    /// 1-based heap layout: `slots[1]` is the root, `slots[width + i]` the
    /// leaf of node `i`; absent leaves hold [`ABSENT`].
    slots: Vec<(u8, u64, u64, u32)>,
}

impl TournamentTree {
    fn new(nodes: usize) -> Self {
        let width = nodes.next_power_of_two().max(1);
        TournamentTree {
            width,
            slots: vec![ABSENT; width * 2],
        }
    }

    /// Re-keys `node` (`None` removes it) and repairs the path to the root,
    /// stopping early once an ancestor's minimum is unaffected.
    fn set(&mut self, node: usize, key: Option<StoredKey>) {
        let mut slot = self.width + node;
        let leaf = match key {
            Some((penalty, a, b)) => (penalty, a, b, node as u32),
            None => ABSENT,
        };
        if self.slots[slot] == leaf {
            return;
        }
        self.slots[slot] = leaf;
        while slot > 1 {
            slot /= 2;
            let merged = self.slots[2 * slot].min(self.slots[2 * slot + 1]);
            if self.slots[slot] == merged {
                break;
            }
            self.slots[slot] = merged;
        }
    }

    /// The minimum (penalty, primary, secondary, node), if any node is
    /// present.
    fn min(&self) -> Option<(u8, u64, u64, usize)> {
        let (penalty, a, b, node) = self.slots[1];
        (node != u32::MAX).then_some((penalty, a, b, node as usize))
    }
}

/// Queue-count buckets for `jsq-live`: an ordered map keyed
/// (penalty, exact queue depth), each bucket an ordered set of
/// (absolute remaining work, node) — the scan's tiebreak order.
#[derive(Debug, Clone, Default)]
pub(crate) struct DepthBuckets {
    buckets: BTreeMap<(u8, u64), BTreeSet<(u64, u32)>>,
    /// Where each node currently sits, for O(log n) removal.
    placement: Vec<Option<Placement>>,
}

/// A node's current bucket key and in-bucket entry.
type Placement = ((u8, u64), (u64, u32));

impl DepthBuckets {
    fn new(nodes: usize) -> Self {
        DepthBuckets {
            buckets: BTreeMap::new(),
            placement: vec![None; nodes],
        }
    }

    fn set(&mut self, node: usize, key: Option<StoredKey>) {
        let next =
            key.map(|(penalty, depth, remaining)| ((penalty, depth), (remaining, node as u32)));
        let prev = std::mem::replace(&mut self.placement[node], next);
        if prev == next {
            return;
        }
        if let Some((bucket, entry)) = prev {
            let slot = self.buckets.get_mut(&bucket).expect("placed bucket exists");
            slot.remove(&entry);
            if slot.is_empty() {
                self.buckets.remove(&bucket);
            }
        }
        if let Some((bucket, entry)) = next {
            self.buckets.entry(bucket).or_default().insert(entry);
        }
    }

    fn min(&self) -> Option<(u8, u64, u64, usize)> {
        let ((penalty, depth), bucket) = self.buckets.first_key_value()?;
        let (remaining, node) = bucket.first().expect("empty buckets are removed");
        Some((*penalty, *depth, *remaining, *node as usize))
    }
}

/// The policy-selected ordered structure.
#[derive(Debug, Clone)]
enum Structures {
    Depth(DepthBuckets),
    Tree(TournamentTree),
    PerPriority(Box<[TournamentTree; Priority::ALL.len()]>),
}

/// One node's cached refresh: everything needed to re-derive its stored
/// keys without touching the session again.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    penalty: u8,
    /// `false` while the node sits in the unindexed side set.
    indexed: bool,
    depth: u64,
    remaining: u64,
    blocking: [u64; Priority::ALL.len()],
}

/// The per-policy contender index. See the module docs for the invariants;
/// the owning loop guarantees every session mutation is followed by
/// [`ContenderIndex::refresh`] and every query is preceded by the penalty
/// and staleness drains.
#[derive(Debug)]
pub(crate) struct ContenderIndex {
    policy: OnlineDispatchPolicy,
    structures: Structures,
    entries: Vec<Entry>,
    /// Min-heap of (absolute key component, node): a due entry flags a node
    /// whose stored components may have entered the saturation window.
    /// Lazily invalidated — refreshes push, queries validate at pop.
    staleness: BinaryHeap<Reverse<(u64, u32)>>,
    /// Min-heap of (penalty-decay instant, node); see
    /// [`crate::faults::FaultDriver::penalty_with_expiry`].
    promotions: BinaryHeap<Reverse<(Cycles, u32)>>,
    /// Stalled / degraded nodes, excluded from the ordered structures and
    /// scanned linearly by the query (ascending, like the reference).
    unindexed: BTreeSet<u32>,
}

impl ContenderIndex {
    pub(crate) fn new(policy: OnlineDispatchPolicy, nodes: usize) -> Self {
        let structures = match policy {
            OnlineDispatchPolicy::ShortestQueue => Structures::Depth(DepthBuckets::new(nodes)),
            OnlineDispatchPolicy::LeastWork => Structures::Tree(TournamentTree::new(nodes)),
            OnlineDispatchPolicy::Predictive => {
                Structures::PerPriority(Box::new(std::array::from_fn(|_| {
                    TournamentTree::new(nodes)
                })))
            }
        };
        ContenderIndex {
            policy,
            structures,
            entries: vec![Entry::default(); nodes],
            staleness: BinaryHeap::new(),
            promotions: BinaryHeap::new(),
            unindexed: BTreeSet::new(),
        }
    }

    /// The stored key of `node` under `priority`, from the cached entry.
    fn stored_key(&self, node: usize, priority: Priority) -> StoredKey {
        let entry = &self.entries[node];
        match self.policy {
            OnlineDispatchPolicy::ShortestQueue => (entry.penalty, entry.depth, entry.remaining),
            OnlineDispatchPolicy::LeastWork => (entry.penalty, entry.remaining, entry.remaining),
            OnlineDispatchPolicy::Predictive => (
                entry.penalty,
                entry.blocking[priority.index()],
                entry.remaining,
            ),
        }
    }

    /// Writes `node`'s current keys into the ordered structures, or removes
    /// it when diverted to the side set.
    fn apply(&mut self, node: usize) {
        let present = self.entries[node].indexed;
        match &mut self.structures {
            Structures::Depth(buckets) => {
                let key = present.then(|| {
                    let entry = &self.entries[node];
                    (entry.penalty, entry.depth, entry.remaining)
                });
                buckets.set(node, key);
            }
            Structures::Tree(tree) => {
                let key = present.then(|| {
                    let entry = &self.entries[node];
                    (entry.penalty, entry.remaining, entry.remaining)
                });
                tree.set(node, key);
            }
            Structures::PerPriority(trees) => {
                let entry = self.entries[node];
                for (level, tree) in trees.iter_mut().enumerate() {
                    let key =
                        present.then(|| (entry.penalty, entry.blocking[level], entry.remaining));
                    tree.set(node, key);
                }
            }
        }
    }

    /// Re-keys `node` from a fresh signal read. Returns the stored
    /// (penalty, key pair, indexed) triple for tracing.
    pub(crate) fn refresh(
        &mut self,
        node: usize,
        signals: &DispatchSignals,
    ) -> (u8, (u64, u64), bool) {
        let indexed = !signals.stalled && !signals.scaled;
        let entry = &mut self.entries[node];
        entry.depth = signals.queue_depth as u64;
        entry.remaining = absolute(signals.remaining_work, signals.now);
        for (level, slot) in entry.blocking.iter_mut().enumerate() {
            *slot = absolute(signals.blocking_work[level], signals.now);
        }
        entry.indexed = indexed;
        let traced = {
            let (_, a, b) = self.stored_key(node, Priority::ALL[0]);
            (self.entries[node].penalty, (a, b), indexed)
        };
        if indexed {
            self.unindexed.remove(&(node as u32));
        } else {
            self.unindexed.insert(node as u32);
        }
        self.apply(node);
        if indexed {
            // Arm the saturation-window watch for every nonzero absolute
            // component this policy keys on.
            let entry = self.entries[node];
            let mut watch = |component: u64| {
                if component > 0 {
                    self.staleness.push(Reverse((component, node as u32)));
                }
            };
            match self.policy {
                OnlineDispatchPolicy::ShortestQueue | OnlineDispatchPolicy::LeastWork => {
                    watch(entry.remaining);
                }
                OnlineDispatchPolicy::Predictive => {
                    for level in 0..Priority::ALL.len() {
                        watch(entry.blocking[level]);
                    }
                }
            }
        }
        traced
    }

    /// Stores `node`'s penalty tier (and arms its decay instant). The
    /// caller reads the tier from the fault driver at fault instants and at
    /// due promotions.
    pub(crate) fn set_penalty(&mut self, node: usize, tier: u8, expiry: Option<Cycles>) {
        self.entries[node].penalty = tier;
        if let Some(expiry) = expiry {
            self.promotions.push(Reverse((expiry, node as u32)));
        }
        if self.entries[node].indexed {
            self.apply(node);
        }
    }

    /// Pops the next node whose stored penalty tier may have decayed by
    /// `t`. The caller re-reads the driver and calls
    /// [`ContenderIndex::set_penalty`]; duplicates are harmless.
    pub(crate) fn next_due_promotion(&mut self, t: Cycles) -> Option<usize> {
        let &Reverse((expiry, node)) = self.promotions.peek()?;
        if expiry > t {
            return None;
        }
        self.promotions.pop();
        Some(node as usize)
    }

    /// Pops the next indexed node with a stored absolute component inside
    /// the saturation window `(0, t]`. The caller materializes it to `t`
    /// (whose refresh re-anchors the key) and calls again; `None` means the
    /// window invariant holds for every indexed node.
    pub(crate) fn pop_stale(&mut self, t: Cycles) -> Option<usize> {
        let t = t.get();
        while let Some(&Reverse((component, node))) = self.staleness.peek() {
            if component > t {
                return None;
            }
            self.staleness.pop();
            let entry = &self.entries[node as usize];
            if !entry.indexed {
                continue;
            }
            let in_window = |c: u64| c > 0 && c <= t;
            let stale = match self.policy {
                OnlineDispatchPolicy::ShortestQueue | OnlineDispatchPolicy::LeastWork => {
                    in_window(entry.remaining)
                }
                OnlineDispatchPolicy::Predictive => entry.blocking.iter().any(|&c| in_window(c)),
            };
            if stale {
                return Some(node as usize);
            }
        }
        None
    }

    /// The minimum stored key under `priority`, decoded to the lower bound
    /// it proves at `t`: (penalty, score pair, node). Under the window
    /// invariant this is the best lower bound over every indexed node, so a
    /// best-so-far that beats it (with the index tiebreak) ends the query.
    pub(crate) fn min_lower(
        &self,
        priority: Priority,
        t: Cycles,
    ) -> Option<(u8, (u64, u64), usize)> {
        let t = t.get();
        let (penalty, a, b, node) = match &self.structures {
            Structures::Depth(buckets) => buckets.min()?,
            Structures::Tree(tree) => tree.min()?,
            Structures::PerPriority(trees) => trees[priority.index()].min()?,
        };
        let primary = match self.policy {
            // Depth is stored exact, not clock-anchored.
            OnlineDispatchPolicy::ShortestQueue => a,
            _ => decode(a, t),
        };
        Some((penalty, (primary, decode(b, t)), node))
    }

    /// The unindexed (stalled / degraded) nodes, ascending — the query's
    /// linear side scan.
    pub(crate) fn copy_unindexed_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.unindexed.iter().map(|&node| node as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tournament_tree_tracks_the_argmin_under_random_rekeys() {
        let mut rng = StdRng::seed_from_u64(9);
        for nodes in [1usize, 2, 5, 8, 33] {
            let mut tree = TournamentTree::new(nodes);
            let mut shadow: Vec<Option<StoredKey>> = vec![None; nodes];
            for _ in 0..400 {
                let node = rng.gen_range(0..nodes);
                let key = rng.gen_bool(0.8).then(|| {
                    (
                        rng.gen_range(0u8..3),
                        rng.gen_range(0u64..50),
                        rng.gen::<u64>(),
                    )
                });
                tree.set(node, key);
                shadow[node] = key;
                let expect = shadow
                    .iter()
                    .enumerate()
                    .filter_map(|(i, key)| key.map(|(p, a, b)| (p, a, b, i)))
                    .min();
                assert_eq!(tree.min(), expect);
            }
        }
    }

    #[test]
    fn depth_buckets_order_by_penalty_depth_then_tiebreak() {
        let mut rng = StdRng::seed_from_u64(11);
        let nodes = 17;
        let mut buckets = DepthBuckets::new(nodes);
        let mut shadow: Vec<Option<StoredKey>> = vec![None; nodes];
        for _ in 0..500 {
            let node = rng.gen_range(0..nodes);
            let key = rng.gen_bool(0.75).then(|| {
                (
                    rng.gen_range(0u8..3),
                    rng.gen_range(0u64..6),
                    rng.gen_range(0u64..90),
                )
            });
            buckets.set(node, key);
            shadow[node] = key;
            let expect = shadow
                .iter()
                .enumerate()
                .filter_map(|(i, key)| key.map(|(p, d, r)| (p, d, r, i)))
                .min();
            assert_eq!(buckets.min(), expect);
        }
    }

    #[test]
    fn absolute_keys_decode_to_the_scan_lower_bound() {
        // K = v + now decoded at t is exactly v - (t - now) saturated —
        // the linear scan's lower bound for a node paused at `now`.
        for (v, now, t) in [(40u64, 10u64, 30u64), (5, 0, 30), (0, 25, 30), (7, 30, 30)] {
            let key = absolute(Cycles::new(v), Cycles::new(now));
            assert_eq!(decode(key, t), v.saturating_sub(t - now));
        }
    }

    #[test]
    fn window_invariant_makes_stored_order_match_decoded_order() {
        // For components that are 0 or exceed t, decoding preserves strict
        // lexicographic order — the soundness core of the stop rule.
        let mut rng = StdRng::seed_from_u64(23);
        let t = 1000u64;
        let draw = |rng: &mut StdRng| -> u64 {
            if rng.gen_bool(0.3) {
                0
            } else {
                rng.gen_range(t + 1..t + 500)
            }
        };
        for _ in 0..2000 {
            let x = (draw(&mut rng), draw(&mut rng));
            let y = (draw(&mut rng), draw(&mut rng));
            let decoded = |k: (u64, u64)| (decode(k.0, t), decode(k.1, t));
            assert_eq!(
                x.cmp(&y),
                decoded(x).cmp(&decoded(y)),
                "{x:?} vs {y:?} at {t}"
            );
        }
    }

    #[test]
    fn staleness_pops_exactly_the_in_window_nodes() {
        let mut index = ContenderIndex::new(OnlineDispatchPolicy::LeastWork, 3);
        let signals = |now: u64, remaining: u64| DispatchSignals {
            now: Cycles::new(now),
            queue_depth: 1,
            remaining_work: Cycles::new(remaining),
            blocking_work: [Cycles::new(remaining); Priority::ALL.len()],
            stalled: false,
            scaled: false,
        };
        index.refresh(0, &signals(0, 50)); // K = 50: inside the window at t=100
        index.refresh(1, &signals(0, 500)); // K = 500: beyond t
        index.refresh(2, &signals(0, 0)); // exact zero: never stale
        assert_eq!(index.pop_stale(Cycles::new(100)), Some(0));
        // Materializing would re-anchor node 0; simulate that refresh.
        index.refresh(0, &signals(100, 30)); // K = 130 > 100
        assert_eq!(index.pop_stale(Cycles::new(100)), None);
        let min = index.min_lower(Priority::ALL[0], Cycles::new(100));
        // Node 2 is drained (exact zero) and wins outright.
        assert_eq!(min, Some((0, (0, 0), 2)));
    }

    #[test]
    fn stalled_nodes_divert_to_the_side_set_and_rejoin() {
        let mut index = ContenderIndex::new(OnlineDispatchPolicy::ShortestQueue, 2);
        let mut signals = DispatchSignals {
            now: Cycles::new(10),
            queue_depth: 3,
            remaining_work: Cycles::new(70),
            blocking_work: [Cycles::new(70); Priority::ALL.len()],
            stalled: true,
            scaled: false,
        };
        index.refresh(0, &signals);
        index.refresh(
            1,
            &DispatchSignals {
                queue_depth: 0,
                remaining_work: Cycles::ZERO,
                blocking_work: [Cycles::ZERO; Priority::ALL.len()],
                stalled: false,
                ..signals
            },
        );
        let mut side = Vec::new();
        index.copy_unindexed_into(&mut side);
        assert_eq!(side, vec![0]);
        // Only idle node 1 remains in the ordered structures.
        assert_eq!(
            index.min_lower(Priority::ALL[0], Cycles::new(10)),
            Some((0, (0, 0), 1))
        );
        signals.stalled = false;
        index.refresh(0, &signals);
        index.copy_unindexed_into(&mut side);
        assert!(side.is_empty());
    }
}
