//! Small statistics helpers shared by the experiment harness.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let variance = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(variance.sqrt())
}

/// Geometric mean of strictly positive values. Returns `None` for an empty
/// slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires strictly positive values"
    );
    let ln_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((ln_sum / values.len() as f64).exp())
}

/// Pearson correlation coefficient between two equally sized samples (used
/// for the Section VI-D predicted-vs-simulated latency comparison).
///
/// Returns `None` when the slices are empty, have different lengths, or
/// either has zero variance.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        var_x += (x - mx).powi(2);
        var_y += (y - my).powi(2);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[]), None);
        assert!((std_dev(&[2.0, 4.0]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), Some(0.0));
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), None);
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geometric_mean_rejects_non_positive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn single_sample_statistics_are_degenerate_but_defined() {
        assert_eq!(mean(&[7.5]), Some(7.5));
        assert_eq!(std_dev(&[7.5]), Some(0.0));
        assert!((geometric_mean(&[7.5]).unwrap() - 7.5).abs() < 1e-12);
        // A single pair has zero variance on both axes, so no correlation
        // is defined.
        assert_eq!(correlation(&[7.5], &[3.0]), None);
    }

    #[test]
    fn correlation_of_identical_series_is_one() {
        let xs: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        assert!((correlation(&xs, &xs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_scaled_series_is_one() {
        let xs: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|v| 3.0 * v + 2.0).collect();
        assert!((correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_correlated_series_is_minus_one() {
        let xs: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|v| -v).collect();
        assert!((correlation(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_correlation_inputs_return_none() {
        assert_eq!(correlation(&[], &[]), None);
        assert_eq!(correlation(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(correlation(&[1.0, 1.0], &[2.0, 3.0]), None);
    }
}
