//! Plain-text table formatting for the experiment harness output.
//!
//! The `experiments` binary reproduces the paper's tables and figures as
//! aligned text tables; this helper keeps the formatting consistent.

use std::fmt;

/// A simple column-aligned text table builder.
///
/// ```
/// use prema_metrics::TableBuilder;
///
/// let table = TableBuilder::new(vec!["policy".into(), "ANTT".into()])
///     .row(vec!["NP-FCFS".into(), "8.0".into()])
///     .row(vec!["PREMA".into(), "1.0".into()])
///     .build();
/// assert!(table.contains("NP-FCFS"));
/// assert!(table.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TableBuilder {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TableBuilder {
    /// Starts a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TableBuilder {
            headers,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets an optional title printed above the table.
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends one row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated to the header width.
    pub fn row(mut self, cells: Vec<String>) -> Self {
        self.rows.push(cells);
        self
    }

    /// Appends a row of floating-point values formatted with `precision`
    /// decimal places, prefixed by a label cell.
    pub fn metric_row(self, label: impl Into<String>, values: &[f64], precision: usize) -> Self {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(cells)
    }

    /// Number of data rows added so far.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn build(&self) -> String {
        let columns = self.headers.len().max(1);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        widths.resize(columns, 0);
        let mut normalized_rows = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut cells: Vec<String> = row.iter().take(columns).cloned().collect();
            cells.resize(columns, String::new());
            for (width, cell) in widths.iter_mut().zip(&cells) {
                *width = (*width).max(cell.len());
            }
            normalized_rows.push(cells);
        }

        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let format_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, width)| format!("{cell:<width$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.headers, &widths));
        out.push('\n');
        let total_width = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total_width.max(4)));
        out.push('\n');
        for cells in &normalized_rows {
            out.push_str(&format_row(cells, &widths));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TableBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_separator_and_rows() {
        let table = TableBuilder::new(vec!["a".into(), "b".into()])
            .row(vec!["1".into(), "2".into()])
            .build();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with('a'));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].starts_with('1'));
    }

    #[test]
    fn title_is_printed_first() {
        let table = TableBuilder::new(vec!["x".into()])
            .title("Figure 11")
            .build();
        assert!(table.starts_with("Figure 11\n"));
    }

    #[test]
    fn columns_are_aligned_to_longest_cell() {
        let table = TableBuilder::new(vec!["policy".into(), "v".into()])
            .row(vec!["NP-FCFS".into(), "1".into()])
            .row(vec!["PREMA-dynamic".into(), "2".into()])
            .build();
        let lines: Vec<&str> = table.lines().collect();
        let col = lines[3].find('2').unwrap();
        assert_eq!(lines[2].as_bytes()[col] as char, '1');
    }

    #[test]
    fn short_and_long_rows_are_normalized() {
        let table = TableBuilder::new(vec!["a".into(), "b".into()])
            .row(vec!["only-one".into()])
            .row(vec!["1".into(), "2".into(), "extra".into()])
            .build();
        assert!(table.contains("only-one"));
        assert!(!table.contains("extra"));
    }

    #[test]
    fn metric_row_formats_floats() {
        let builder = TableBuilder::new(vec!["policy".into(), "antt".into(), "stp".into()])
            .metric_row("PREMA", &[1.2345, 0.9876], 2);
        assert_eq!(builder.row_count(), 1);
        let table = builder.build();
        assert!(table.contains("1.23"));
        assert!(table.contains("0.99"));
    }

    #[test]
    fn empty_table_still_renders_a_separator() {
        let empty = TableBuilder::new(vec![]);
        assert_eq!(empty.row_count(), 0);
        let text = empty.build();
        let lines: Vec<&str> = text.lines().collect();
        // Header line (blank) plus the minimum-width separator, no rows.
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("----"));
    }

    #[test]
    fn metric_row_with_no_values_is_just_the_label() {
        let builder =
            TableBuilder::new(vec!["policy".into(), "v".into()]).metric_row("NP-FCFS", &[], 2);
        assert_eq!(builder.row_count(), 1);
        assert!(builder.build().contains("NP-FCFS"));
    }

    #[test]
    fn display_matches_build() {
        let builder = TableBuilder::new(vec!["h".into()]).row(vec!["v".into()]);
        assert_eq!(builder.to_string(), builder.build());
    }
}
