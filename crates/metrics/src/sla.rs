//! Service-level-agreement (SLA) violation metrics (Section VI-C, Figure 13).
//!
//! Vendor SLA targets are proprietary, so the paper defines the SLA target of
//! a task as `N × Time_isolated` and sweeps `N` from 2 to 20. A task violates
//! the SLA when its multi-tasked turnaround time exceeds that target.

use serde::{Deserialize, Serialize};

use crate::TaskOutcome;

/// One point of an SLA violation curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaPoint {
    /// The SLA target multiplier `N` (target = N × isolated time).
    pub target_multiplier: f64,
    /// Fraction of tasks (0.0–1.0) whose turnaround exceeded the target.
    pub violation_rate: f64,
}

/// An SLA violation curve: violation rate as a function of the target
/// multiplier (the x-axis of Figure 13).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SlaCurve {
    points: Vec<SlaPoint>,
}

/// Fraction of tasks whose turnaround time exceeds `multiplier ×` their
/// isolated time.
///
/// # Panics
///
/// Panics if `outcomes` is empty or `multiplier` is not positive.
pub fn violation_rate(outcomes: &[TaskOutcome], multiplier: f64) -> f64 {
    assert!(
        !outcomes.is_empty(),
        "at least one task outcome is required"
    );
    assert!(multiplier > 0.0, "SLA multiplier must be positive");
    let violations = outcomes
        .iter()
        .filter(|o| o.turnaround_time > multiplier * o.isolated_time)
        .count();
    violations as f64 / outcomes.len() as f64
}

impl SlaCurve {
    /// Sweeps the SLA target multiplier over `targets` (e.g. `2..=20`) and
    /// records the violation rate at each point.
    pub fn sweep<I>(outcomes: &[TaskOutcome], targets: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let points = targets
            .into_iter()
            .map(|target_multiplier| SlaPoint {
                target_multiplier,
                violation_rate: violation_rate(outcomes, target_multiplier),
            })
            .collect();
        SlaCurve { points }
    }

    /// The points of the curve in sweep order.
    pub fn points(&self) -> &[SlaPoint] {
        &self.points
    }

    /// The violation rate at the given multiplier, if it was swept.
    pub fn rate_at(&self, target_multiplier: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.target_multiplier - target_multiplier).abs() < 1e-9)
            .map(|p| p.violation_rate)
    }

    /// The smallest swept multiplier at which the violation rate drops to or
    /// below `threshold`, if any.
    pub fn target_meeting(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.violation_rate <= threshold)
            .map(|p| p.target_multiplier)
            .fold(None, |acc, t| match acc {
                None => Some(t),
                Some(best) => Some(best.min(t)),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes() -> Vec<TaskOutcome> {
        // Slowdowns of 1.5x, 3x, 5x and 10x.
        [1.5, 3.0, 5.0, 10.0]
            .into_iter()
            .map(|slowdown| TaskOutcome {
                isolated_time: 100.0,
                turnaround_time: 100.0 * slowdown,
                priority_weight: 1.0,
            })
            .collect()
    }

    #[test]
    fn violation_rate_counts_exceeding_tasks() {
        let o = outcomes();
        assert_eq!(violation_rate(&o, 1.0), 1.0);
        assert_eq!(violation_rate(&o, 2.0), 0.75);
        assert_eq!(violation_rate(&o, 4.0), 0.5);
        assert_eq!(violation_rate(&o, 20.0), 0.0);
    }

    #[test]
    fn curve_is_monotonically_non_increasing() {
        let o = outcomes();
        let curve = SlaCurve::sweep(&o, (2..=20).map(|n| n as f64));
        let rates: Vec<f64> = curve.points().iter().map(|p| p.violation_rate).collect();
        for pair in rates.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
        assert_eq!(curve.points().len(), 19);
    }

    #[test]
    fn rate_at_and_target_meeting() {
        let o = outcomes();
        let curve = SlaCurve::sweep(&o, (2..=20).map(|n| n as f64));
        assert_eq!(curve.rate_at(2.0), Some(0.75));
        assert_eq!(curve.rate_at(21.0), None);
        assert_eq!(curve.target_meeting(0.30), Some(5.0));
        assert_eq!(curve.target_meeting(0.0), Some(10.0));
    }

    #[test]
    fn empty_sweep_yields_an_empty_curve() {
        let o = outcomes();
        let curve = SlaCurve::sweep(&o, std::iter::empty());
        assert!(curve.points().is_empty());
        assert_eq!(curve.rate_at(2.0), None);
        assert_eq!(curve.target_meeting(1.0), None);
        assert_eq!(curve, SlaCurve::default());
    }

    #[test]
    fn single_outcome_curve_is_a_step() {
        let o = vec![TaskOutcome {
            isolated_time: 100.0,
            turnaround_time: 350.0,
            priority_weight: 1.0,
        }];
        let curve = SlaCurve::sweep(&o, (1..=5).map(|n| n as f64));
        assert_eq!(curve.rate_at(3.0), Some(1.0));
        assert_eq!(curve.rate_at(4.0), Some(0.0));
        assert_eq!(curve.target_meeting(0.0), Some(4.0));
    }

    #[test]
    fn boundary_is_not_a_violation() {
        let o = vec![TaskOutcome {
            isolated_time: 100.0,
            turnaround_time: 200.0,
            priority_weight: 1.0,
        }];
        // Exactly meeting the target (2x) is not a violation.
        assert_eq!(violation_rate(&o, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one task outcome")]
    fn empty_outcomes_rejected() {
        let _ = violation_rate(&[], 2.0);
    }

    #[test]
    #[should_panic(expected = "multiplier must be positive")]
    fn non_positive_multiplier_rejected() {
        let _ = violation_rate(&outcomes(), 0.0);
    }
}
