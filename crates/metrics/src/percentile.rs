//! Percentile / tail-latency statistics (Figure 14 of the PREMA paper).

use serde::{Deserialize, Serialize};

/// Computes the `p`-th percentile (0.0–100.0) of `values` using linear
/// interpolation between closest ranks.
///
/// Returns `None` when `values` is empty.
///
/// ```
/// use prema_metrics::percentile;
///
/// let latencies = vec![1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile(&latencies, 50.0), Some(3.0));
/// assert_eq!(percentile(&latencies, 100.0), Some(5.0));
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies must not be NaN"));
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    Some(sorted[lower] * (1.0 - weight) + sorted[upper] * weight)
}

/// A summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Minimum observed value.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile — the tail-latency metric of Figure 14.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples.
    pub count: usize,
}

impl Percentiles {
    /// Summarizes a latency distribution.
    ///
    /// Returns `None` when `values` is empty.
    pub fn summarize(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Percentiles {
            min,
            p50: percentile(values, 50.0)?,
            p95: percentile(values, 95.0)?,
            p99: percentile(values, 99.0)?,
            max,
            mean: values.iter().sum::<f64>() / values.len() as f64,
            count: values.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_returns_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert!(Percentiles::summarize(&[]).is_none());
    }

    #[test]
    fn single_value_is_every_percentile() {
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 95.0), Some(7.0));
        let s = Percentiles::summarize(&[7.0]).unwrap();
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn single_sample_summary_is_the_sample_everywhere() {
        let s = Percentiles::summarize(&[42.0]).unwrap();
        assert_eq!(
            (s.min, s.p50, s.p95, s.p99, s.max, s.mean, s.count),
            (42.0, 42.0, 42.0, 42.0, 42.0, 42.0, 1)
        );
    }

    #[test]
    fn constant_distribution_has_flat_percentiles() {
        let values = vec![5.0; 10];
        for p in [0.0, 37.5, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&values, p), Some(5.0));
        }
    }

    #[test]
    fn interpolation_between_ranks() {
        let values = vec![10.0, 20.0];
        assert_eq!(percentile(&values, 50.0), Some(15.0));
        assert_eq!(percentile(&values, 25.0), Some(12.5));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let values = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        assert_eq!(percentile(&values, 50.0), Some(3.0));
        assert_eq!(percentile(&values, 100.0), Some(5.0));
    }

    #[test]
    fn p95_is_near_the_top_of_the_distribution() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let p95 = percentile(&values, 95.0).unwrap();
        assert!(p95 > 94.0 && p95 < 97.0);
    }

    #[test]
    fn summary_fields_are_consistent() {
        let values: Vec<f64> = (1..=1000).map(|v| v as f64).collect();
        let s = Percentiles::summarize(&values).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        assert!(s.p50 < s.p95 && s.p95 < s.p99);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert_eq!(s.count, 1000);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let _ = percentile(&[1.0], 150.0);
    }
}
