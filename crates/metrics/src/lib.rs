//! Multi-program performance metrics for multi-tasked NPU scheduling.
//!
//! Implements the system-level metrics the PREMA paper adopts from Eyerman &
//! Eeckhout (Equations 1–2): normalized turnaround time (NTT) and its average
//! (ANTT), system throughput (STP), and priority-weighted fairness — plus the
//! quality-of-service metrics of Section VI-C: SLA violation rates and
//! percentile tail latencies.
//!
//! # Example
//!
//! ```
//! use prema_metrics::{TaskOutcome, MultiTaskMetrics};
//!
//! let outcomes = vec![
//!     TaskOutcome { isolated_time: 100.0, turnaround_time: 150.0, priority_weight: 1.0 },
//!     TaskOutcome { isolated_time: 50.0, turnaround_time: 200.0, priority_weight: 9.0 },
//! ];
//! let metrics = MultiTaskMetrics::from_outcomes(&outcomes);
//! assert!(metrics.antt > 1.0);
//! assert!(metrics.stp <= 2.0);
//! assert!(metrics.fairness <= 1.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod percentile;
pub mod sla;
pub mod stats;
pub mod table;

pub use percentile::{percentile, Percentiles};
pub use sla::{SlaCurve, SlaPoint};
pub use stats::{correlation, geometric_mean, mean, std_dev};
pub use table::TableBuilder;

use serde::{Deserialize, Serialize};

/// The outcome of one inference task in a multi-tasked run, expressed in any
/// consistent time unit (the PREMA simulator uses cycles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// The task's uninterrupted, isolated execution time (`C_single`).
    pub isolated_time: f64,
    /// The task's turnaround time under multi-tasking, from dispatch to
    /// completion (`C_multi`).
    pub turnaround_time: f64,
    /// The task's priority weight (the paper grants 1/3/9 tokens for
    /// low/medium/high priority and uses the same weights in Equation 2).
    pub priority_weight: f64,
}

impl TaskOutcome {
    /// Normalized turnaround time: `C_multi / C_single` (Equation 1, ≥ 1 in
    /// practice; values below 1 can only appear from measurement noise).
    pub fn ntt(&self) -> f64 {
        if self.isolated_time <= 0.0 {
            return 1.0;
        }
        self.turnaround_time / self.isolated_time
    }

    /// Per-task progress: `C_single / C_multi` (the task's share of its
    /// isolated speed).
    pub fn progress(&self) -> f64 {
        if self.turnaround_time <= 0.0 {
            return 1.0;
        }
        self.isolated_time / self.turnaround_time
    }
}

/// Aggregate multi-program metrics (Equations 1–2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiTaskMetrics {
    /// Average normalized turnaround time (lower is better, ≥ 1).
    pub antt: f64,
    /// System throughput: the sum of per-task progress (higher is better,
    /// bounded by the task count).
    pub stp: f64,
    /// Priority-weighted fairness: the minimum ratio of priority-normalized
    /// progress between any two tasks (higher is better, ≤ 1 for equal
    /// priorities).
    pub fairness: f64,
    /// Number of tasks aggregated.
    pub task_count: usize,
}

impl MultiTaskMetrics {
    /// Computes ANTT, STP and fairness from per-task outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    pub fn from_outcomes(outcomes: &[TaskOutcome]) -> Self {
        assert!(
            !outcomes.is_empty(),
            "at least one task outcome is required"
        );
        let n = outcomes.len() as f64;
        let antt = outcomes.iter().map(TaskOutcome::ntt).sum::<f64>() / n;
        let stp = outcomes.iter().map(TaskOutcome::progress).sum::<f64>();

        // Equation 2: PP_i = progress_i / (priority_i / sum of priorities);
        // fairness is the minimum pairwise ratio, i.e. min(PP)/max(PP).
        let priority_sum: f64 = outcomes.iter().map(|o| o.priority_weight).sum();
        let pp: Vec<f64> = outcomes
            .iter()
            .map(|o| {
                let share = if priority_sum > 0.0 {
                    o.priority_weight / priority_sum
                } else {
                    1.0 / n
                };
                if share > 0.0 {
                    o.progress() / share
                } else {
                    o.progress()
                }
            })
            .collect();
        let max_pp = pp.iter().cloned().fold(f64::MIN, f64::max);
        let min_pp = pp.iter().cloned().fold(f64::MAX, f64::min);
        let fairness = if max_pp > 0.0 { min_pp / max_pp } else { 0.0 };

        MultiTaskMetrics {
            antt,
            stp,
            fairness,
            task_count: outcomes.len(),
        }
    }

    /// ANTT improvement of `self` relative to `baseline` (baseline ANTT over
    /// ours, so larger is better).
    pub fn antt_improvement_over(&self, baseline: &MultiTaskMetrics) -> f64 {
        if self.antt <= 0.0 {
            return 0.0;
        }
        baseline.antt / self.antt
    }

    /// STP improvement of `self` relative to `baseline`.
    pub fn stp_improvement_over(&self, baseline: &MultiTaskMetrics) -> f64 {
        if baseline.stp <= 0.0 {
            return 0.0;
        }
        self.stp / baseline.stp
    }

    /// Fairness improvement of `self` relative to `baseline`.
    pub fn fairness_improvement_over(&self, baseline: &MultiTaskMetrics) -> f64 {
        if baseline.fairness <= 0.0 {
            return 0.0;
        }
        self.fairness / baseline.fairness
    }
}

/// Averages a set of per-run metrics (used to aggregate the 25 simulation
/// runs per policy, Section VI).
pub fn average_metrics(runs: &[MultiTaskMetrics]) -> MultiTaskMetrics {
    assert!(!runs.is_empty(), "at least one run is required");
    let n = runs.len() as f64;
    MultiTaskMetrics {
        antt: runs.iter().map(|m| m.antt).sum::<f64>() / n,
        stp: runs.iter().map(|m| m.stp).sum::<f64>() / n,
        fairness: runs.iter().map(|m| m.fairness).sum::<f64>() / n,
        task_count: runs.iter().map(|m| m.task_count).sum::<usize>() / runs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(isolated: f64, turnaround: f64, priority: f64) -> TaskOutcome {
        TaskOutcome {
            isolated_time: isolated,
            turnaround_time: turnaround,
            priority_weight: priority,
        }
    }

    #[test]
    fn ntt_and_progress_are_reciprocal_views() {
        let o = outcome(100.0, 250.0, 1.0);
        assert!((o.ntt() - 2.5).abs() < 1e-12);
        assert!((o.progress() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn single_outcome_metrics_are_degenerate_but_exact() {
        let m = MultiTaskMetrics::from_outcomes(&[outcome(100.0, 250.0, 4.0)]);
        assert!((m.antt - 2.5).abs() < 1e-12);
        assert!((m.stp - 0.4).abs() < 1e-12);
        assert!((m.fairness - 1.0).abs() < 1e-12);
        assert_eq!(m.task_count, 1);
    }

    #[test]
    fn averaging_one_run_is_the_identity() {
        let m = MultiTaskMetrics::from_outcomes(&[
            outcome(100.0, 250.0, 1.0),
            outcome(10.0, 20.0, 3.0),
        ]);
        assert_eq!(average_metrics(&[m]), m);
    }

    #[test]
    fn degenerate_times_do_not_divide_by_zero() {
        assert_eq!(outcome(0.0, 10.0, 1.0).ntt(), 1.0);
        assert_eq!(outcome(10.0, 0.0, 1.0).progress(), 1.0);
    }

    #[test]
    fn isolated_execution_gives_ideal_metrics() {
        let outcomes = vec![outcome(100.0, 100.0, 1.0), outcome(50.0, 50.0, 1.0)];
        let m = MultiTaskMetrics::from_outcomes(&outcomes);
        assert!((m.antt - 1.0).abs() < 1e-12);
        assert!((m.stp - 2.0).abs() < 1e-12);
        assert!((m.fairness - 1.0).abs() < 1e-12);
        assert_eq!(m.task_count, 2);
    }

    #[test]
    fn slowdown_increases_antt_and_decreases_stp() {
        let outcomes = vec![outcome(100.0, 200.0, 1.0), outcome(100.0, 300.0, 1.0)];
        let m = MultiTaskMetrics::from_outcomes(&outcomes);
        assert!((m.antt - 2.5).abs() < 1e-12);
        assert!((m.stp - (0.5 + 1.0 / 3.0)).abs() < 1e-12);
        assert!(m.fairness < 1.0);
    }

    #[test]
    fn fairness_accounts_for_priority_weights() {
        // A high-priority task making the same progress as a low-priority task
        // is *unfair* to the high-priority task under Equation 2.
        let equal_progress = vec![outcome(100.0, 200.0, 1.0), outcome(100.0, 200.0, 9.0)];
        let m = MultiTaskMetrics::from_outcomes(&equal_progress);
        assert!(m.fairness < 0.2, "fairness {}", m.fairness);

        // Progress proportional to priority share is perfectly fair.
        let proportional = vec![
            outcome(100.0, 1000.0, 1.0),
            outcome(100.0, 1000.0 / 9.0, 9.0),
        ];
        let m = MultiTaskMetrics::from_outcomes(&proportional);
        assert!((m.fairness - 1.0).abs() < 1e-9, "fairness {}", m.fairness);
    }

    #[test]
    fn improvements_are_relative_to_baseline() {
        let baseline = MultiTaskMetrics {
            antt: 8.0,
            stp: 1.0,
            fairness: 0.1,
            task_count: 8,
        };
        let better = MultiTaskMetrics {
            antt: 1.0,
            stp: 1.4,
            fairness: 0.5,
            task_count: 8,
        };
        assert!((better.antt_improvement_over(&baseline) - 8.0).abs() < 1e-12);
        assert!((better.stp_improvement_over(&baseline) - 1.4).abs() < 1e-12);
        assert!((better.fairness_improvement_over(&baseline) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn average_metrics_averages_componentwise() {
        let a = MultiTaskMetrics {
            antt: 2.0,
            stp: 1.0,
            fairness: 0.5,
            task_count: 8,
        };
        let b = MultiTaskMetrics {
            antt: 4.0,
            stp: 3.0,
            fairness: 0.1,
            task_count: 8,
        };
        let avg = average_metrics(&[a, b]);
        assert!((avg.antt - 3.0).abs() < 1e-12);
        assert!((avg.stp - 2.0).abs() < 1e-12);
        assert!((avg.fairness - 0.3).abs() < 1e-12);
        assert_eq!(avg.task_count, 8);
    }

    #[test]
    #[should_panic(expected = "at least one task outcome")]
    fn empty_outcomes_rejected() {
        let _ = MultiTaskMetrics::from_outcomes(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_runs_rejected() {
        let _ = average_metrics(&[]);
    }
}
