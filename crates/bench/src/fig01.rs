//! Figure 1: the co-location motivation experiment — GoogLeNet and ResNet
//! sharing one accelerator under an NP-FCFS runtime improves throughput at
//! the cost of average latency.

use npu_sim::NpuConfig;
use prema_core::{NpuSimulator, SchedulerConfig};
use prema_metrics::TableBuilder;
use prema_workload::colocation::{
    colocated_stream, isolated_stream, summarize, ColocationConfig, ColocationResult,
};

/// The three rows of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig01Results {
    /// GoogLeNet running alone.
    pub isolated_googlenet: ColocationResult,
    /// ResNet running alone.
    pub isolated_resnet: ColocationResult,
    /// Both models co-located on one NPU under NP-FCFS.
    pub colocated: ColocationResult,
}

impl Fig01Results {
    /// Throughput gain of co-location over the mean isolated throughput.
    pub fn throughput_gain(&self) -> f64 {
        let isolated_mean = 0.5
            * (self.isolated_googlenet.throughput_inferences_per_sec
                + self.isolated_resnet.throughput_inferences_per_sec);
        if isolated_mean > 0.0 {
            self.colocated.throughput_inferences_per_sec / isolated_mean
        } else {
            0.0
        }
    }

    /// Latency degradation of co-location over the mean isolated latency.
    pub fn latency_degradation(&self) -> f64 {
        let isolated_mean =
            0.5 * (self.isolated_googlenet.mean_latency_ms + self.isolated_resnet.mean_latency_ms);
        if isolated_mean > 0.0 {
            self.colocated.mean_latency_ms / isolated_mean
        } else {
            0.0
        }
    }
}

/// Runs the Figure 1 experiment.
pub fn run(npu: &NpuConfig, config: &ColocationConfig) -> Fig01Results {
    let sim = NpuSimulator::new(npu.clone(), SchedulerConfig::np_fcfs());
    let measure = |requests: Vec<prema_core::TaskRequest>| {
        let prepared = sim.prepare(&requests);
        summarize(&sim.run(&prepared).records, npu)
    };
    Fig01Results {
        isolated_googlenet: measure(isolated_stream(dnn_models::ModelKind::CnnGoogLeNet, config)),
        isolated_resnet: measure(isolated_stream(dnn_models::ModelKind::ResNet50, config)),
        colocated: measure(colocated_stream(config)),
    }
}

/// Runs and formats the Figure 1 report.
pub fn report(npu: &NpuConfig, config: &ColocationConfig) -> (Fig01Results, String) {
    let results = run(npu, config);
    let table = TableBuilder::new(vec![
        "scenario".into(),
        "throughput (inf/s)".into(),
        "mean latency (ms)".into(),
    ])
    .title("Figure 1: co-locating GoogLeNet and ResNet under NP-FCFS")
    .row(vec![
        "GoogLeNet isolated".into(),
        format!(
            "{:.1}",
            results.isolated_googlenet.throughput_inferences_per_sec
        ),
        format!("{:.2}", results.isolated_googlenet.mean_latency_ms),
    ])
    .row(vec![
        "ResNet isolated".into(),
        format!(
            "{:.1}",
            results.isolated_resnet.throughput_inferences_per_sec
        ),
        format!("{:.2}", results.isolated_resnet.mean_latency_ms),
    ])
    .row(vec![
        "Co-located".into(),
        format!("{:.1}", results.colocated.throughput_inferences_per_sec),
        format!("{:.2}", results.colocated.mean_latency_ms),
    ])
    .row(vec![
        "Co-location effect".into(),
        format!("{:.2}x throughput", results.throughput_gain()),
        format!("{:.2}x latency", results.latency_degradation()),
    ])
    .build();
    (results, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocation_shape_matches_the_paper() {
        let npu = NpuConfig::paper_default();
        let config = ColocationConfig {
            requests_per_model: 4,
            batch: 1,
            inter_arrival_ms: 3.0,
        };
        let (results, report) = report(&npu, &config);
        // Co-location improves device throughput and worsens latency.
        assert!(
            results.throughput_gain() > 1.0,
            "{}",
            results.throughput_gain()
        );
        assert!(results.latency_degradation() > 1.0);
        assert!(report.contains("Co-located"));
    }
}
