//! Section VI-F: implementation overhead of the PREMA context table, and
//! Section VI-G: storage footprint of checkpointed state.

use dnn_models::{SeqSpec, ALL_EVAL_MODELS};
use npu_sim::{CheckpointModel, NpuConfig};
use prema_core::plan::ExecutionPlan;
use prema_core::ContextTable;
use prema_metrics::TableBuilder;

/// The Section VI-F / VI-G overhead summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadSummary {
    /// Context-table bits for 16 co-located tasks (the paper's example).
    pub context_table_bits: u64,
    /// Worst-case checkpoint latency in microseconds.
    pub worst_case_checkpoint_us: f64,
    /// Largest per-task checkpoint footprint across the model zoo at batch
    /// 16, in megabytes (Section VI-G talks about hundreds of MBs of
    /// accumulated state across many preemptions; the per-preemption live
    /// state is bounded by the on-chip SRAM).
    pub max_live_state_mib: f64,
}

/// Computes the overhead summary.
pub fn run(npu: &NpuConfig) -> OverheadSummary {
    let checkpoint = CheckpointModel::new(npu);
    let mut max_live_bytes = 0u64;
    for &model in &ALL_EVAL_MODELS {
        let seq = SeqSpec::for_model(model, 20);
        let plan = ExecutionPlan::compile(model, 16, seq, npu);
        let peak = plan
            .layers()
            .iter()
            .flat_map(|l| l.intervals.iter())
            .map(|i| i.live_output_bytes)
            .max()
            .unwrap_or(0);
        max_live_bytes = max_live_bytes.max(peak);
    }
    OverheadSummary {
        context_table_bits: ContextTable::sram_bits_for(16),
        worst_case_checkpoint_us: npu.cycles_to_micros(checkpoint.worst_case_checkpoint_cycles()),
        max_live_state_mib: max_live_bytes as f64 / (1024.0 * 1024.0),
    }
}

/// Formats the overhead report.
pub fn report(npu: &NpuConfig) -> (OverheadSummary, String) {
    let summary = run(npu);
    let table = TableBuilder::new(vec!["quantity".into(), "value".into(), "paper".into()])
        .title("Sections VI-F / VI-G: implementation and storage overhead")
        .row(vec![
            "context table SRAM (16 tasks)".into(),
            format!("{} bits", summary.context_table_bits),
            "448 x 16 = 7168 bits".into(),
        ])
        .row(vec![
            "worst-case checkpoint latency".into(),
            format!("{:.1} us", summary.worst_case_checkpoint_us),
            "59 us".into(),
        ])
        .row(vec![
            "largest per-preemption live state".into(),
            format!("{:.1} MiB", summary.max_live_state_mib),
            "bounded by 8 MB UBUF/ACCQ".into(),
        ])
        .build();
    (summary, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_the_paper_figures() {
        let npu = NpuConfig::paper_default();
        let (summary, text) = report(&npu);
        assert_eq!(summary.context_table_bits, 7168);
        assert!(
            summary.worst_case_checkpoint_us > 10.0 && summary.worst_case_checkpoint_us < 100.0
        );
        assert!(summary.max_live_state_mib > 0.1 && summary.max_live_state_mib <= 8.0);
        assert!(text.contains("7168"));
    }
}
