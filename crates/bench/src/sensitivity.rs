//! Section VI-E sensitivity studies: scheduling quantum, token grant scale
//! and batch-size mix. These are the ablation benches called out in
//! DESIGN.md.

use npu_sim::NpuConfig;
use prema_core::SchedulerConfig;
use prema_metrics::TableBuilder;
use prema_workload::generator::WorkloadConfig;

use crate::suite::{run_configs, ConfigResult, SuiteOptions};

/// One sensitivity sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable description of the configuration variation.
    pub label: String,
    /// The PREMA result under that variation.
    pub result: ConfigResult,
}

/// Sweeps the scheduling quantum around the Table II default (0.25 ms).
pub fn quantum_sweep(opts: &SuiteOptions) -> Vec<SweepPoint> {
    [0.1, 0.25, 0.5, 1.0]
        .into_iter()
        .map(|quantum_ms| {
            let mut cfg = SchedulerConfig::paper_default();
            cfg.quantum_ms = quantum_ms;
            let result = run_configs(&[cfg], opts).remove(0);
            SweepPoint {
                label: format!("quantum {quantum_ms} ms"),
                result,
            }
        })
        .collect()
}

/// Sweeps the token grant scale (1/3/9 times the scale factor).
pub fn token_sweep(opts: &SuiteOptions) -> Vec<SweepPoint> {
    [0.5, 1.0, 2.0]
        .into_iter()
        .map(|token_scale| {
            let mut cfg = SchedulerConfig::paper_default();
            cfg.token_scale = token_scale;
            let result = run_configs(&[cfg], opts).remove(0);
            SweepPoint {
                label: format!("token scale {token_scale}"),
                result,
            }
        })
        .collect()
}

/// Compares the single-batch default against mixed batch sizes (1/4/16).
pub fn batch_sweep(base: &SuiteOptions) -> Vec<SweepPoint> {
    [
        ("batch 1", WorkloadConfig::paper_default()),
        ("batch 1/4/16", WorkloadConfig::mixed_batch()),
    ]
    .into_iter()
    .map(|(label, workload)| {
        let opts = SuiteOptions {
            workload,
            ..base.clone()
        };
        let result = run_configs(&[SchedulerConfig::paper_default()], &opts).remove(0);
        SweepPoint {
            label: label.to_string(),
            result,
        }
    })
    .collect()
}

/// Runs all three sweeps and formats the combined report.
pub fn report(npu: &NpuConfig, runs: usize, seed: u64) -> String {
    let opts = SuiteOptions {
        runs,
        seed,
        workload: WorkloadConfig::paper_default(),
        npu: npu.clone(),
        ..SuiteOptions::paper()
    };
    let mut table = TableBuilder::new(vec![
        "variation".into(),
        "ANTT imprv".into(),
        "fairness imprv".into(),
        "STP imprv".into(),
    ])
    .title("Section VI-E: PREMA sensitivity (improvements over NP-FCFS)");
    for point in quantum_sweep(&opts)
        .into_iter()
        .chain(token_sweep(&opts))
        .chain(batch_sweep(&opts))
    {
        table = table.row(vec![
            point.label,
            format!("{:.2}x", point.result.antt_improvement),
            format!("{:.2}x", point.result.fairness_improvement),
            format!("{:.2}x", point.result.stp_improvement),
        ]);
    }
    table.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_cover_their_parameter_ranges() {
        let opts = SuiteOptions {
            runs: 1,
            seed: 5,
            workload: WorkloadConfig {
                task_count: 3,
                ..WorkloadConfig::paper_default()
            },
            ..SuiteOptions::paper()
        };
        assert_eq!(quantum_sweep(&opts).len(), 4);
        assert_eq!(token_sweep(&opts).len(), 3);
        let batches = batch_sweep(&opts);
        assert_eq!(batches.len(), 2);
        for point in batches {
            assert!(point.result.antt_improvement > 0.0);
        }
    }
}
