//! The cluster serving-layer load sweep: offered load x dispatch policy on
//! an N-node NPU cluster under open-loop Poisson arrivals.
//!
//! Offered load is calibrated against the workload mix: a load of `rho`
//! means the arrival rate is `rho * nodes / E[S]`, where `E[S]` is the mean
//! isolated service time over the model/batch pools — so `rho -> 1`
//! approaches the cluster's saturation point regardless of the mix. Every
//! load level generates *one* seeded request stream that all dispatch
//! policies replay, so policy comparisons are paired, and every cell is a
//! pure function of the sweep seed (the `throughput cluster` baseline gate
//! hashes the cells to detect any behavioural divergence).

use rand::rngs::StdRng;
use rand::SeedableRng;

use dnn_models::{ModelKind, SeqSpec};
use npu_sim::NpuConfig;
use prema_cluster::{
    outcome_hash, ClusterConfig, ClusterMetrics, ClusterSimulator, DispatchPolicy,
};
use prema_core::plan::ExecutionPlan;
use prema_core::SchedulerConfig;
use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
use prema_workload::prepare::prepare_workload;

use crate::suite::{build_predictor, run_seed};

/// Options controlling a cluster load sweep.
#[derive(Debug, Clone)]
pub struct ClusterSweepOptions {
    /// Number of NPU nodes.
    pub nodes: usize,
    /// RNG seed: per-load request streams and the random dispatcher derive
    /// from it.
    pub seed: u64,
    /// Length of each generated arrival window, in milliseconds.
    pub duration_ms: f64,
    /// Offered load levels (fraction of the cluster's service capacity).
    pub loads: Vec<f64>,
    /// Dispatch policies under comparison.
    pub policies: Vec<DispatchPolicy>,
    /// The per-node scheduler.
    pub scheduler: SchedulerConfig,
    /// The per-node NPU configuration.
    pub npu: NpuConfig,
    /// Whether to fan per-node simulations out over all cores (results are
    /// bit-identical either way).
    pub parallel: bool,
}

impl ClusterSweepOptions {
    /// The committed-baseline sweep: 4 Dynamic-PREMA nodes, 400 ms Poisson
    /// windows at 50 / 75 / 95 % offered load, all five dispatch policies.
    pub fn baseline() -> Self {
        ClusterSweepOptions {
            nodes: 4,
            seed: 2020,
            duration_ms: 400.0,
            loads: vec![0.50, 0.75, 0.95],
            policies: DispatchPolicy::ALL.to_vec(),
            scheduler: SchedulerConfig::paper_default(),
            npu: NpuConfig::paper_default(),
            parallel: true,
        }
    }

    /// A reduced sweep for unit tests and quick local runs.
    pub fn quick() -> Self {
        ClusterSweepOptions {
            duration_ms: 200.0,
            loads: vec![0.6, 0.95],
            policies: vec![
                DispatchPolicy::Random,
                DispatchPolicy::ShortestQueue,
                DispatchPolicy::Predictive,
            ],
            ..ClusterSweepOptions::baseline()
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("at least one node is required".into());
        }
        if self.loads.is_empty() {
            return Err("at least one load level is required".into());
        }
        if self.loads.iter().any(|rho| !rho.is_finite() || *rho <= 0.0) {
            return Err("load levels must be positive and finite".into());
        }
        if self.policies.is_empty() {
            return Err("at least one dispatch policy is required".into());
        }
        if !self.duration_ms.is_finite() || self.duration_ms <= 0.0 {
            return Err("duration must be positive and finite".into());
        }
        Ok(())
    }
}

/// Mean isolated service time (milliseconds) of the model/batch mix the
/// open-loop stream draws from, used to calibrate offered load. Uses the
/// same default sequence lengths as [`prema_core::TaskRequest::new`], so it
/// matches the generated requests up to sequence-length noise.
///
/// Plans are compiled for `npu` (its microarchitecture sets the cycle
/// counts), but cycles convert to milliseconds at the *Table I* frequency —
/// the clock [`generate_open_loop`] timestamps the arrival timeline with —
/// so the load calibration stays correct for non-default NPU frequencies
/// (rate and service time must live on the same timeline).
pub fn mean_service_ms(models: &[ModelKind], batch_sizes: &[u64], npu: &NpuConfig) -> f64 {
    assert!(!models.is_empty() && !batch_sizes.is_empty());
    let timeline = NpuConfig::paper_default();
    let mut total = 0.0;
    for &model in models {
        for &batch in batch_sizes {
            let seq = SeqSpec::for_model(model, 20);
            let plan = ExecutionPlan::compile_cached(model, batch, seq, npu);
            total += timeline.cycles_to_millis(plan.total_cycles());
        }
    }
    total / (models.len() * batch_sizes.len()) as f64
}

/// The arrival rate (requests per millisecond) that offers load `rho` to a
/// cluster of `nodes` servers with mean service time `service_ms`.
pub fn offered_rate_per_ms(rho: f64, nodes: usize, service_ms: f64) -> f64 {
    rho * nodes as f64 / service_ms
}

/// One cell of the sweep: a (load, policy) pair.
#[derive(Debug, Clone)]
pub struct ClusterCell {
    /// Offered load (fraction of cluster capacity).
    pub load: f64,
    /// The calibrated arrival rate, requests per millisecond.
    pub rate_per_ms: f64,
    /// The dispatch policy.
    pub policy: DispatchPolicy,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Total scheduler wakeups across the cluster.
    pub events: u64,
    /// The cluster serving metrics.
    pub metrics: ClusterMetrics,
    /// The deterministic outcome digest of this cell.
    pub hash: u64,
}

/// Runs the (load x policy) cluster sweep. Cells are laid out load-major:
/// `cells[l * policies.len() + p]` is load level `l` under `policies[p]`,
/// and every policy at one load level replays the identical request stream.
///
/// # Panics
///
/// Panics if the options are invalid.
pub fn run_cluster_sweep(opts: &ClusterSweepOptions) -> Vec<ClusterCell> {
    if let Err(msg) = opts.validate() {
        panic!("invalid ClusterSweepOptions: {msg}");
    }
    let predictor = build_predictor(&opts.npu, opts.seed);
    let template = OpenLoopConfig::poisson(1.0, opts.duration_ms);
    let service_ms = mean_service_ms(&template.models, &template.batch_sizes, &opts.npu);

    let mut cells = Vec::with_capacity(opts.loads.len() * opts.policies.len());
    for (level, &load) in opts.loads.iter().enumerate() {
        let rate = offered_rate_per_ms(load, opts.nodes, service_ms);
        let config = OpenLoopConfig::poisson(rate, opts.duration_ms);
        let mut rng = StdRng::seed_from_u64(run_seed(opts.seed, level));
        let spec = generate_open_loop(&config, &mut rng);
        let prepared = prepare_workload(&spec, &opts.npu, Some(&predictor));
        for &policy in &opts.policies {
            let cluster = ClusterSimulator::new(ClusterConfig {
                nodes: opts.nodes,
                npu: opts.npu.clone(),
                scheduler: opts.scheduler.clone(),
                dispatch: policy,
                // Per-level seed: the random baseline redraws per level but
                // stays a pure function of the sweep seed.
                dispatch_seed: run_seed(opts.seed, 0x1000 + level),
                parallel: opts.parallel,
            });
            let outcome = cluster.run(&prepared.tasks);
            cells.push(ClusterCell {
                load,
                rate_per_ms: rate,
                policy,
                requests: spec.len(),
                events: outcome.scheduler_invocations(),
                hash: outcome_hash(&outcome),
                metrics: ClusterMetrics::from_outcome(&outcome, &opts.npu),
            });
        }
    }
    cells
}

/// Folds every cell digest into one sweep-identity digest — the value the
/// `throughput cluster` baseline gate compares across runs (see
/// [`prema_cluster::outcome_hash`] for the portability caveat).
pub fn sweep_hash(cells: &[ClusterCell]) -> u64 {
    prema_cluster::fold_hashes(cells.iter().map(|cell| cell.hash))
}

/// The cell for (load, policy), if it was swept.
pub fn cell_of(cells: &[ClusterCell], load: f64, policy: DispatchPolicy) -> Option<&ClusterCell> {
    cells
        .iter()
        .find(|c| (c.load - load).abs() < 1e-12 && c.policy == policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::ALL_EVAL_MODELS;

    #[test]
    fn mean_service_time_is_milliseconds() {
        let npu = NpuConfig::paper_default();
        let ms = mean_service_ms(&ALL_EVAL_MODELS, &[1], &npu);
        assert!(ms > 0.5 && ms < 50.0, "{ms}");
        // Offered-load calibration scales linearly.
        let rate = offered_rate_per_ms(0.5, 4, ms);
        assert!((rate * ms / 4.0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_deterministic_and_shapes_match() {
        let opts = ClusterSweepOptions::quick();
        let a = run_cluster_sweep(&opts);
        let b = run_cluster_sweep(&opts);
        assert_eq!(a.len(), opts.loads.len() * opts.policies.len());
        assert_eq!(sweep_hash(&a), sweep_hash(&b));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hash, y.hash);
            assert_eq!(x.metrics, y.metrics);
        }
        // All policies at one load level see the same stream.
        let per_level = opts.policies.len();
        for level in 0..opts.loads.len() {
            let row = &a[level * per_level..(level + 1) * per_level];
            assert!(row.iter().all(|c| c.requests == row[0].requests));
        }
    }

    #[test]
    fn predictive_beats_random_on_queueing_delay_at_high_load() {
        let opts = ClusterSweepOptions::quick();
        let cells = run_cluster_sweep(&opts);
        let top = *opts
            .loads
            .iter()
            .max_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        let random = cell_of(&cells, top, DispatchPolicy::Random).unwrap();
        let predictive = cell_of(&cells, top, DispatchPolicy::Predictive).unwrap();
        assert!(
            predictive.metrics.mean_queueing_delay_ms < random.metrics.mean_queueing_delay_ms,
            "predictive {:.3} ms should beat random {:.3} ms at load {top}",
            predictive.metrics.mean_queueing_delay_ms,
            random.metrics.mean_queueing_delay_ms
        );
    }

    #[test]
    fn higher_load_raises_queueing_delay() {
        let opts = ClusterSweepOptions::quick();
        let cells = run_cluster_sweep(&opts);
        let low = cell_of(&cells, 0.6, DispatchPolicy::Predictive).unwrap();
        let high = cell_of(&cells, 0.95, DispatchPolicy::Predictive).unwrap();
        assert!(high.requests > low.requests);
        assert!(
            high.metrics.mean_queueing_delay_ms >= low.metrics.mean_queueing_delay_ms,
            "queueing delay should not shrink as load grows ({:.3} vs {:.3})",
            low.metrics.mean_queueing_delay_ms,
            high.metrics.mean_queueing_delay_ms
        );
    }

    #[test]
    fn validation_rejects_bad_options() {
        for bad in [
            ClusterSweepOptions {
                nodes: 0,
                ..ClusterSweepOptions::quick()
            },
            ClusterSweepOptions {
                loads: vec![],
                ..ClusterSweepOptions::quick()
            },
            ClusterSweepOptions {
                loads: vec![0.0],
                ..ClusterSweepOptions::quick()
            },
            ClusterSweepOptions {
                policies: vec![],
                ..ClusterSweepOptions::quick()
            },
            ClusterSweepOptions {
                duration_ms: -5.0,
                ..ClusterSweepOptions::quick()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        assert!(ClusterSweepOptions::baseline().validate().is_ok());
    }
}
